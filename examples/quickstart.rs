//! Quickstart: parse a program, run the full VSFS pipeline, and inspect
//! points-to results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vsfs::prelude::*;

const PROGRAM: &str = r#"
// A tiny C-like program:
//
//   void main() {
//     int **p = alloca();      // object P
//     int *h1 = malloc();      // object H1
//     int *h2 = malloc();      // object H2
//     *p = h1;
//     int *a = *p;             // a -> {H1}
//     *p = h2;                 // strong update: P now holds only h2
//     int *b = *p;             // b -> {H2}
//   }
func @main() {
entry:
  %p = alloc stack P
  %h1 = alloc heap H1
  %h2 = alloc heap H2
  store %h1, %p
  %a = load %p
  store %h2, %p
  %b = load %p
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and verify the textual IR.
    let prog = parse_program(PROGRAM)?;
    vsfs_ir::verify::verify(&prog)?;

    // 2. The staged pipeline: auxiliary analysis -> memory SSA -> SVFG.
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);

    // 3. The paper's analysis: versioned staged flow-sensitive solving.
    let result = run_vsfs(&prog, &aux, &mssa, &svfg);

    // 4. Inspect results.
    for name in ["a", "b"] {
        let v = prog
            .values
            .iter_enumerated()
            .find(|(_, val)| val.name == name)
            .map(|(id, _)| id)
            .expect("value exists");
        let flow_sensitive: Vec<&str> =
            result.value_pts(v).iter().map(|o| prog.objects[o].name.as_str()).collect();
        let flow_insensitive: Vec<&str> =
            aux.value_pts(v).iter().map(|o| prog.objects[o].name.as_str()).collect();
        println!("%{name}: flow-sensitive {flow_sensitive:?} vs Andersen {flow_insensitive:?}");
    }

    // Flow-sensitivity + strong updates: %a sees only H1, %b only H2,
    // while the flow-insensitive auxiliary analysis conflates them.
    println!(
        "\nversioning: {} prelabels, {} versions, {} reliance edges, {} strong updates",
        result.stats.prelabels,
        result.stats.versions,
        result.stats.reliance_edges,
        result.stats.strong_updates
    );
    Ok(())
}

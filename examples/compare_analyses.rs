//! Compare Andersen's, SFS, and VSFS on a generated workload: precision,
//! time, and the storage/propagation statistics behind the paper's
//! Table III.
//!
//! ```text
//! cargo run --release --example compare_analyses [workload-name]
//! ```

use vsfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ninja".to_string());
    let spec = vsfs::workloads::suite::benchmark(&name)
        .ok_or_else(|| format!("unknown workload `{name}`"))?;
    println!("workload: {} ({})", spec.name, spec.description);

    let prog = vsfs::workloads::generate(&spec.config);
    println!(
        "program: {} functions, {} instructions, {} objects",
        prog.functions.len(),
        prog.inst_count(),
        prog.objects.len()
    );

    let t = std::time::Instant::now();
    let aux = andersen::analyze(&prog);
    println!(
        "\nandersen: {:.3}s ({} call edges)",
        t.elapsed().as_secs_f64(),
        aux.callgraph.edge_count()
    );

    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    println!(
        "svfg: {} nodes, {} direct, {} indirect edges",
        svfg.node_count(),
        svfg.direct_edge_count(),
        svfg.indirect_edge_count()
    );

    let sfs = run_sfs(&prog, &aux, &mssa, &svfg);
    let vsfs = run_vsfs(&prog, &aux, &mssa, &svfg);

    println!("\n{:<26} {:>12} {:>12}", "", "SFS", "VSFS");
    let row = |k: &str, a: String, b: String| println!("{k:<26} {a:>12} {b:>12}");
    row(
        "main phase (s)",
        format!("{:.3}", sfs.stats.solve_seconds),
        format!("{:.3}", vsfs.stats.solve_seconds),
    );
    row("versioning (s)", "-".into(), format!("{:.3}", vsfs.stats.versioning_seconds));
    row(
        "object-set unions",
        sfs.stats.object_propagations.to_string(),
        vsfs.stats.object_propagations.to_string(),
    );
    row(
        "stored object sets",
        sfs.stats.stored_object_sets.to_string(),
        vsfs.stats.stored_object_sets.to_string(),
    );
    row(
        "stored set elements",
        sfs.stats.stored_object_elems.to_string(),
        vsfs.stats.stored_object_elems.to_string(),
    );
    row(
        "strong updates",
        sfs.stats.strong_updates.to_string(),
        vsfs.stats.strong_updates.to_string(),
    );

    // Precision is identical — the paper's central claim (Section IV-E).
    let equal = vsfs::core::same_precision(&prog, &sfs, &vsfs);
    println!("\nidentical precision: {equal}");
    assert!(equal, "SFS and VSFS must agree");

    // Flow-sensitivity refines the auxiliary analysis.
    let refined =
        prog.values.indices().filter(|&v| vsfs.value_pts(v).len() < aux.value_pts(v).len()).count();
    println!(
        "values with strictly smaller points-to sets than Andersen's: {refined}/{}",
        prog.values.len()
    );
    Ok(())
}

//! A small client analysis: use-before-define detection.
//!
//! Flow-sensitive points-to results enable clients that flow-insensitive
//! results cannot support: here we flag loads that may read a pointer
//! location *before anything was stored to it* (an uninitialised-pointer
//! dereference candidate). With Andersen's results alone every location
//! that is ever written appears initialised everywhere.
//!
//! ```text
//! cargo run --example nulldef_checker
//! ```

use vsfs::prelude::*;
use vsfs_ir::InstKind;

const PROGRAM: &str = r#"
func @setup(%cfg) {
entry:
  %h = alloc heap Handler
  store %h, %cfg
  ret
}

func @main() {
entry:
  %cfg = alloc stack Config
  %early = load %cfg      // BUG: read before @setup initialises it
  br init, skip
init:
  call @setup(%cfg)
  goto use
skip:
  goto use
use:
  %late = load %cfg       // may still be uninitialised via `skip`!
  %h2 = alloc heap Fallback
  store %h2, %cfg
  %safe = load %cfg       // definitely initialised by now
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = parse_program(PROGRAM)?;
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let result = run_vsfs(&prog, &aux, &mssa, &svfg);

    // A load whose destination has an *empty* flow-sensitive points-to
    // set — while the loaded location is non-trivially used elsewhere —
    // reads memory no store has reached yet.
    println!("use-before-define report:");
    let mut flagged = 0;
    for (id, inst) in prog.insts.iter_enumerated() {
        let InstKind::Load { dst, addr } = inst.kind else { continue };
        let fs_empty = result.value_pts(dst).is_empty();
        let would_hold_something =
            aux.value_pts(addr).iter().any(|o| !aux.object_pts(o).is_empty());
        if fs_empty && would_hold_something {
            flagged += 1;
            println!(
                "  POSSIBLY UNINITIALISED: %{} = load %{}   at {}",
                prog.values[dst].name,
                prog.values[addr].name,
                prog.inst_location(id)
            );
        }
    }
    println!("flagged {flagged} load(s)");

    // `%early` reads Config before any store on every path: flagged.
    // `%late` merges an initialised and an uninitialised path: its set is
    // non-empty (the analysis is a may-analysis), so it is not flagged —
    // a path-sensitive checker would catch it.
    // `%safe` is never flagged.
    let by_name = |n: &str| {
        prog.values.iter_enumerated().find(|(_, v)| v.name == n).map(|(id, _)| id).expect("value")
    };
    assert!(result.value_pts(by_name("early")).is_empty());
    assert!(!result.value_pts(by_name("late")).is_empty());
    assert!(!result.value_pts(by_name("safe")).is_empty());
    assert_eq!(flagged, 1);
    println!("\n(as expected: %early is the one real use-before-define on all paths)");
    Ok(())
}

//! Render a program's sparse value-flow graph as Graphviz DOT.
//!
//! ```text
//! cargo run --example svfg_dot [corpus-name] > svfg.dot
//! dot -Tsvg svfg.dot -o svfg.svg
//! ```
//!
//! Direct (top-level) edges are solid; indirect (address-taken) edges are
//! dashed and labelled with their object; δ nodes have doubled borders.

use vsfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "linked_list".to_string());
    let entry = vsfs::workloads::corpus::corpus()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown corpus program `{name}`"))?;
    let prog = parse_program(entry.source)?;
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    eprintln!(
        "{}: {} nodes, {} direct edges, {} indirect edges",
        entry.name,
        svfg.node_count(),
        svfg.direct_edge_count(),
        svfg.indirect_edge_count()
    );
    print!("{}", svfg.to_dot(&prog));
    Ok(())
}

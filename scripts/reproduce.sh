#!/usr/bin/env bash
# Reproduces the paper's evaluation end-to-end (the analogue of the
# artifact's bench.sh). Usage:
#
#   scripts/reproduce.sh [RUNS] [MEM_LIMIT_MIB]
#
# RUNS defaults to 1 (the artifact appendix's recommendation for
# evaluation); the paper used 5. MEM_LIMIT_MIB emulates the paper's
# 120 GB cap scaled to these workloads; solvers whose peak heap exceeds
# it are reported as OOM (the SFS-on-lynx row).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-1}"
MEM_LIMIT="${2:-1024}"

echo "== building (release) =="
cargo build --release -p vsfs-bench

echo
echo "== Table II: benchmark characteristics =="
./target/release/table2

echo
echo "== Table III: time and memory (runs=$RUNS, mem limit ${MEM_LIMIT} MiB) =="
./target/release/table3 --runs "$RUNS" --mem-limit-mib "$MEM_LIMIT"

echo
echo "== Checker precision: FP deltas on buggy workload variants =="
./target/release/checkers du,ninja

echo
echo "== Scheduling: FIFO vs topological order, difference propagation =="
./target/release/scheduling

echo
echo "== MDE: chunked-store payload, peak heap, region memo (writes results/BENCH_dedup.json) =="
./target/release/dedup_mem

echo
echo "== Incremental: edit re-solve vs from-scratch (writes results/BENCH_incremental.json) =="
./target/release/incremental_bench

echo
echo "== Serving path: latency, shed rate, snapshot restore (writes results/BENCH_server.json) =="
./target/release/server_bench

echo
echo "== Solver matrix: sfs/vsfs/cfgfree time, memory, precision (writes results/BENCH_solvers.json) =="
./target/release/solver_matrix

echo
echo "== Unification tier: cost ratio and alias-region sharding (writes results/BENCH_unify.json) =="
./target/release/unify_bench

echo
echo "== Micro-benches (phases, versioning scaling, ablations) =="
cargo bench -p vsfs-bench

#!/usr/bin/env bash
# Hermetic CI gate: tier-1 verify, the full workspace test suite, a
# bench smoke pass (one sample per bench), and the --jobs determinism
# matrix. Everything runs offline against in-repo code only.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo
echo "== workspace tests (includes the --jobs 1/2/8 determinism matrix) =="
cargo test --workspace -q

echo
echo "== bench smoke (1 warmup, 1 sample per bench) =="
VSFS_BENCH_WARMUP=1 VSFS_BENCH_SAMPLES=1 cargo bench -p vsfs-bench

echo
echo "== determinism matrix: CLI output identical at --jobs 1/2/8 =="
cargo build --release -p vsfs-cli
ref=""
for jobs in 1 2 8; do
  out="$(./target/release/vsfs --vfspta --workload ninja --jobs "$jobs" --print-pts --print-callgraph)"
  if [ -z "$ref" ]; then
    ref="$out"
  elif [ "$out" != "$ref" ]; then
    echo "FAIL: --jobs $jobs output differs from --jobs 1" >&2
    exit 1
  fi
done
echo "ok: points-to sets and call graph identical for --jobs 1/2/8"

echo
echo "== fault-injection matrix: degraded exit 2, identical across jobs =="
for kind in panic mem-cap deadline; do
  for seed in 1 2 3; do
    ref=""
    for jobs in 1 4; do
      rc=0
      out="$(./target/release/vsfs --workload ninja --jobs "$jobs" \
             --inject-fault "$kind:$seed" --print-pts)" || rc=$?
      if [ "$rc" -ne 2 ]; then
        echo "FAIL: $kind:$seed --jobs $jobs exited $rc (want 2: degraded)" >&2
        exit 1
      fi
      if [ -z "$ref" ]; then
        ref="$out"
      elif [ "$out" != "$ref" ]; then
        echo "FAIL: $kind:$seed output differs between --jobs 1 and 4" >&2
        exit 1
      fi
    done
  done
done
echo "ok: 3 kinds x 3 seeds degrade soundly and identically at --jobs 1/4"

echo
echo "== checker corpus: flow-sensitive diagnostics match .expected verbatim =="
for f in workloads/checkers/*.vir; do
  expected="${f%.vir}.expected"
  got="$(./target/release/vsfs --check "$f" | grep -v '^check-summary:' || true)"
  want="$(grep -v '^#' "$expected" | grep -v '^$' || true)"
  if [ "$got" != "$want" ]; then
    echo "FAIL: $f diagnostics differ from $expected" >&2
    diff <(printf '%s' "$want") <(printf '%s' "$got") >&2 || true
    exit 1
  fi
done
echo "ok: $(ls workloads/checkers/*.vir | wc -l) corpus programs match their expected findings exactly"

echo
echo "== governed check: degraded run exits 2 with sound Andersen findings =="
rc=0
out="$(./target/release/vsfs --check --inject-fault panic:1 --workload ninja)" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "FAIL: governed --check exited $rc (want 2: degraded)" >&2
  exit 1
fi
# In degraded mode the flow-sensitive view IS the Andersen fallback, so
# every per-checker fp-removed delta must be exactly zero.
if echo "$out" | grep '^check-summary:' | grep -qv 'fp-removed=0$'; then
  echo "FAIL: degraded --check reported a nonzero fp-removed delta" >&2
  exit 1
fi
echo "ok: degraded --check exits 2 and falls back to the Andersen finding set"

echo
echo "== scheduling gate: topo order must cut worklist pops >= 20% vs fifo =="
cargo run --release -p vsfs-bench --bin scheduling -- --gate 20

echo
echo "== governed --order topo: degraded run still exits 2 with sound fallback =="
rc=0
out="$(./target/release/vsfs --vfspta --workload ninja --order topo \
       --step-budget 1000 --print-pts)" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "FAIL: governed --order topo exited $rc (want 2: degraded)" >&2
  exit 1
fi
echo "ok: tiny step budget under topo order degrades soundly with exit 2"

echo
echo "== incremental equivalence: differential edit-sequence property suite =="
VSFS_PROP_CASES=8 cargo test --release -q --test incremental_equivalence

echo
echo "== incremental gate: median edit speedup >= 5x vs from-scratch =="
cargo run --release -p vsfs-bench --bin incremental_bench -- ninja,bake --edits 3 --gate 5

echo
echo "== parallel scaling record (writes results/BENCH_parallel.json) =="
cargo run --release -p vsfs-bench --bin parallel_scaling -- lynx --runs 1

echo
echo "== MDE gate: peak heap, chunk payload dedup, region memo vs results/BENCH_dedup.json =="
if [ -f results/BENCH_dedup.json ]; then
  cargo run --release -p vsfs-bench --bin dedup_mem -- du,ninja,bake \
    --gate results/BENCH_dedup.json
else
  echo "no baseline recorded; writing one"
  cargo run --release -p vsfs-bench --bin dedup_mem -- du,ninja,bake
fi

echo
echo "== protocol fuzz smoke: seeded sessions on both transports, zero deaths =="
# In-proc sessions (seeds 0x5eed0001..3 through Server::serve), then the
# e2e suite replaying seeds 1/2/3 over stdio and 11/12/13 over a Unix
# socket against a spawned vsfs process.
cargo test --release -q -p vsfs-server --test fuzz
cargo test --release -q -p vsfs-cli --test serve

echo
echo "== snapshot round trip: restore is fingerprint-identical to cold =="
cargo test --release -q -p vsfs-server --test snapshot
cargo test --release -q -p vsfs-server --test concurrent

echo
echo "== server gate: snapshot restore >= 5x faster than cold solve =="
cargo run --release -p vsfs-bench --bin server_bench -- ninja,bake --gate 5

echo
echo "== solver equivalence gate: sfs = vsfs = cfgfree on the serving workloads =="
cargo run --release -p vsfs-bench --bin solver_matrix -- ninja,bake --gate-equivalence

echo
echo "== soundness chain: flow-sensitive <= andersen <= unify <= steensgaard =="
cargo test --release -q --test soundness_chain

echo
echo "== unify gate: >= 50x cheaper than andersen, region sharding >= cost-only =="
cargo run --release -p vsfs-bench --bin unify_bench -- bake --runs 3 \
  --gate-ratio 50 --gate-sharding

echo
echo "== lint gate: rustfmt clean, clippy clean at -D warnings =="
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "CI OK"

//! Regression tests for bugs found during development.

use vsfs::prelude::*;
use vsfs_core::result::precision_diff;

fn val(prog: &Program, name: &str) -> vsfs_ir::ValueId {
    prog.values.iter_enumerated().find(|(_, v)| v.name == name).map(|(id, _)| id).unwrap()
}

fn names(prog: &Program, r: &FlowSensitiveResult, v: vsfs_ir::ValueId) -> Vec<String> {
    let mut n: Vec<String> = r.value_pts(v).iter().map(|o| prog.objects[o].name.clone()).collect();
    n.sort();
    n
}

/// The strong/weak-update decision used to depend on the evolving
/// flow-sensitive `pt(p)`, making the transfer non-monotone: a store
/// processed while `pt(p)` was still empty would weak-relay state that a
/// later strong update could no longer kill — and whether that happened
/// differed between SFS's and VSFS's schedules. Minimised from a
/// generated workload (seed 34). See
/// `vsfs_core::toplevel::TopLevel::is_strong_update` for the fix.
#[test]
fn store_whose_target_set_fills_late_stays_confluent() {
    let prog = parse_program(
        r#"
        global @g2 fields 3 array
        func @main() {
        entry:
          %a3 = alloc stack S3
          %a4 = alloc heap H4 array
          %f10 = gep %a3, 0
          store %f10, %f10      // *S3 = S3 (strong update target)
          store %a3, @g2        // g2 holds S3
          %l25 = load @g2       // l25 -> {S3}, but only *eventually*
          store %a4, %l25       // strong update of S3 once l25 resolves
          %l39 = load %a3       // must agree across solvers
          ret
        }
        "#,
    )
    .unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
    let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    assert_eq!(precision_diff(&prog, &sfs, &vsfs), None);
    // And the kill actually happened: the late strong update through l25
    // replaces S3's content with H4.
    assert_eq!(names(&prog, &sfs, val(&prog, "l39")), vec!["H4"]);
}

/// A store in a loop may consume its own yielded version (the SVFG cycle
/// store → memphi → store); this used to trip a debug assertion in the
/// versioned solver's split-borrow union.
#[test]
fn store_consuming_its_own_yield_in_a_loop() {
    let prog = parse_program(
        r#"
        func @main() {
        entry:
          %cell = alloc stack Cell array
          %h = alloc heap H
          goto head
        head:
          %x = load %cell
          store %h, %cell
          store %x, %cell      // re-stores what it just read: self-cycle
          br head, out
        out:
          %fin = load %cell
          ret
        }
        "#,
    )
    .unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
    let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    assert_eq!(precision_diff(&prog, &sfs, &vsfs), None);
    assert_eq!(names(&prog, &vsfs, val(&prog, "fin")), vec!["H"]);
}

/// Semantics of the larger corpus programs, checked against concrete
/// expectations (same under SFS and VSFS via `tests/equivalence.rs`).
#[test]
fn event_loop_semantics() {
    let prog = parse_program(vsfs_workloads::corpus::EVENT_LOOP).unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let r = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    // The dispatched handler set includes all three registrations.
    assert_eq!(r.callgraph_edges.len(), 3);
    // @current can hold the connection (stored by on_open).
    assert_eq!(names(&prog, &r, val(&prog, "last")), vec!["Conn"]);
    // The log accumulates data buffers.
    assert_eq!(names(&prog, &r, val(&prog, "seen")), vec!["DataBuf"]);
}

#[test]
fn hash_map_semantics() {
    let prog = parse_program(vsfs_workloads::corpus::HASH_MAP).unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let r = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    // The lookup returns some stored value (both keys share the abstract
    // MapNode, so both values are possible).
    let got = names(&prog, &r, val(&prog, "got"));
    assert!(got.contains(&"Val1".to_string()), "got = {got:?}");
    assert!(got.contains(&"Val2".to_string()), "got = {got:?}");
    // The chain walk reaches nodes.
    assert_eq!(names(&prog, &r, val(&prog, "first")), vec!["MapNode"]);
}

#[test]
fn visitor_semantics() {
    let prog = parse_program(vsfs_workloads::corpus::VISITOR).unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let r = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    // Dispatch resolves: main calls visit_node, which calls visit_leaf.
    assert_eq!(r.callgraph_edges.len(), 2);
    // The final result is the leaf payload.
    assert_eq!(names(&prog, &r, val(&prog, "result")), vec!["LeafData"]);
}

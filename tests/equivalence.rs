//! The central correctness experiment, now three-way: VSFS computes
//! exactly the same points-to information as SFS (Section IV-E of the
//! paper), and the CFG-free constraint-ordering solver — which never
//! builds memory SSA or an SVFG — matches both, on the hand-written
//! corpus, on targeted tricky programs, and on a sweep of generated
//! workloads.

use vsfs::prelude::*;
use vsfs_core::queries::AliasQueries;
use vsfs_core::result::precision_diff;
use vsfs_workloads::gen::{generate, WorkloadConfig};

fn full_pipeline(
    prog: &Program,
) -> (FlowSensitiveResult, FlowSensitiveResult, FlowSensitiveResult) {
    vsfs_ir::verify::verify(prog).expect("program verifies");
    let aux = andersen::analyze(prog);
    let mssa = MemorySsa::build(prog, &aux);
    let svfg = Svfg::build(prog, &aux, &mssa);
    let sfs = vsfs_core::run_sfs(prog, &aux, &mssa, &svfg);
    let vsfs = vsfs_core::run_vsfs(prog, &aux, &mssa, &svfg);
    let cfgfree = vsfs_core::run_cfgfree(prog, &aux);
    (sfs, vsfs, cfgfree)
}

fn assert_equivalent(prog: &Program, label: &str) {
    let (sfs, vsfs, cfgfree) = full_pipeline(prog);
    if let Some(diff) = precision_diff(prog, &sfs, &vsfs) {
        panic!("{label}: SFS and VSFS disagree: {diff}");
    }
    if let Some(diff) = precision_diff(prog, &sfs, &cfgfree) {
        panic!("{label}: SFS and CFG-free disagree: {diff}");
    }
}

#[test]
fn corpus_programs_are_equivalent() {
    for p in vsfs_workloads::corpus::corpus() {
        let prog = parse_program(p.source).unwrap();
        assert_equivalent(&prog, p.name);
    }
}

#[test]
fn generated_workloads_are_equivalent() {
    for seed in 0..20 {
        let prog = generate(&WorkloadConfig { seed, ..WorkloadConfig::small() });
        assert_equivalent(&prog, &format!("seed {seed}"));
    }
}

#[test]
fn heavy_profile_workloads_are_equivalent() {
    for seed in 100..106 {
        let cfg = WorkloadConfig {
            seed,
            loads_per_block: 4,
            stores_per_block: 2,
            load_chain: 3,
            heap_fraction: 0.7,
            array_fraction: 0.6,
            indirect_call_fraction: 0.4,
            backward_call_fraction: 0.15,
            ..WorkloadConfig::small()
        };
        let prog = generate(&cfg);
        assert_equivalent(&prog, &format!("heavy seed {seed}"));
    }
}

#[test]
fn flow_sensitive_is_more_precise_than_andersen() {
    // Flow-sensitivity must refine the auxiliary results: every
    // flow-sensitive points-to set is a subset of Andersen's.
    for seed in 0..8 {
        let prog = generate(&WorkloadConfig { seed, ..WorkloadConfig::small() });
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let fs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        for v in prog.values.indices() {
            assert!(
                aux.value_pts(v).is_superset(fs.value_pts(v)),
                "seed {seed}: flow-sensitive pt(%{}) not within Andersen's",
                prog.values[v].name
            );
        }
        // And the flow-sensitive call graph is a subset of Andersen's.
        for &(call, callee) in &fs.callgraph_edges {
            assert!(
                aux.callgraph.callees(call).contains(&callee),
                "seed {seed}: FS call edge missing from Andersen's call graph"
            );
        }
    }
}

#[test]
fn strong_update_behaviour() {
    let prog = parse_program(vsfs_workloads::corpus::STRONG_UPDATE).unwrap();
    let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
    let val = |name: &str| {
        prog.values.iter_enumerated().find(|(_, v)| v.name == name).map(|(id, _)| id).unwrap()
    };
    let obj_name = |o| prog.objects[o].name.clone();
    for (label, r) in [("sfs", &sfs), ("vsfs", &vsfs), ("cfgfree", &cfgfree)] {
        let before: Vec<String> = r.value_pts(val("before")).iter().map(obj_name).collect();
        let after: Vec<String> = r.value_pts(val("after")).iter().map(obj_name).collect();
        assert_eq!(before, vec!["First"], "{label}: load before the second store");
        assert_eq!(after, vec!["Second"], "{label}: strong update must kill First");
    }
    assert!(sfs.stats.strong_updates > 0);
    assert!(vsfs.stats.strong_updates > 0);
    assert!(cfgfree.stats.strong_updates > 0);
}

#[test]
fn weak_update_on_arrays() {
    let prog = parse_program(vsfs_workloads::corpus::WEAK_ARRAY).unwrap();
    let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
    let x = prog.values.iter_enumerated().find(|(_, v)| v.name == "x").map(|(id, _)| id).unwrap();
    for r in [&sfs, &vsfs, &cfgfree] {
        let mut names: Vec<String> =
            r.value_pts(x).iter().map(|o| prog.objects[o].name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["A", "B"], "array stores are weak: both survive");
    }
}

#[test]
fn flow_order_precision_beats_andersen() {
    let prog = parse_program(vsfs_workloads::corpus::FLOW_ORDER).unwrap();
    let aux = andersen::analyze(&prog);
    let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
    let val = |name: &str| {
        prog.values.iter_enumerated().find(|(_, v)| v.name == name).map(|(id, _)| id).unwrap()
    };
    // Andersen (flow-insensitive) thinks the early load can see Obj.
    assert_eq!(aux.value_pts(val("early")).len(), 1);
    // Both flow-sensitive analyses know it cannot.
    assert!(sfs.value_pts(val("early")).is_empty());
    assert!(vsfs.value_pts(val("early")).is_empty());
    assert!(cfgfree.value_pts(val("early")).is_empty());
    assert_eq!(sfs.value_pts(val("late")).len(), 1);
    assert_eq!(vsfs.value_pts(val("late")).len(), 1);
    assert_eq!(cfgfree.value_pts(val("late")).len(), 1);
}

#[test]
fn indirect_dispatch_resolves_identically() {
    let prog = parse_program(vsfs_workloads::corpus::FPTR_DISPATCH).unwrap();
    let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
    assert_eq!(sfs.callgraph_edges, vsfs.callgraph_edges);
    assert_eq!(sfs.callgraph_edges, cfgfree.callgraph_edges);
    // Both handlers are feasible targets.
    assert_eq!(sfs.callgraph_edges.len(), 2);
    assert!(sfs.stats.calls_activated >= 2);
    assert!(vsfs.stats.calls_activated >= 2);
    assert!(cfgfree.stats.calls_activated >= 2);
}

#[test]
fn linked_list_field_flow() {
    let prog = parse_program(vsfs_workloads::corpus::LINKED_LIST).unwrap();
    let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
    let val = |name: &str| {
        prog.values.iter_enumerated().find(|(_, v)| v.name == name).map(|(id, _)| id).unwrap()
    };
    for r in [&sfs, &vsfs, &cfgfree] {
        // next = n1.next = the Node object; payload = *n2 ⊇ Data2.
        let next: Vec<String> =
            r.value_pts(val("next")).iter().map(|o| prog.objects[o].name.clone()).collect();
        assert_eq!(next, vec!["Node"]);
        let payload: Vec<String> =
            r.value_pts(val("payload")).iter().map(|o| prog.objects[o].name.clone()).collect();
        // The abstract Node summarises both list cells, so the payload
        // may be either datum.
        assert!(payload.contains(&"Data2".to_string()), "payload = {payload:?}");
    }
}

#[test]
fn query_answers_are_identical_between_solvers_corpus_wide() {
    // The hash-consed storage must be invisible at the API boundary:
    // every client query resolves ids back to sets and answers exactly
    // as the owned-set representation did, and SFS and VSFS agree on
    // all of them.
    for p in vsfs_workloads::corpus::corpus() {
        let prog = parse_program(p.source).unwrap();
        let (sfs, vsfs, cfgfree) = full_pipeline(&prog);
        let qs = AliasQueries::new(&prog, &sfs);
        let qv = AliasQueries::new(&prog, &vsfs);
        let qc = AliasQueries::new(&prog, &cfgfree);
        let mut prev = None;
        for v in prog.values.indices() {
            assert_eq!(qs.unique_target(v), qv.unique_target(v), "{}", p.name);
            assert_eq!(qs.unique_target(v), qc.unique_target(v), "{}", p.name);
            assert_eq!(qs.is_empty(v), qv.is_empty(v), "{}", p.name);
            assert_eq!(qs.is_empty(v), qc.is_empty(v), "{}", p.name);
            assert_eq!(qs.may_point_to_heap(v), qv.may_point_to_heap(v), "{}", p.name);
            assert_eq!(qs.may_point_to_heap(v), qc.may_point_to_heap(v), "{}", p.name);
            assert_eq!(qs.pointee_names(v), qv.pointee_names(v), "{}", p.name);
            assert_eq!(qs.pointee_names(v), qc.pointee_names(v), "{}", p.name);
            if let Some(u) = prev {
                assert_eq!(qs.may_alias(u, v), qv.may_alias(u, v), "{}", p.name);
                assert_eq!(qs.may_alias(u, v), qc.may_alias(u, v), "{}", p.name);
            }
            prev = Some(v);
        }
        // Every solver's store carries at least the canonical empty set
        // and reports consistent byte accounting.
        for r in [&sfs, &vsfs, &cfgfree] {
            assert!(r.stats.store.unique_sets >= 1);
        }
    }
}

#[test]
fn vsfs_stores_fewer_object_sets_on_redundant_workloads() {
    // The paper's headline mechanism: shared versions mean fewer stored
    // points-to sets and fewer propagations than SFS's IN/OUT scheme.
    let cfg = WorkloadConfig {
        seed: 7,
        functions: 12,
        segments: 6,
        loads_per_block: 4,
        load_chain: 4,
        heap_fraction: 0.7,
        array_fraction: 0.6,
        ..WorkloadConfig::small()
    };
    let prog = generate(&cfg);
    let (sfs, vsfs, _cfgfree) = full_pipeline(&prog);
    assert!(
        vsfs.stats.stored_object_sets < sfs.stats.stored_object_sets,
        "VSFS sets {} !< SFS sets {}",
        vsfs.stats.stored_object_sets,
        sfs.stats.stored_object_sets
    );
    assert!(
        vsfs.stats.object_propagations < sfs.stats.object_propagations,
        "VSFS propagations {} !< SFS propagations {}",
        vsfs.stats.object_propagations,
        sfs.stats.object_propagations
    );
    // The hash-consed store compounds the saving: repeated unions on a
    // redundancy-heavy workload are served by the memo and shortcuts,
    // and far fewer canonical sets exist than logical stored slots.
    for (label, r) in [("sfs", &sfs), ("vsfs", &vsfs)] {
        let s = r.stats.store;
        assert!(s.union_hits > 0, "{label}: union memo never hit");
        assert!(s.union_shortcuts > 0, "{label}: union shortcuts never fired");
        assert!(
            s.unique_sets < r.stats.stored_object_sets,
            "{label}: {} canonical sets for {} logical slots — dedup is not sharing",
            s.unique_sets,
            r.stats.stored_object_sets
        );
    }
}

#[test]
fn cfgfree_checker_findings_are_bit_identical_across_jobs_and_orders() {
    // The CFG-free result must be schedule- and parallelism-invariant:
    // checker findings rendered under its FlowView are byte-for-byte
    // identical whether the auxiliary stage ran with 1, 2, or 8 jobs
    // and whether the solver drained its worklist FIFO or topological.
    use vsfs_andersen::AndersenConfig;
    use vsfs_checkers::{render_findings, run_checkers, FlowView};
    use vsfs_core::SolveOrder;

    for p in vsfs_workloads::corpus::corpus() {
        let prog = parse_program(p.source).unwrap();
        vsfs_ir::verify::verify(&prog).expect("program verifies");
        let mut reference: Option<Vec<String>> = None;
        for jobs in [1usize, 2, 8] {
            let aux = vsfs_andersen::analyze_with_config(
                &prog,
                AndersenConfig { jobs, ..AndersenConfig::default() },
            );
            // The checkers traverse the SVFG for witness paths; the
            // view under test is still the CFG-free result.
            let mssa = MemorySsa::build(&prog, &aux);
            let svfg = Svfg::build(&prog, &aux, &mssa);
            for order in [SolveOrder::Fifo, SolveOrder::Topo] {
                let r = vsfs_core::run_cfgfree_ordered(&prog, &aux, order);
                let findings = run_checkers(&prog, &svfg, &FlowView(&r));
                let rendered = render_findings(&prog, &findings);
                match &reference {
                    None => reference = Some(rendered),
                    Some(want) => assert_eq!(
                        want,
                        &rendered,
                        "{}: findings differ at jobs={jobs} order={}",
                        p.name,
                        order.name()
                    ),
                }
            }
        }
    }
}

//! The traditional dense analysis (Section IV-A) against the staged
//! analyses.
//!
//! Dense-on-ICFG and staged-on-SVFG are *incomparable* in precision:
//!
//! * the staged analyses refine call targets on the fly and filter
//!   escaping objects, which dense (pre-computed call graph, no
//!   filtering) cannot;
//! * dense kills strongly-updated state *across* call boundaries, while
//!   the SVFG's call-site bypass edge (the χ's weak-update input) always
//!   lets pre-call state survive a call.
//!
//! * dense additionally models that control must *pass through* a
//!   callee: state after a call site only exists if some callee path
//!   returns, so unconditionally non-returning recursion blocks flow
//!   that the SVFG's def-use edges over-approximate.
//!
//! Both are sound: each refines the flow-insensitive auxiliary solution.
//! On programs without calls the two formulations coincide exactly.

use vsfs::prelude::*;
use vsfs_workloads::gen::{generate, WorkloadConfig};

#[test]
fn dense_refines_andersen_everywhere() {
    for seed in 0..10 {
        let prog = generate(&WorkloadConfig { seed, ..WorkloadConfig::small() });
        let aux = andersen::analyze(&prog);
        let dense = vsfs_core::run_dense(&prog, &aux);
        for v in prog.values.indices() {
            assert!(
                aux.value_pts(v).is_superset(dense.value_pts(v)),
                "seed {seed}: dense exceeds Andersen for %{}",
                prog.values[v].name
            );
        }
    }
}

#[test]
fn dense_matches_staged_on_call_free_programs() {
    // Without calls there is no call graph, no escape boundary, and no
    // bypass edge: the two formulations compute the same fixpoint.
    for p in vsfs_workloads::corpus::corpus() {
        let prog = parse_program(p.source).unwrap();
        let has_calls = prog.insts.iter().any(|i| matches!(i.kind, vsfs_ir::InstKind::Call { .. }));
        if has_calls {
            continue;
        }
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let staged = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        let dense = vsfs_core::run_dense(&prog, &aux);
        for v in prog.values.indices() {
            assert_eq!(
                dense.value_pts(v),
                staged.value_pts(v),
                "{}: %{} differs between dense and staged",
                p.name,
                prog.values[v].name
            );
        }
    }
}

#[test]
fn dense_gets_flow_sensitive_basics_right() {
    let prog = parse_program(vsfs_workloads::corpus::STRONG_UPDATE).unwrap();
    let aux = andersen::analyze(&prog);
    let dense = vsfs_core::run_dense(&prog, &aux);
    let val = |n: &str| {
        prog.values.iter_enumerated().find(|(_, v)| v.name == n).map(|(id, _)| id).unwrap()
    };
    let names =
        |v| dense.value_pts(v).iter().map(|o| prog.objects[o].name.clone()).collect::<Vec<_>>();
    assert_eq!(names(val("before")), vec!["First"]);
    assert_eq!(names(val("after")), vec!["Second"], "dense strong update");
    assert!(dense.stats.strong_updates > 0);
}

#[test]
fn dense_kills_across_calls_where_staged_cannot() {
    // The callee strongly updates the caller-visible cell; dense's
    // return edge carries the killed state, while the SVFG call-site
    // bypass keeps the old value alive (both sound; dense more precise
    // here).
    let prog = parse_program(
        r#"
        global @cell
        func @overwrite() {
        entry:
          %h2 = alloc heap Second
          store %h2, @cell
          ret
        }
        func @main() {
        entry:
          %h1 = alloc heap First
          store %h1, @cell
          call @overwrite()
          %after = load @cell
          ret
        }
        "#,
    )
    .unwrap();
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let staged = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    let dense = vsfs_core::run_dense(&prog, &aux);
    let after =
        prog.values.iter_enumerated().find(|(_, v)| v.name == "after").map(|(id, _)| id).unwrap();
    let names = |r: &vsfs_core::FlowSensitiveResult| {
        let mut v: Vec<String> =
            r.value_pts(after).iter().map(|o| prog.objects[o].name.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(names(&dense), vec!["Second"], "dense kills across the call");
    assert_eq!(
        names(&staged),
        vec!["First", "Second"],
        "the SVFG bypass edge keeps the pre-call value (weaker but sound)"
    );
}

#[test]
fn dense_does_more_object_work_than_vsfs() {
    // Compare on a single large call-free function, where the two
    // formulations provably coincide in precision (no call graph, no
    // interprocedural kills or reachability effects): with all-array
    // weak updates the dense analysis must haul every object's state
    // through every program point, while the staged analyses only touch
    // def-use chains.
    let cfg = WorkloadConfig {
        seed: 31,
        functions: 0,
        segments: 40,
        allocs_per_function: 12,
        heap_fraction: 1.0,
        array_fraction: 1.0,
        loads_per_block: 3,
        load_chain: 2,
        global_traffic: 0.8,
        calls_per_function: 0,
        indirect_call_fraction: 0.0,
        ..WorkloadConfig::small()
    };
    let prog = generate(&cfg);
    let aux = andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    let dense = vsfs_core::run_dense(&prog, &aux);
    // Stored *elements* (actual points-to data) and propagation work both
    // blow up without sparsity. (Set *counts* are not comparable across
    // the two accountings: VSFS pre-allocates a slot per (object,
    // version) even when empty.)
    assert!(
        dense.stats.stored_object_elems > vsfs.stats.stored_object_elems,
        "dense {} elems vs vsfs {}",
        dense.stats.stored_object_elems,
        vsfs.stats.stored_object_elems
    );
    assert!(
        dense.stats.object_propagations > vsfs.stats.object_propagations,
        "dense {} propagations vs vsfs {}",
        dense.stats.object_propagations,
        vsfs.stats.object_propagations
    );
}

//! Parser robustness: arbitrary input must never panic — it either
//! parses to a program or returns a located error. Mutated valid
//! programs additionally exercise deep error paths.

use vsfs_ir::parse_program;
use vsfs_testkit::gen;

const CASES: u32 = 128;

/// Arbitrary byte soup (printable-ish) never panics the parser.
#[test]
fn arbitrary_text_never_panics() {
    vsfs_testkit::check_cases("parser::arbitrary_text_never_panics", CASES, |rng| {
        let s = gen::printable_string(rng, 0..400);
        let _ = parse_program(&s);
    });
}

/// Random single-character mutations of a valid program never panic,
/// and if they still parse, the result still verifies or fails with a
/// proper error.
#[test]
fn mutated_valid_programs_never_panic() {
    vsfs_testkit::check_cases("parser::mutated_valid_programs_never_panic", CASES, |rng| {
        let base = vsfs_workloads::corpus::LINKED_LIST;
        let bytes = base.as_bytes();
        let i = rng.gen_range(0usize..600) % bytes.len();
        let c = char::from(rng.gen_range(b' '..b'~' + 1));
        let mut mutated = String::with_capacity(base.len());
        mutated.push_str(&base[..i]);
        mutated.push(c);
        // Skip one byte, staying on a char boundary (source is ASCII).
        mutated.push_str(&base[i + 1..]);
        if let Ok(prog) = parse_program(&mutated) {
            let _ = vsfs_ir::verify::verify(&prog);
        }
    });
}

/// Truncations of a valid program never panic.
#[test]
fn truncated_programs_never_panic() {
    vsfs_testkit::check_cases("parser::truncated_programs_never_panic", CASES, |rng| {
        let base = vsfs_workloads::corpus::EVENT_LOOP;
        let cut = rng.gen_range(0usize..600).min(base.len());
        let _ = parse_program(&base[..cut]);
    });
}

#[test]
fn error_messages_carry_line_numbers() {
    let err = parse_program("func @main() {\nentry:\n  %x = bogus %y\n  ret\n}\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("line 3"));
}

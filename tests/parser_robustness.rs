//! Parser robustness: arbitrary input must never panic — it either
//! parses to a program or returns a located error. Mutated valid
//! programs additionally exercise deep error paths.

use proptest::prelude::*;
use vsfs_ir::parse_program;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Arbitrary byte soup (printable-ish) never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\n]{0,400}") {
        let _ = parse_program(&s);
    }

    /// Random single-character mutations of a valid program never panic,
    /// and if they still parse, the result still verifies or fails with a
    /// proper error.
    #[test]
    fn mutated_valid_programs_never_panic(idx in 0usize..600, c in prop::char::range(' ', '~')) {
        let base = vsfs_workloads::corpus::LINKED_LIST;
        let bytes = base.as_bytes();
        let i = idx % bytes.len();
        let mut mutated = String::with_capacity(base.len());
        mutated.push_str(&base[..i]);
        mutated.push(c);
        // Skip one byte, staying on a char boundary (source is ASCII).
        mutated.push_str(&base[i + 1..]);
        if let Ok(prog) = parse_program(&mutated) {
            let _ = vsfs_ir::verify::verify(&prog);
        }
    }

    /// Truncations of a valid program never panic.
    #[test]
    fn truncated_programs_never_panic(len in 0usize..600) {
        let base = vsfs_workloads::corpus::EVENT_LOOP;
        let cut = len.min(base.len());
        let _ = parse_program(&base[..cut]);
    }
}

#[test]
fn error_messages_carry_line_numbers() {
    let err = parse_program("func @main() {\nentry:\n  %x = bogus %y\n  ret\n}\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("line 3"));
}

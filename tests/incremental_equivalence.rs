//! Incremental ≡ from-scratch: the differential edit-sequence suite.
//!
//! Drives random function-granularity edit sequences from
//! `vsfs_workloads::edit_script` through the incremental engine
//! (`vsfs_core::resolve_edit`) and checks after *every* edit that the
//! incrementally re-solved state is bit-identical to a from-scratch
//! solve of the same source text:
//!
//! * every top-level points-to set and the resolved call graph
//!   (`precision_diff`), against from-scratch SFS under both worklist
//!   orders **and** from-scratch VSFS at `jobs` 1, 2 and 8;
//! * sampled may-alias queries;
//! * the full memory-safety finding set;
//! * the deterministic result fingerprint.
//!
//! Seeds honour the shared property-test env knobs: replay one case
//! with `VSFS_PROP_SEED=0x…`, scale the count with `VSFS_PROP_CASES`.

use vsfs_checkers::{run_checkers, FlowView};
use vsfs_core::queries::AliasQueries;
use vsfs_core::result::precision_diff;
use vsfs_core::{
    resolve_edit, result_fingerprint, solve_program, IncrementalOptions, ProgramState, SolveOrder,
};
use vsfs_ir::Program;
use vsfs_testkit::Rng;
use vsfs_workloads::edit_script;
use vsfs_workloads::gen::WorkloadConfig;

const CASES: u32 = 10;

/// A random configuration with enough functions and edit surface to
/// produce interesting dirty regions.
fn random_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(4usize..9),
        segments: rng.gen_range(1usize..4),
        loads_per_block: rng.gen_range(0usize..3),
        stores_per_block: rng.gen_range(1usize..3),
        load_chain: rng.gen_range(0usize..3),
        heap_fraction: rng.gen_f64(),
        indirect_call_fraction: rng.gen_range(0.0f64..0.5),
        backward_call_fraction: rng.gen_range(0.0f64..0.4),
        edit_fraction: rng.gen_range(0.3f64..0.8),
        ..WorkloadConfig::small()
    }
}

struct ColdPipeline {
    prog: Program,
    aux: vsfs_andersen::AndersenResult,
    mssa: vsfs_mssa::MemorySsa,
    svfg: vsfs_svfg::Svfg,
}

/// Parses `source` afresh — same text as the incremental engine saw, so
/// arena ids line up and results are directly comparable.
fn cold_pipeline(source: &str, jobs: usize) -> ColdPipeline {
    let prog = vsfs_ir::parse_program(source).expect("edit-script text parses");
    let aux =
        vsfs_andersen::analyze_with_config(&prog, vsfs_andersen::AndersenConfig::with_jobs(jobs));
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    ColdPipeline { prog, aux, mssa, svfg }
}

/// Asserts the incremental `state` matches `cold_result` on points-to
/// sets, the call graph, sampled alias queries, findings, and the
/// fingerprint.
fn assert_matches(
    label: &str,
    state: &ProgramState,
    cold: &ColdPipeline,
    cold_result: &vsfs_core::FlowSensitiveResult,
    rng: &mut Rng,
) {
    assert!(state.analysis.is_complete(), "{label}: ungoverned solve must complete");
    if let Some(diff) = precision_diff(&state.prog, &state.analysis.result, cold_result) {
        panic!("{label}: incremental differs from from-scratch: {diff}");
    }
    // Alias queries are derived from the points-to sets, but exercise
    // the public query surface on a sample of value pairs.
    let inc_q = AliasQueries::new(&state.prog, &state.analysis.result);
    let cold_q = AliasQueries::new(&cold.prog, cold_result);
    let n = state.prog.values.len() as u64;
    for _ in 0..50 {
        let p = vsfs_ir::ValueId::new(rng.gen_range(0..n) as u32);
        let q = vsfs_ir::ValueId::new(rng.gen_range(0..n) as u32);
        assert_eq!(
            inc_q.may_alias(p, q),
            cold_q.may_alias(p, q),
            "{label}: may_alias({p:?}, {q:?}) differs"
        );
    }
    // Same text ⇒ same ids ⇒ findings are directly comparable.
    let svfg = state.svfg().expect("staged solver keeps its SVFG resident");
    let inc_findings = run_checkers(&state.prog, svfg, &FlowView(&state.analysis.result));
    let cold_findings = run_checkers(&cold.prog, &cold.svfg, &FlowView(cold_result));
    assert_eq!(inc_findings, cold_findings, "{label}: checker findings differ");
    assert_eq!(
        state.fingerprint,
        result_fingerprint(&cold.prog, &state.keys, cold_result),
        "{label}: fingerprints differ"
    );
}

/// The core property: for a random base program and a random 3-edit
/// script, every incrementally solved state equals a from-scratch solve
/// of the same text — under SFS (both orders) and VSFS (jobs 1/2/8).
#[test]
fn edit_sequences_match_from_scratch_solves() {
    vsfs_testkit::check_cases("incremental::edit_sequences_match", CASES, |rng| {
        let cfg = random_config(rng);
        let script = edit_script(&cfg, rng.next_u64(), 3);
        let base_text = script.base.to_string();
        let opts = IncrementalOptions {
            order: if rng.gen_bool(0.5) { SolveOrder::Fifo } else { SolveOrder::Topo },
            ..IncrementalOptions::default()
        };
        let (mut state, _) = solve_program(&base_text, opts, None, None).expect("base solves");

        for (i, step) in script.steps.iter().enumerate() {
            let text = step.program.to_string();
            let (next, report) =
                resolve_edit(&state, &text, opts, None, None).expect("edit solves");
            let label = format!("step {i} (edit @{})", step.name);
            assert!(
                report.incremental,
                "{label}: warm state must be available after a complete solve"
            );

            // From-scratch SFS, both worklist orders.
            let cold = cold_pipeline(&text, 1);
            for order in [SolveOrder::Fifo, SolveOrder::Topo] {
                let r = vsfs_core::run_sfs_ordered(
                    &cold.prog, &cold.aux, &cold.mssa, &cold.svfg, order,
                );
                assert_matches(&format!("{label} vs sfs/{order:?}"), &next, &cold, &r, rng);
            }
            // From-scratch VSFS at three parallelism levels.
            for (jobs, order) in
                [(1, SolveOrder::Topo), (2, SolveOrder::Fifo), (8, SolveOrder::Topo)]
            {
                let cold_j = cold_pipeline(&text, jobs);
                let r = vsfs_core::run_vsfs_jobs_ordered(
                    &cold_j.prog,
                    &cold_j.aux,
                    &cold_j.mssa,
                    &cold_j.svfg,
                    jobs,
                    order,
                );
                assert_matches(
                    &format!("{label} vs vsfs/j{jobs}/{order:?}"),
                    &next,
                    &cold_j,
                    &r,
                    rng,
                );
            }
            state = next;
        }
    });
}

/// An identical-text edit invalidates nothing and preserves the
/// fingerprint, on generated programs of varying shape.
#[test]
fn noop_edits_invalidate_nothing() {
    vsfs_testkit::check_cases("incremental::noop_edits", CASES, |rng| {
        let cfg = random_config(rng);
        let script = edit_script(&cfg, rng.next_u64(), 1);
        let text = script.base.to_string();
        let (state, r0) = solve_program(&text, IncrementalOptions::default(), None, None).unwrap();
        let (_, r1) =
            resolve_edit(&state, &text, IncrementalOptions::default(), None, None).unwrap();
        assert!(r1.incremental);
        assert_eq!(r1.dirty_nodes, 0, "identical text must invalidate nothing");
        assert_eq!(r1.fingerprint, r0.fingerprint);
    });
}

/// A single-function edit must not invalidate the whole graph: the
/// dirty region is a strict subset on every generated case.
#[test]
fn localized_edits_dirty_strict_subsets() {
    vsfs_testkit::check_cases("incremental::localized_edits", CASES, |rng| {
        let cfg = random_config(rng);
        let script = edit_script(&cfg, rng.next_u64(), 1);
        let (state, _) =
            solve_program(&script.base.to_string(), IncrementalOptions::default(), None, None)
                .unwrap();
        let step = &script.steps[0];
        let (_, report) = resolve_edit(
            &state,
            &step.program.to_string(),
            IncrementalOptions::default(),
            None,
            None,
        )
        .unwrap();
        assert!(report.incremental);
        assert!(report.dirty_nodes > 0, "a real edit must dirty something");
        assert!(
            report.dirty_nodes < report.total_nodes,
            "edit to @{} dirtied all {} nodes — invalidation is not localized",
            step.name,
            report.total_nodes
        );
    });
}

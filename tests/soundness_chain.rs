//! The per-query soundness chain across the four precision tiers
//! (DESIGN.md §14): for every top-level value `v`,
//!
//! ```text
//! pt_steensgaard(v) ⊇ pt_unify(v) ⊇ pt_andersen(v) ⊇ pt_flow(v)
//! ```
//!
//! and the resolved call-edge sets nest the same way. This is the
//! contract that makes the degradation ladder *sound*: any budget trip
//! can step up the chain and still report an over-approximation of the
//! flow-sensitive truth. Checked on randomly generated workloads, on
//! the hand-written corpus, and on the checker corpus (the programs the
//! four-tier `check-summary:` report runs over).

use vsfs::prelude::*;
use vsfs_andersen::{analyze_unify_with_config, UnifyConfig, UnifyResult};
use vsfs_testkit::Rng;
use vsfs_workloads::gen::{generate, WorkloadConfig};

const CASES: u32 = 32;

fn random_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(1usize..8),
        segments: rng.gen_range(1usize..5),
        loads_per_block: rng.gen_range(0usize..4),
        stores_per_block: rng.gen_range(0usize..3),
        load_chain: rng.gen_range(0usize..4),
        heap_fraction: rng.gen_range(0.0f64..1.0),
        array_fraction: rng.gen_range(0.0f64..1.0),
        indirect_call_fraction: rng.gen_range(0.0f64..0.6),
        backward_call_fraction: rng.gen_range(0.0f64..0.4),
        deref_chain: rng.gen_range(0.0f64..0.6),
        ..WorkloadConfig::small()
    }
}

fn sorted_unify_edges(r: &UnifyResult) -> Vec<(vsfs_ir::InstId, vsfs_ir::FuncId)> {
    let mut edges: Vec<_> = r.callgraph.edges().collect();
    edges.sort_unstable();
    edges
}

/// Asserts the full four-tier chain on one program.
fn assert_chain(prog: &Program, label: &str) {
    let steens = analyze_unify_with_config(prog, UnifyConfig::steensgaard());
    let unify = analyze_unify_with_config(prog, UnifyConfig::default());
    let aux = andersen::analyze(prog);
    let mssa = MemorySsa::build(prog, &aux);
    let svfg = Svfg::build(prog, &aux, &mssa);
    let flow = vsfs_core::run_vsfs(prog, &aux, &mssa, &svfg);

    for v in prog.values.indices() {
        let name = &prog.values[v].name;
        assert!(
            steens.value_pts(v).is_superset(unify.value_pts(v)),
            "{label}: steensgaard ⊉ unify at %{name}"
        );
        assert!(
            unify.value_pts(v).is_superset(aux.value_pts(v)),
            "{label}: unify ⊉ andersen at %{name}"
        );
        assert!(
            aux.value_pts(v).is_superset(flow.value_pts(v)),
            "{label}: andersen ⊉ flow-sensitive at %{name}"
        );
    }

    let steens_edges = sorted_unify_edges(&steens);
    let unify_edges = sorted_unify_edges(&unify);
    let mut aux_edges: Vec<_> = aux.callgraph.edges().collect();
    aux_edges.sort_unstable();
    for e in &unify_edges {
        assert!(steens_edges.contains(e), "{label}: steensgaard call graph misses {e:?}");
    }
    for e in &aux_edges {
        assert!(unify_edges.contains(e), "{label}: unify call graph misses {e:?}");
    }
    for e in &flow.callgraph_edges {
        assert!(aux_edges.contains(e), "{label}: andersen call graph misses {e:?}");
    }
}

#[test]
fn chain_holds_on_random_workloads() {
    vsfs_testkit::check_cases("soundness_chain::random_workloads", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        assert_chain(&prog, &format!("seed {}", cfg.seed));
    });
}

#[test]
fn chain_holds_on_the_hand_written_corpus() {
    for c in vsfs_workloads::corpus::corpus() {
        let prog = parse_program(c.source).expect("corpus parses");
        assert_chain(&prog, c.name);
    }
}

#[test]
fn chain_holds_on_the_checker_corpus() {
    let cases = vsfs_checkers::load_corpus(&vsfs_checkers::corpus::default_corpus_dir())
        .expect("checker corpus loads");
    assert!(!cases.is_empty(), "checker corpus must not be empty");
    for case in cases {
        let prog = parse_program(&case.source).expect("checker corpus parses");
        assert_chain(&prog, &case.name);
    }
}

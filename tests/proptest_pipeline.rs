//! Property tests over randomly generated programs: the whole pipeline
//! upholds its contracts for *any* well-formed input the generator can
//! produce.

use proptest::prelude::*;
use vsfs::prelude::*;
use vsfs_core::result::precision_diff;
use vsfs_workloads::gen::{generate, WorkloadConfig};

/// A small random configuration space around `WorkloadConfig::small`.
fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        any::<u64>(),
        1usize..8,   // functions
        1usize..5,   // segments
        0usize..4,   // loads per block
        0usize..3,   // stores per block
        0usize..4,   // load chain
        0.0f64..1.0, // heap fraction
        0.0f64..1.0, // array fraction
        0.0f64..0.6, // indirect-call fraction
        0.0f64..0.4, // backward-call fraction
        0.0f64..0.6, // deref chain
    )
        .prop_map(
            |(seed, functions, segments, loads, stores, chain, heap, array, icall, back, deref)| {
                WorkloadConfig {
                    seed,
                    functions,
                    segments,
                    loads_per_block: loads,
                    stores_per_block: stores,
                    load_chain: chain,
                    heap_fraction: heap,
                    array_fraction: array,
                    indirect_call_fraction: icall,
                    backward_call_fraction: back,
                    deref_chain: deref,
                    ..WorkloadConfig::small()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every generated program is verifier-clean and round-trips through
    /// the textual form.
    #[test]
    fn generated_programs_verify_and_roundtrip(cfg in config_strategy()) {
        let prog = generate(&cfg);
        vsfs_ir::verify::verify(&prog).expect("generator output verifies");
        let text = prog.to_string();
        let again = parse_program(&text).expect("printed program parses");
        vsfs_ir::verify::verify(&again).expect("reparsed program verifies");
        prop_assert_eq!(prog.inst_count(), again.inst_count());
        prop_assert_eq!(prog.objects.len(), again.objects.len());
    }

    /// The paper's correctness theorem (Section IV-E): VSFS computes
    /// exactly SFS's solution.
    #[test]
    fn sfs_and_vsfs_agree(cfg in config_strategy()) {
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
        let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        if let Some(diff) = precision_diff(&prog, &sfs, &vsfs) {
            return Err(TestCaseError::fail(format!("seed {}: {diff}", cfg.seed)));
        }
    }

    /// Flow-sensitive results refine Andersen's, and the flow-sensitive
    /// call graph is a subgraph of Andersen's.
    #[test]
    fn flow_sensitive_refines_auxiliary(cfg in config_strategy()) {
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let fs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        for v in prog.values.indices() {
            prop_assert!(
                aux.value_pts(v).is_superset(&fs.pt[v]),
                "pt(%{}) not refined", prog.values[v].name
            );
        }
        for &(call, callee) in &fs.callgraph_edges {
            prop_assert!(aux.callgraph.callees(call).contains(&callee));
        }
    }
}

//! Property tests over randomly generated programs: the whole pipeline
//! upholds its contracts for *any* well-formed input the generator can
//! produce.

use vsfs::prelude::*;
use vsfs_core::result::precision_diff;
use vsfs_testkit::Rng;
use vsfs_workloads::gen::{generate, WorkloadConfig};

const CASES: u32 = 48;

/// A small random configuration space around `WorkloadConfig::small`.
fn random_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(1usize..8),
        segments: rng.gen_range(1usize..5),
        loads_per_block: rng.gen_range(0usize..4),
        stores_per_block: rng.gen_range(0usize..3),
        load_chain: rng.gen_range(0usize..4),
        heap_fraction: rng.gen_range(0.0f64..1.0),
        array_fraction: rng.gen_range(0.0f64..1.0),
        indirect_call_fraction: rng.gen_range(0.0f64..0.6),
        backward_call_fraction: rng.gen_range(0.0f64..0.4),
        deref_chain: rng.gen_range(0.0f64..0.6),
        ..WorkloadConfig::small()
    }
}

/// Every generated program is verifier-clean and round-trips through
/// the textual form.
#[test]
fn generated_programs_verify_and_roundtrip() {
    vsfs_testkit::check_cases("pipeline::generated_programs_verify_and_roundtrip", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        vsfs_ir::verify::verify(&prog).expect("generator output verifies");
        let text = prog.to_string();
        let again = parse_program(&text).expect("printed program parses");
        vsfs_ir::verify::verify(&again).expect("reparsed program verifies");
        assert_eq!(prog.inst_count(), again.inst_count());
        assert_eq!(prog.objects.len(), again.objects.len());
    });
}

/// The paper's correctness theorem (Section IV-E): VSFS computes
/// exactly SFS's solution.
#[test]
fn sfs_and_vsfs_agree() {
    vsfs_testkit::check_cases("pipeline::sfs_and_vsfs_agree", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
        let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        if let Some(diff) = precision_diff(&prog, &sfs, &vsfs) {
            panic!("seed {}: {diff}", cfg.seed);
        }
    });
}

/// Flow-sensitive results refine Andersen's, and the flow-sensitive
/// call graph is a subgraph of Andersen's.
#[test]
fn flow_sensitive_refines_auxiliary() {
    vsfs_testkit::check_cases("pipeline::flow_sensitive_refines_auxiliary", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let fs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        for v in prog.values.indices() {
            assert!(
                aux.value_pts(v).is_superset(fs.value_pts(v)),
                "pt(%{}) not refined",
                prog.values[v].name
            );
        }
        for &(call, callee) in &fs.callgraph_edges {
            assert!(aux.callgraph.callees(call).contains(&callee));
        }
    });
}

//! Graceful-degradation guarantees of governed solving.
//!
//! Three properties, each checked across the whole hand-written corpus:
//!
//! 1. **Soundness of the fallback**: whenever the flow-sensitive stage
//!    degrades, the reported result is the auxiliary Andersen analysis,
//!    which over-approximates the complete flow-sensitive result — every
//!    points-to set and every call edge of the complete VSFS run is
//!    contained in the fallback.
//! 2. **No deadlock, no poisoning**: tripping the budget (or cancelling
//!    the token) at *every* possible checkpoint returns normally with a
//!    `Degraded` completion, and the very same inputs still solve cleanly
//!    afterwards — no global state is corrupted by an interrupted run.
//! 3. **Schedule independence**: with a seeded fault plan, jobs 1, 2 and
//!    8 produce bit-identical results, completions and degraded stages.

use vsfs::prelude::*;
use vsfs_adt::govern::{Budget, CancelToken, Completion, DegradeReason, FaultKind, Governor};
use vsfs_core::GovernedAnalysis;
use vsfs_testkit::FaultPlan;

struct Pipeline {
    prog: Program,
    aux: andersen::AndersenResult,
    mssa: MemorySsa,
    svfg: Svfg,
}

fn pipeline(source: &str, jobs: usize) -> Pipeline {
    let prog = parse_program(source).expect("corpus parses");
    let aux = andersen::analyze_with_config(&prog, andersen::AndersenConfig::with_jobs(jobs));
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    Pipeline { prog, aux, mssa, svfg }
}

fn run_governed(p: &Pipeline, jobs: usize, gov: &Governor) -> GovernedAnalysis {
    vsfs_core::run_vsfs_governed(&p.prog, &p.aux, &p.mssa, &p.svfg, jobs, gov)
}

/// The fallback (= Andersen) must contain the complete flow-sensitive
/// result: per-value points-to supersets and a call-edge superset.
fn assert_fallback_is_superset(p: &Pipeline, complete: &FlowSensitiveResult, label: &str) {
    let fallback = FlowSensitiveResult::from_andersen(&p.prog, &p.aux);
    for v in p.prog.values.indices() {
        assert!(
            fallback.value_pts(v).is_superset(complete.value_pts(v)),
            "{label}: fallback pt(%{}) misses flow-sensitive objects",
            p.prog.values[v].name
        );
    }
    for edge in &complete.callgraph_edges {
        assert!(
            fallback.callgraph_edges.contains(edge),
            "{label}: fallback call graph misses {edge:?}"
        );
    }
}

#[test]
fn andersen_fallback_over_approximates_complete_vsfs() {
    for c in vsfs_workloads::corpus::corpus() {
        let p = pipeline(c.source, 1);
        let complete = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        assert_fallback_is_superset(&p, &complete, c.name);
    }
}

#[test]
fn step_budget_trips_at_every_checkpoint_without_deadlock_or_poison() {
    for c in vsfs_workloads::corpus::corpus() {
        for jobs in [1, 2] {
            let p = pipeline(c.source, jobs);
            let complete = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
            // How many checkpoints does a full run pass? Bound the sweep
            // by the step count of an unlimited governed run.
            let probe = Governor::unlimited();
            let ga = run_governed(&p, jobs, &probe);
            assert!(ga.is_complete(), "{}: unlimited budget must complete", c.name);
            let total = probe.steps();
            for k in 0..total {
                let gov = Governor::new(Budget::unlimited().with_steps(k));
                let ga = run_governed(&p, jobs, &gov);
                match &ga.completion {
                    Completion::Degraded(DegradeReason::StepBudget) => {
                        assert_fallback_is_superset(&p, &complete, c.name);
                        assert_eq!(ga.mode, "flow-insensitive-fallback", "{}", c.name);
                        assert!(ga.degraded_stage.is_some(), "{}", c.name);
                    }
                    other => panic!("{} k={k}: expected step-budget trip, got {other:?}", c.name),
                }
            }
            // A budget of exactly `total` steps completes again: nothing
            // was poisoned by the interrupted runs above.
            let gov = Governor::new(Budget::unlimited().with_steps(total));
            assert!(run_governed(&p, jobs, &gov).is_complete(), "{}", c.name);
        }
    }
}

#[test]
fn pre_cancelled_token_degrades_immediately_and_cleanly() {
    for c in vsfs_workloads::corpus::corpus() {
        let p = pipeline(c.source, 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let gov = Governor::with_cancel(Budget::unlimited(), cancel);
        let ga = run_governed(&p, 2, &gov);
        assert_eq!(ga.completion, Completion::Degraded(DegradeReason::Cancelled), "{}", c.name);
        // The same pipeline still solves normally afterwards.
        let again = run_governed(&p, 2, &Governor::unlimited());
        assert!(again.is_complete(), "{}", c.name);
    }
}

#[test]
fn seeded_faults_are_bit_identical_across_job_counts() {
    let kinds =
        [FaultKind::PanicAtTask, FaultKind::DeadlineAtCheckpoint, FaultKind::MemCapAtCheckpoint];
    for c in vsfs_workloads::corpus::corpus() {
        for kind in kinds {
            for seed in 1..=3u64 {
                let plan = FaultPlan::from_seed(kind, seed);
                let runs: Vec<(usize, Pipeline, GovernedAnalysis)> = [1usize, 2, 8]
                    .into_iter()
                    .map(|jobs| {
                        let p = pipeline(c.source, jobs);
                        let gov = Governor::unlimited().with_fault(plan.spec());
                        let ga = run_governed(&p, jobs, &gov);
                        (jobs, p, ga)
                    })
                    .collect();
                let (_, p0, first) = &runs[0];
                for (jobs, _, ga) in &runs[1..] {
                    let label = format!("{} {:?} seed {seed} jobs {jobs}", c.name, kind);
                    assert_eq!(ga.completion, first.completion, "{label}");
                    assert_eq!(ga.mode, first.mode, "{label}");
                    assert_eq!(ga.degraded_stage, first.degraded_stage, "{label}");
                    for v in p0.prog.values.indices() {
                        assert_eq!(ga.result.value_pts(v), first.result.value_pts(v), "{label}");
                    }
                    assert_eq!(ga.result.callgraph_edges, first.result.callgraph_edges, "{label}");
                }
            }
        }
    }
}

/// The second rung of the ladder: an auxiliary-stage trip during a
/// from-scratch solve no longer errors — the (ungoverned) unification
/// tier stands in, tagged `"unification-fallback"` / stage `"andersen"`,
/// and its points-to sets over-approximate both the complete
/// flow-sensitive result and the Andersen tier above them.
#[test]
fn aux_stage_trip_takes_the_unification_rung() {
    for c in vsfs_workloads::corpus::corpus() {
        let p = pipeline(c.source, 1);
        let complete = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);

        let cancel = CancelToken::new();
        cancel.cancel();
        let aux_gov = Governor::with_cancel(Budget::unlimited(), cancel);
        let (state, report) = vsfs_core::solve_program(
            c.source,
            vsfs_core::IncrementalOptions::default(),
            Some(&aux_gov),
            None,
        )
        .unwrap_or_else(|e| panic!("{}: the rung must absorb the trip, got {e:?}", c.name));

        assert_eq!(state.analysis.mode, "unification-fallback", "{}", c.name);
        assert_eq!(state.analysis.degraded_stage, Some("andersen"), "{}", c.name);
        assert_eq!(
            state.analysis.completion,
            Completion::Degraded(DegradeReason::Cancelled),
            "{}",
            c.name
        );
        assert!(!report.incremental, "{}", c.name);

        // Sound: the delivered tier contains every flow-sensitive fact.
        // (Value ids align because both states parse the same text.)
        for v in p.prog.values.indices() {
            assert!(
                state.analysis.result.value_pts(v).is_superset(complete.value_pts(v)),
                "{}: unify rung pt(%{}) misses flow-sensitive objects",
                c.name,
                p.prog.values[v].name
            );
        }
        for edge in &complete.callgraph_edges {
            assert!(
                state.analysis.result.callgraph_edges.contains(edge),
                "{}: unify rung call graph misses {edge:?}",
                c.name
            );
        }
    }
}

//! Determinism of the parallel solving modes.
//!
//! The parallel layer promises *bit-identical* results for any
//! `--jobs` value: object-partitioned versioning assigns the same slot
//! ids as the sequential pass by construction, and Andersen's wave mode
//! converges on the same unique least fixpoint as the sequential
//! worklist. These tests drive the full pipeline at `--jobs 1/2/8` over
//! the corpus and generated workloads and demand equality, then check
//! the solvers against each other (SFS == VSFS everywhere, dense == VSFS
//! on call-free programs) with every parallel phase enabled.

use vsfs::prelude::*;
use vsfs_andersen::AndersenConfig;
use vsfs_core::queries::AliasQueries;
use vsfs_core::result::precision_diff;
use vsfs_workloads::gen::{generate, WorkloadConfig};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn test_programs() -> Vec<(String, Program)> {
    let mut progs: Vec<(String, Program)> = vsfs_workloads::corpus::corpus()
        .into_iter()
        .map(|p| (p.name.to_string(), parse_program(p.source).unwrap()))
        .collect();
    for seed in 0..6 {
        let cfg = WorkloadConfig { seed, ..WorkloadConfig::small() };
        progs.push((format!("small seed {seed}"), generate(&cfg)));
    }
    let heavy = WorkloadConfig {
        seed: 424,
        loads_per_block: 4,
        stores_per_block: 2,
        load_chain: 3,
        heap_fraction: 0.7,
        array_fraction: 0.6,
        indirect_call_fraction: 0.4,
        backward_call_fraction: 0.15,
        ..WorkloadConfig::small()
    };
    progs.push(("heavy seed 424".to_string(), generate(&heavy)));
    progs
}

/// Runs the whole pipeline — parallel Andersen, memory SSA, SVFG,
/// parallel versioning, VSFS main phase — with `jobs` workers.
fn pipeline_at(prog: &Program, jobs: usize) -> FlowSensitiveResult {
    let aux = andersen::analyze_with_config(prog, AndersenConfig::with_jobs(jobs));
    let mssa = MemorySsa::build(prog, &aux);
    let svfg = Svfg::build(prog, &aux, &mssa);
    vsfs_core::run_vsfs_jobs(prog, &aux, &mssa, &svfg, jobs)
}

fn sorted_edges(r: &FlowSensitiveResult) -> Vec<(vsfs_ir::InstId, vsfs_ir::FuncId)> {
    let mut e = r.callgraph_edges.clone();
    e.sort();
    e
}

#[test]
fn full_pipeline_is_bit_identical_across_job_counts() {
    for (name, prog) in test_programs() {
        let base = pipeline_at(&prog, JOB_COUNTS[0]);
        for &jobs in &JOB_COUNTS[1..] {
            let other = pipeline_at(&prog, jobs);
            for v in prog.values.indices() {
                assert_eq!(
                    base.value_pts(v),
                    other.value_pts(v),
                    "{name}: pt(%{}) differs at jobs={jobs}",
                    prog.values[v].name
                );
            }
            assert_eq!(
                sorted_edges(&base),
                sorted_edges(&other),
                "{name}: call graph differs at jobs={jobs}"
            );
            // The hash-consed store must end up bit-identical too: the
            // same canonical sets get interned in the same order for
            // every worker count.
            assert_eq!(
                base.stats.store.unique_sets, other.stats.store.unique_sets,
                "{name}: unique interned set count differs at jobs={jobs}"
            );
            assert_eq!(
                base.stats.store.unique_set_bytes, other.stats.store.unique_set_bytes,
                "{name}: interned set bytes differ at jobs={jobs}"
            );
            // Client-visible query answers must not depend on `--jobs`.
            let qa = AliasQueries::new(&prog, &base);
            let qb = AliasQueries::new(&prog, &other);
            let mut prev = None;
            for v in prog.values.indices() {
                assert_eq!(qa.unique_target(v), qb.unique_target(v), "{name} jobs={jobs}");
                assert_eq!(qa.is_empty(v), qb.is_empty(v), "{name} jobs={jobs}");
                assert_eq!(qa.may_point_to_heap(v), qb.may_point_to_heap(v), "{name} jobs={jobs}");
                if let Some(p) = prev {
                    assert_eq!(qa.may_alias(p, v), qb.may_alias(p, v), "{name} jobs={jobs}");
                }
                prev = Some(v);
            }
        }
    }
}

#[test]
fn andersen_wave_mode_matches_sequential_everywhere() {
    for (name, prog) in test_programs() {
        let seq = andersen::analyze(&prog);
        for &jobs in &JOB_COUNTS[1..] {
            let wave = andersen::analyze_with_config(&prog, AndersenConfig::with_jobs(jobs));
            for v in prog.values.indices() {
                assert_eq!(
                    seq.value_pts(v).iter().collect::<Vec<_>>(),
                    wave.value_pts(v).iter().collect::<Vec<_>>(),
                    "{name}: Andersen pt(%{}) differs at jobs={jobs}",
                    prog.values[v].name
                );
            }
            for o in prog.objects.indices() {
                assert_eq!(
                    seq.object_pts(o).iter().collect::<Vec<_>>(),
                    wave.object_pts(o).iter().collect::<Vec<_>>(),
                    "{name}: Andersen object pts differ at jobs={jobs}"
                );
            }
            let edges = |r: &vsfs_andersen::AndersenResult| {
                let mut e: Vec<_> = r.callgraph.edges().collect();
                e.sort();
                e
            };
            assert_eq!(edges(&seq), edges(&wave), "{name}: call graph differs at jobs={jobs}");
        }
    }
}

#[test]
fn solvers_agree_with_all_parallel_phases_enabled() {
    // Cross-solver equivalence under the parallel pipeline: SFS == VSFS
    // on every program, and dense == VSFS on call-free programs (the
    // two formulations only coincide without call boundaries — see
    // tests/dense_baseline.rs).
    for (name, prog) in test_programs() {
        let aux = andersen::analyze_with_config(&prog, AndersenConfig::with_jobs(8));
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let sfs = run_sfs(&prog, &aux, &mssa, &svfg);
        let vsfs = vsfs_core::run_vsfs_jobs(&prog, &aux, &mssa, &svfg, 8);
        if let Some(diff) = precision_diff(&prog, &sfs, &vsfs) {
            panic!("{name}: SFS and VSFS disagree under parallel phases: {diff}");
        }
        let has_calls = prog.insts.iter().any(|i| matches!(i.kind, vsfs_ir::InstKind::Call { .. }));
        if !has_calls {
            let dense = vsfs_core::run_dense(&prog, &aux);
            for v in prog.values.indices() {
                assert_eq!(
                    dense.value_pts(v),
                    vsfs.value_pts(v),
                    "{name}: dense and VSFS differ on call-free %{}",
                    prog.values[v].name
                );
            }
        }
    }
}

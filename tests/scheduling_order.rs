//! Order-independence of the scheduled fixpoint engine.
//!
//! The worklist order (`--order fifo|topo`) and the worker count
//! (`--jobs`) are pure scheduling choices: the solvers compute the
//! unique least fixpoint of a monotone system, so every combination
//! must produce bit-identical points-to sets, call graphs, client
//! query answers, and checker findings. These tests drive random
//! workloads through every `order x jobs` combination and demand
//! equality — the contract the scheduling benchmark's `check_identical`
//! also enforces on the big suite workloads.

use vsfs::prelude::*;
use vsfs_checkers::{run_checkers, Finding, FlowView};
use vsfs_core::queries::AliasQueries;
use vsfs_core::result::precision_diff;
use vsfs_core::SolveOrder;
use vsfs_testkit::Rng;
use vsfs_workloads::gen::{generate, WorkloadConfig};

const CASES: u32 = 16;
const ORDERS: [SolveOrder; 2] = [SolveOrder::Fifo, SolveOrder::Topo];
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

/// A random configuration space around `WorkloadConfig::small`, biased
/// toward indirect calls so on-the-fly activation (the one scheduling
/// path that grows the graph mid-solve) is exercised.
fn random_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(2usize..8),
        segments: rng.gen_range(1usize..5),
        loads_per_block: rng.gen_range(0usize..4),
        stores_per_block: rng.gen_range(0usize..3),
        load_chain: rng.gen_range(0usize..4),
        heap_fraction: rng.gen_range(0.0f64..1.0),
        array_fraction: rng.gen_range(0.0f64..1.0),
        indirect_call_fraction: rng.gen_range(0.1f64..0.6),
        backward_call_fraction: rng.gen_range(0.0f64..0.4),
        deref_chain: rng.gen_range(0.0f64..0.6),
        ..WorkloadConfig::small()
    }
}

/// Everything a client can observe from one flow-sensitive run.
fn observe(prog: &Program, r: &FlowSensitiveResult, svfg: &Svfg) -> Vec<Finding> {
    run_checkers(prog, svfg, &FlowView(r))
}

fn assert_same_queries(
    prog: &Program,
    a: &FlowSensitiveResult,
    b: &FlowSensitiveResult,
    ctx: &str,
) {
    let qa = AliasQueries::new(prog, a);
    let qb = AliasQueries::new(prog, b);
    let mut prev = None;
    for v in prog.values.indices() {
        assert_eq!(qa.unique_target(v), qb.unique_target(v), "{ctx}: unique_target");
        assert_eq!(qa.is_empty(v), qb.is_empty(v), "{ctx}: is_empty");
        assert_eq!(qa.may_point_to_heap(v), qb.may_point_to_heap(v), "{ctx}: heap");
        if let Some(p) = prev {
            assert_eq!(qa.may_alias(p, v), qb.may_alias(p, v), "{ctx}: may_alias");
        }
        prev = Some(v);
    }
}

/// VSFS: every `order x jobs` combination yields the same result, the
/// same query answers, and the same checker findings.
#[test]
fn vsfs_is_identical_across_orders_and_jobs() {
    vsfs_testkit::check_cases("scheduling::vsfs_orders_and_jobs", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);

        let base = vsfs_core::run_vsfs_jobs_ordered(&prog, &aux, &mssa, &svfg, 1, ORDERS[0]);
        let base_findings = observe(&prog, &base, &svfg);
        for &order in &ORDERS {
            for &jobs in &JOB_COUNTS {
                if (order, jobs) == (ORDERS[0], 1) {
                    continue;
                }
                let ctx = format!("seed {} order {} jobs {jobs}", cfg.seed, order.name());
                let r = vsfs_core::run_vsfs_jobs_ordered(&prog, &aux, &mssa, &svfg, jobs, order);
                if let Some(diff) = precision_diff(&prog, &base, &r) {
                    panic!("{ctx}: {diff}");
                }
                assert_same_queries(&prog, &base, &r, &ctx);
                assert_eq!(base_findings, observe(&prog, &r, &svfg), "{ctx}: findings");
            }
        }
    });
}

/// SFS: both orders yield the same result and findings, and agree with
/// VSFS under either order (the paper's equivalence, order-independent).
#[test]
fn sfs_orders_agree_with_each_other_and_with_vsfs() {
    vsfs_testkit::check_cases("scheduling::sfs_orders", CASES, |rng| {
        let cfg = random_config(rng);
        let prog = generate(&cfg);
        let aux = andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);

        let fifo = vsfs_core::run_sfs_ordered(&prog, &aux, &mssa, &svfg, SolveOrder::Fifo);
        let topo = vsfs_core::run_sfs_ordered(&prog, &aux, &mssa, &svfg, SolveOrder::Topo);
        if let Some(diff) = precision_diff(&prog, &fifo, &topo) {
            panic!("seed {}: sfs fifo vs topo: {diff}", cfg.seed);
        }
        assert_eq!(
            observe(&prog, &fifo, &svfg),
            observe(&prog, &topo, &svfg),
            "seed {}: sfs findings differ across orders",
            cfg.seed
        );
        let vsfs = vsfs_core::run_vsfs_ordered(&prog, &aux, &mssa, &svfg, SolveOrder::Topo);
        if let Some(diff) = precision_diff(&prog, &fifo, &vsfs) {
            panic!("seed {}: sfs vs vsfs(topo): {diff}", cfg.seed);
        }
    });
}

//! # vsfs — Object Versioning for Flow-Sensitive Pointer Analysis
//!
//! A from-scratch Rust reproduction of *Object Versioning for
//! Flow-Sensitive Pointer Analysis* (Barbar, Sui, Chen — CGO 2021): the
//! **VSFS** analysis, its **SFS** baseline, and every substrate they need
//! (an LLVM-like partial-SSA IR, Andersen's auxiliary analysis, memory
//! SSA, and the sparse value-flow graph).
//!
//! This facade crate re-exports the workspace's public API. The typical
//! pipeline:
//!
//! ```
//! use vsfs::prelude::*;
//!
//! let prog = parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q = alloc heap H
//!   store %q, %p
//!   %r = load %p
//!   ret
//! }
//! "#)?;
//! let aux = andersen::analyze(&prog);            // auxiliary analysis
//! let mssa = MemorySsa::build(&prog, &aux);      // chi/mu + MEMPHIs
//! let svfg = Svfg::build(&prog, &aux, &mssa);    // sparse value-flow graph
//! let result = run_vsfs(&prog, &aux, &mssa, &svfg);
//! # let sfs = run_sfs(&prog, &aux, &mssa, &svfg);
//! # assert!(vsfs::core::same_precision(&prog, &sfs, &result));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables.

/// Core data structures (sparse bit vectors, typed indices, worklists).
pub use vsfs_adt as adt;
/// Andersen's inclusion-based auxiliary analysis.
pub use vsfs_andersen as andersen;
/// Flow-sensitive solvers: SFS baseline and VSFS.
pub use vsfs_core as core;
/// Graph algorithms, including generic meld labelling.
pub use vsfs_graph as graph;
/// The LLVM-like partial-SSA IR.
pub use vsfs_ir as ir;
/// Memory SSA construction.
pub use vsfs_mssa as mssa;
/// Sparse value-flow graph.
pub use vsfs_svfg as svfg;
/// Benchmark workload generation.
pub use vsfs_workloads as workloads;

/// Convenient glob-import of the common pipeline names.
pub mod prelude {
    pub use vsfs_andersen as andersen;
    pub use vsfs_core::{run_sfs, run_vsfs, FlowSensitiveResult};
    pub use vsfs_ir::{parse_program, Program, ProgramBuilder};
    pub use vsfs_mssa::MemorySsa;
    pub use vsfs_svfg::Svfg;
}

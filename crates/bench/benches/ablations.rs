//! Ablations of design choices called out in `DESIGN.md`:
//!
//! * **Andersen online cycle elimination** — SCC collapsing on versus
//!   off (the auxiliary analysis must be cheap for the staged approach
//!   to pay off; Section II-B).
//! * **Meld-label representation** — sparse bit vectors (the paper uses
//!   LLVM's `SparseBitVector`) versus ordered sets, on the generic meld
//!   labelling of Section IV-B. The paper's Section V-B remarks that a
//!   purpose-built structure might do even better; this quantifies the
//!   off-the-shelf alternatives.

use std::collections::BTreeSet;
use vsfs_adt::{MeldPool, SparseBitVector};
use vsfs_andersen::AndersenConfig;
use vsfs_bench::timing::{black_box, Harness};
use vsfs_graph::{meld_label, DiGraph, MeldLabel};
use vsfs_workloads::WorkloadConfig;

/// Ordered-set meld labels, the naive alternative to sparse bit vectors.
#[derive(Clone, PartialEq, Default)]
struct TreeLabel(BTreeSet<u32>);

impl MeldLabel for TreeLabel {
    fn identity() -> Self {
        TreeLabel(BTreeSet::new())
    }
    fn meld_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
    fn is_identity(&self) -> bool {
        self.0.is_empty()
    }
}

fn andersen_scc(h: &mut Harness) {
    let cfg = WorkloadConfig {
        seed: 77,
        functions: 24,
        segments: 4,
        backward_call_fraction: 0.2, // plenty of call-graph cycles
        ..WorkloadConfig::small()
    };
    let prog = vsfs_workloads::generate(&cfg);
    h.bench("ablation/andersen_cycle_elimination/scc_on", || {
        black_box(vsfs_andersen::analyze_with_config(
            &prog,
            AndersenConfig { scc_interval: Some(10_000), ..Default::default() },
        ))
    });
    h.bench("ablation/andersen_cycle_elimination/scc_off", || {
        black_box(vsfs_andersen::analyze_with_config(
            &prog,
            AndersenConfig { scc_interval: None, ..Default::default() },
        ))
    });
}

/// A layered random DAG with `n` nodes and prelabels on the first layer.
fn meld_input(n: usize) -> (DiGraph<u32>, Vec<u32>) {
    let mut g: DiGraph<u32> = DiGraph::with_nodes(n);
    let mut pre = Vec::new();
    for i in 0..n {
        // Edges to a few later nodes (deterministic pseudo-random).
        for k in 1..=3usize {
            let t = i + (i * 7 + k * 13) % 23 + 1;
            if t < n {
                g.add_edge(i as u32, t as u32);
            }
        }
        if i % 11 == 0 {
            pre.push(i as u32);
        }
    }
    (g, pre)
}

fn meld_representation(h: &mut Harness) {
    let (g, pre_nodes) = meld_input(4000);
    h.bench("ablation/meld_label_representation/sparse_bit_vector", || {
        let mut pre = vec![SparseBitVector::new(); g.node_count()];
        for (i, &n) in pre_nodes.iter().enumerate() {
            pre[n as usize].insert(i as u32);
        }
        black_box(meld_label(&g, pre, |_| false))
    });
    h.bench("ablation/meld_label_representation/btree_set", || {
        let mut pre = vec![TreeLabel::identity(); g.node_count()];
        for (i, &n) in pre_nodes.iter().enumerate() {
            pre[n as usize].0.insert(i as u32);
        }
        black_box(meld_label(&g, pre, |_| false))
    });
    // The paper's §V-B future-work idea: a purpose-built structure.
    // Hash-consed labels with memoized melds turn repeated unions of the
    // same operands into O(1) id lookups.
    h.bench("ablation/meld_label_representation/memoized_meld_pool", || {
        let mut pool = MeldPool::new();
        let mut labels = vec![MeldPool::EMPTY; g.node_count()];
        for (i, &n) in pre_nodes.iter().enumerate() {
            labels[n as usize] = pool.singleton(i as u32);
        }
        // Same chaotic-iteration fixpoint as meld_label, over ids.
        let mut work: std::collections::VecDeque<u32> = g.nodes().collect();
        let mut queued = vec![true; g.node_count()];
        while let Some(v) = work.pop_front() {
            queued[v as usize] = false;
            let lv = labels[v as usize];
            if lv == MeldPool::EMPTY {
                continue;
            }
            for &s in g.successors(v) {
                if s == v {
                    continue;
                }
                let merged = pool.meld(labels[s as usize], lv);
                if merged != labels[s as usize] {
                    labels[s as usize] = merged;
                    if !queued[s as usize] {
                        queued[s as usize] = true;
                        work.push_back(s);
                    }
                }
            }
        }
        black_box(labels)
    });
}

fn main() {
    let mut h = Harness::from_env();
    andersen_scc(&mut h);
    meld_representation(&mut h);
}

//! Section V-A's claim: "the versioning process is always cheap ... as
//! benchmarks take longer to analyse, versioning time becomes more and
//! more negligible."
//!
//! This bench sweeps a heavy-profile workload family across sizes and
//! measures versioning versus the VSFS main phase (and the SFS baseline
//! for context). The versioning share of total time should *shrink* as
//! the workload grows.

use vsfs_bench::timing::{black_box, Harness};
use vsfs_core::VersionTables;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;
use vsfs_workloads::WorkloadConfig;

fn heavy(functions: usize) -> WorkloadConfig {
    WorkloadConfig {
        seed: 9000 + functions as u64,
        functions,
        segments: 5,
        loads_per_block: 4,
        stores_per_block: 2,
        load_chain: 4,
        heap_fraction: 0.7,
        array_fraction: 0.6,
        global_traffic: 0.8,
        ..WorkloadConfig::small()
    }
}

fn main() {
    let mut h = Harness::from_env();
    for functions in [8usize, 16, 32] {
        let prog = vsfs_workloads::generate(&heavy(functions));
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let tables = VersionTables::build(&prog, &mssa, &svfg);

        h.bench(&format!("versioning_scaling/versioning/{functions}"), || {
            black_box(VersionTables::build(&prog, &mssa, &svfg))
        });
        h.bench(&format!("versioning_scaling/vsfs_main/{functions}"), || {
            black_box(vsfs_core::run_vsfs_with_tables(&prog, &aux, &mssa, &svfg, tables.clone()))
        });
        h.bench(&format!("versioning_scaling/sfs_main/{functions}"), || {
            black_box(vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg))
        });
    }
}

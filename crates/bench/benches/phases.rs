//! Per-phase microbenchmarks of the whole pipeline on one medium
//! workload: Andersen's, memory SSA, SVFG construction, versioning, and
//! the two flow-sensitive solvers. The SFS-vs-VSFS pair is the
//! per-benchmark content of the paper's Table III.

use vsfs_bench::timing::{black_box, Harness};
use vsfs_core::VersionTables;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

fn main() {
    let spec = vsfs_workloads::suite::benchmark("ninja").expect("suite entry");
    let prog = vsfs_workloads::generate(&spec.config);
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let tables = VersionTables::build(&prog, &mssa, &svfg);

    let mut h = Harness::from_env();
    h.bench("phases/ninja/andersen", || black_box(vsfs_andersen::analyze(&prog)));
    h.bench("phases/ninja/memory_ssa", || black_box(MemorySsa::build(&prog, &aux)));
    h.bench("phases/ninja/svfg_build", || black_box(Svfg::build(&prog, &aux, &mssa)));
    h.bench("phases/ninja/versioning", || black_box(VersionTables::build(&prog, &mssa, &svfg)));
    h.bench("phases/ninja/sfs_solve", || black_box(vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg)));
    h.bench("phases/ninja/vsfs_solve", || {
        black_box(vsfs_core::run_vsfs_with_tables(&prog, &aux, &mssa, &svfg, tables.clone()))
    });
}

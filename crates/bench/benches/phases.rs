//! Per-phase microbenchmarks of the whole pipeline on one medium
//! workload: Andersen's, memory SSA, SVFG construction, versioning, and
//! the two flow-sensitive solvers. The SFS-vs-VSFS pair is the
//! per-benchmark content of the paper's Table III.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vsfs_core::VersionTables;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

fn phases(c: &mut Criterion) {
    let spec = vsfs_workloads::suite::benchmark("ninja").expect("suite entry");
    let prog = vsfs_workloads::generate(&spec.config);
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let tables = VersionTables::build(&prog, &mssa, &svfg);

    let mut g = c.benchmark_group("phases/ninja");
    g.sample_size(10);
    g.bench_function("andersen", |b| {
        b.iter(|| black_box(vsfs_andersen::analyze(&prog)))
    });
    g.bench_function("memory_ssa", |b| {
        b.iter(|| black_box(MemorySsa::build(&prog, &aux)))
    });
    g.bench_function("svfg_build", |b| {
        b.iter(|| black_box(Svfg::build(&prog, &aux, &mssa)))
    });
    g.bench_function("versioning", |b| {
        b.iter(|| black_box(VersionTables::build(&prog, &mssa, &svfg)))
    });
    g.bench_function("sfs_solve", |b| {
        b.iter(|| black_box(vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg)))
    });
    g.bench_function("vsfs_solve", |b| {
        b.iter(|| {
            black_box(vsfs_core::run_vsfs_with_tables(
                &prog,
                &aux,
                &mssa,
                &svfg,
                tables.clone(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, phases);
criterion_main!(benches);

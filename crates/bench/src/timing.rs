//! A std-only micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so the
//! `benches/` targets (`harness = false`) drive their measurements
//! through this module instead of criterion: a fixed number of warmup
//! runs, a fixed number of timed samples, and a min/median/mean report.
//! Sample counts come from the environment (`VSFS_BENCH_SAMPLES`,
//! `VSFS_BENCH_WARMUP`) so CI can run every bench in smoke mode.

use std::time::{Duration, Instant};

/// Re-export so bench targets need only this module.
pub use std::hint::black_box;

/// Warmup/sample counts for a harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed runs before sampling starts.
    pub warmup: usize,
    /// Timed runs per benchmark (at least 1).
    pub samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 2, samples: 10 }
    }
}

impl BenchConfig {
    /// The default config, overridden by `VSFS_BENCH_SAMPLES` /
    /// `VSFS_BENCH_WARMUP` when set.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Some(s) = read_env_usize("VSFS_BENCH_SAMPLES") {
            cfg.samples = s.max(1);
        }
        if let Some(w) = read_env_usize("VSFS_BENCH_WARMUP") {
            cfg.warmup = w;
        }
        cfg
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (slash-separated path, criterion style).
    pub name: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Runs benchmarks and collects [`BenchResult`]s, printing one line per
/// benchmark as it completes.
#[derive(Debug, Default)]
pub struct Harness {
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness with explicit warmup/sample counts.
    pub fn new(config: BenchConfig) -> Self {
        Harness { config, results: Vec::new() }
    }

    /// A harness configured from the environment.
    pub fn from_env() -> Self {
        Harness::new(BenchConfig::from_env())
    }

    /// Times `f` (warmups, then samples) and records the summary.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot discard the measured work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        for _ in 0..self.config.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.config.samples.max(1));
        for _ in 0..self.config.samples.max(1) {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        let result = BenchResult {
            name: name.to_string(),
            min: times[0],
            median: times[times.len() / 2],
            mean: total / times.len() as u32,
            samples: times.len(),
        };
        println!(
            "{:<52} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            result.name,
            fmt_duration(result.min),
            fmt_duration(result.median),
            fmt_duration(result.mean),
            result.samples
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The result named `name`, if recorded.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Formats a duration with an adaptive unit, e.g. `3.21ms`.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_ordered_summary() {
        let mut h = Harness::new(BenchConfig { warmup: 1, samples: 5 });
        let mut runs = 0u32;
        h.bench("test/spin", || {
            runs += 1;
            std::hint::spin_loop();
            runs
        });
        // 1 warmup + 5 samples.
        assert_eq!(runs, 6);
        let r = h.result("test/spin").expect("recorded");
        assert_eq!(r.samples, 5);
        assert!(r.min <= r.median && r.median <= r.mean.max(r.median));
        assert!(h.result("missing").is_none());
    }

    #[test]
    fn duration_formatting_uses_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50s");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
    }
}

//! Per-phase statistics for one suite benchmark: sizes, timings, and
//! solver counters for every pipeline stage. Useful for understanding
//! *why* Table III's numbers look the way they do.
//!
//! ```text
//! cargo run -p vsfs-bench --release --bin pipeline_stats [-- benchmark]
//! ```

use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ninja".into());
    let Some(spec) = vsfs_workloads::suite::benchmark(&name) else {
        eprintln!("unknown benchmark `{name}`; known: du ninja bake dpkg nano i3 psql janet astyle tmux mruby mutt bash lynx hyriseConsole");
        std::process::exit(2);
    };
    let prog = vsfs_workloads::generate(&spec.config);
    println!(
        "program: {} insts, {} objects, {} values, {} functions",
        prog.inst_count(),
        prog.objects.len(),
        prog.values.len(),
        prog.functions.len()
    );

    let t = Instant::now();
    let aux = vsfs_andersen::analyze(&prog);
    println!("andersen    {:>8.3}s  {:?}", t.elapsed().as_secs_f64(), aux.stats);

    let mut total = 0usize;
    let mut max = 0usize;
    for (v, _) in prog.values.iter_enumerated() {
        let l = aux.value_pts(v).len();
        total += l;
        max = max.max(l);
    }
    println!(
        "aux pts     total={total} max={max} avg={:.1}",
        total as f64 / prog.values.len().max(1) as f64
    );

    let t = Instant::now();
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    println!(
        "memory ssa  {:>8.3}s  {} annotations, {} memphis",
        t.elapsed().as_secs_f64(),
        mssa.annotation_count(),
        mssa.memphis().len()
    );

    let t = Instant::now();
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    println!(
        "svfg        {:>8.3}s  {} nodes, {} direct, {} indirect edges",
        t.elapsed().as_secs_f64(),
        svfg.node_count(),
        svfg.direct_edge_count(),
        svfg.indirect_edge_count()
    );

    let t = Instant::now();
    let tables = vsfs_core::VersionTables::build(&prog, &mssa, &svfg);
    println!(
        "versioning  {:>8.3}s  {} prelabels, {} versions, {} reliance edges, {} edges collapsed",
        t.elapsed().as_secs_f64(),
        tables.stats.prelabels,
        tables.stats.versions,
        tables.stats.reliance_edges,
        tables.stats.edges_collapsed
    );

    let vsfs = vsfs_core::run_vsfs_with_tables(&prog, &aux, &mssa, &svfg, tables);
    let s = &vsfs.stats;
    println!(
        "vsfs solve  {:>8.3}s  {} pops, {} unions, {} sets ({} elems), {} strong updates",
        s.solve_seconds,
        s.node_pops,
        s.object_propagations,
        s.stored_object_sets,
        s.stored_object_elems,
        s.strong_updates
    );

    let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
    let s = &sfs.stats;
    println!(
        "sfs solve   {:>8.3}s  {} pops, {} unions, {} sets ({} elems), {} strong updates",
        s.solve_seconds,
        s.node_pops,
        s.object_propagations,
        s.stored_object_sets,
        s.stored_object_elems,
        s.strong_updates
    );

    let same = vsfs_core::same_precision(&prog, &sfs, &vsfs);
    println!("identical precision: {same}");
    assert!(same);
}

//! Checker benchmark: source-sink engine time and finding counts under
//! both points-to views on buggy variants of suite workloads.
//!
//! ```text
//! checkers [WORKLOADS] [--out FILE]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `du,ninja` — the bigger profiles produce tens of millions
//! of findings and add minutes for no extra signal). Each workload is
//! regenerated with the
//! `free_fraction` / `null_fraction` knobs switched on (the suite
//! configs keep them at zero so the pointer-analysis benchmarks stay
//! bit-identical), then the full pipeline runs once and every checker
//! runs under the Andersen view and the flow-sensitive view. The
//! recorded JSON (`results/BENCH_checkers.json`) holds per-workload
//! checker-stage seconds plus per-checker finding counts under both
//! views and the false positives flow-sensitivity removed — the
//! client-facing Table III row for generated programs.

use std::time::Instant;
use vsfs_adt::mem::CountingAlloc;
use vsfs_adt::stats::PhaseTimer;
use vsfs_checkers::{run_checkers, AndersenView, CheckReport, CheckerKind, FlowView};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;
use vsfs_workloads::gen::WorkloadConfig;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    let mut names: Vec<String> = vec!["du".into(), "ninja".into()];
    let mut out = "results/BENCH_checkers.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let mut timer = PhaseTimer::new();
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let cfg = WorkloadConfig { free_fraction: 0.3, null_fraction: 0.15, ..spec.config.clone() };
        let prog = vsfs_workloads::generate(&cfg);

        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let fs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);

        let t = Instant::now();
        let ander = run_checkers(&prog, &svfg, &AndersenView(&aux));
        let ander_time = t.elapsed();
        let t = Instant::now();
        let flow = run_checkers(&prog, &svfg, &FlowView(&fs));
        let flow_time = t.elapsed();
        let report = CheckReport::new(&prog, ander, flow);

        timer.record(&format!("{name}.checkers_andersen"), ander_time);
        timer.record(&format!("{name}.checkers_flow"), flow_time);
        for &c in CheckerKind::ALL.iter() {
            let a = report.andersen_findings.iter().filter(|f| f.checker == c).count();
            let f = report.flow_findings.iter().filter(|f| f.checker == c).count();
            timer.count(&format!("{name}.{}.andersen", c.name()), a as u64);
            timer.count(&format!("{name}.{}.flow_sensitive", c.name()), f as u64);
        }
        println!(
            "{name}: andersen pass {:.3}s ({} findings), flow-sensitive pass {:.3}s ({} findings)",
            ander_time.as_secs_f64(),
            report.andersen_findings.len(),
            flow_time.as_secs_f64(),
            report.flow_findings.len(),
        );
        for line in report.summary_lines() {
            println!("  {line}");
        }
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
}

fn usage() -> ! {
    eprintln!("usage: checkers [WORKLOAD,WORKLOAD,...] [--out FILE]");
    std::process::exit(2);
}

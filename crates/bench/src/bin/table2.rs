//! Regenerates Table II: benchmark characteristics (SVFG nodes, direct
//! and indirect edges, variable counts) for the 15-benchmark suite.
//!
//! ```text
//! cargo run -p vsfs-bench --release --bin table2 [-- [--csv] benchmark ...]
//! ```

use vsfs_bench::{table2_row, Pipeline};
use vsfs_workloads::suite;

fn main() {
    let mut csv = false;
    let mut filter: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--csv" {
            csv = true;
        } else {
            filter.push(a);
        }
    }
    let mut rows = Vec::new();
    for spec in suite() {
        if !filter.is_empty() && !filter.iter().any(|f| f == spec.name) {
            continue;
        }
        eprintln!("building {} ...", spec.name);
        let p = Pipeline::build(&spec);
        rows.push(table2_row(&spec, &p));
    }
    if csv {
        print!("{}", vsfs_bench::format::csv_table2(&rows));
    } else {
        print!("{}", vsfs_bench::format::render_table2(&rows));
    }
}

//! Scheduling benchmark: FIFO vs topological (SCC-condensation priority)
//! worklist order for both flow-sensitive solvers, with difference
//! propagation active in both runs.
//!
//! ```text
//! scheduling [WORKLOADS] [--out FILE] [--gate PCT]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `du,ninja,bake` — one per size profile). For each workload
//! the bench runs SFS and VSFS under both orders, asserts the final
//! results are identical (the fixpoint is order-independent; exit 1
//! otherwise), and records per `(workload, solver, order)`: worklist
//! pops (node + slot), unions attempted/avoided, delta vs full bytes
//! shipped, and wall seconds. Without `--gate` the run writes
//! `results/BENCH_scheduling.json` (`PhaseTimer::to_json` format).
//!
//! With `--gate PCT` the run instead acts as the CI scheduling gate: it
//! fails (exit 1) unless the topological order reduces *total* worklist
//! pops across all runs by at least `PCT` percent. The gate is
//! counter-based — pop counts are deterministic for a given workload,
//! unlike wall clock.

use std::time::Instant;
use vsfs_adt::stats::PhaseTimer;
use vsfs_core::{precision_diff, FlowSensitiveResult, SolveOrder};
use vsfs_ir::Program;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

fn main() {
    let mut names: Vec<String> = vec!["du".into(), "ninja".into(), "bake".into()];
    let mut out = "results/BENCH_scheduling.json".to_string();
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--gate" => {
                let v = args.next().unwrap_or_else(|| usage());
                gate = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --gate percentage `{v}`");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let mut timer = PhaseTimer::new();
    let mut fifo_pops_total = 0u64;
    let mut topo_pops_total = 0u64;
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let prog = vsfs_workloads::generate(&spec.config);
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);

        for solver in ["sfs", "vsfs"] {
            let mut results: Vec<(SolveOrder, FlowSensitiveResult, f64)> = Vec::new();
            for order in [SolveOrder::Fifo, SolveOrder::Topo] {
                let t = Instant::now();
                let r = match solver {
                    "sfs" => vsfs_core::run_sfs_ordered(&prog, &aux, &mssa, &svfg, order),
                    _ => vsfs_core::run_vsfs_ordered(&prog, &aux, &mssa, &svfg, order),
                };
                results.push((order, r, t.elapsed().as_secs_f64()));
            }
            check_identical(&prog, name, solver, &results);
            for (order, r, secs) in &results {
                let s = &r.stats;
                let pops = (s.node_pops + s.slot_pops) as u64;
                match order {
                    SolveOrder::Fifo => fifo_pops_total += pops,
                    SolveOrder::Topo => topo_pops_total += pops,
                }
                let key = |metric: &str| format!("{name}.{solver}.{}.{metric}", order.name());
                timer.record(&key("solve"), std::time::Duration::from_secs_f64(*secs));
                timer.count(&key("pops"), pops);
                timer.count(&key("unions_attempted"), s.object_propagations as u64);
                timer.count(&key("unions_avoided"), s.unions_avoided as u64);
                timer.count(&key("delta_bytes"), s.delta_bytes as u64);
                timer.count(&key("full_bytes"), s.full_bytes as u64);
                timer.count(&key("pushes_suppressed"), s.pushes_suppressed as u64);
                println!(
                    "{name}.{solver}.{}: {:.3}s, {pops} pops, {} unions ({} avoided), \
                     {} delta bytes vs {} full",
                    order.name(),
                    secs,
                    s.object_propagations,
                    s.unions_avoided,
                    s.delta_bytes,
                    s.full_bytes,
                );
            }
        }
    }

    let reduction = if fifo_pops_total > 0 {
        100.0 * (1.0 - topo_pops_total as f64 / fifo_pops_total as f64)
    } else {
        0.0
    };
    timer.count("total.fifo_pops", fifo_pops_total);
    timer.count("total.topo_pops", topo_pops_total);
    timer.count("total.pop_reduction_pct_x100", (reduction * 100.0).max(0.0) as u64);
    println!(
        "total pops: fifo {fifo_pops_total} vs topo {topo_pops_total} ({reduction:.1}% reduction)"
    );

    if let Some(pct) = gate {
        if reduction < pct {
            eprintln!(
                "FAIL: topological order reduced pops by {reduction:.1}%, below the {pct:.0}% gate"
            );
            std::process::exit(1);
        }
        println!("scheduling gate OK: {reduction:.1}% >= {pct:.0}%");
        return;
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
}

/// Exits 1 unless every run of one solver produced the same points-to
/// sets and call graph — the order-independence contract of the engine.
fn check_identical(
    prog: &Program,
    name: &str,
    solver: &str,
    results: &[(SolveOrder, FlowSensitiveResult, f64)],
) {
    let (base_order, base, _) = &results[0];
    for (order, r, _) in &results[1..] {
        if let Some(diff) = precision_diff(prog, base, r) {
            eprintln!(
                "FAIL: {name}.{solver}: {} and {} orders disagree: {diff}",
                base_order.name(),
                order.name()
            );
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: scheduling [WORKLOAD,WORKLOAD,...] [--out FILE] [--gate PCT]");
    std::process::exit(2);
}

//! Serving-path benchmark: request latency, overload shedding, and
//! snapshot restore against cold solves.
//!
//! ```text
//! server_bench [WORKLOADS] [--requests N] [--gate X] [--out FILE]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `ninja,bake`). For each workload the bench
//!
//! 1. cold-solves the text and times it — the baseline every other
//!    number is judged against;
//! 2. exports the warm state, writes a snapshot through the real file
//!    format ([`vsfs_server::snapshot`]), reads it back, and times
//!    [`vsfs_core::restore_program`] — asserting the restored
//!    fingerprint matches the cold solve;
//! 3. loads the program into a [`vsfs_server::Server`] and samples
//!    per-request dispatch latency (p50/p95) over a mix of `pts`,
//!    `alias`, and `stats` requests on real value names;
//! 4. runs a synthetic overload burst against `run_unix` (2 workers,
//!    queue depth 2, 32 simultaneous connections) and reports the shed
//!    rate — the *correctness* of shedding is pinned by the server's
//!    test suite; this records how much a saturated box sheds.
//!
//! With `--gate X` (default 5) the run doubles as the CI snapshot gate:
//! it fails (exit 1) unless every workload restores at least `X` times
//! faster than its cold solve. Results go to
//! `results/BENCH_server.json` (`PhaseTimer::to_json` format).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use vsfs_adt::stats::PhaseTimer;
use vsfs_core::{export_warm, restore_program, solve_program, IncrementalOptions};
use vsfs_server::json::Json;
use vsfs_server::{snapshot, Server, ServerConfig};

/// Deterministic request-mix seed.
const MIX_SEED: u64 = 0x5e12_7ab1e;

fn main() {
    let mut names: Vec<String> = vec!["ninja".into(), "bake".into()];
    let mut requests = 500usize;
    let mut gate = 5.0f64;
    let mut out = "results/BENCH_server.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => requests = parse_arg(args.next(), "--requests"),
            "--gate" => gate = parse_arg(args.next(), "--gate"),
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let snap_dir = std::env::temp_dir().join(format!("vsfs-server-bench-{}", std::process::id()));
    let mut timer = PhaseTimer::new();
    let mut failed = false;
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let program = vsfs_workloads::generate(&spec.config);
        let source = program.to_string();
        let opts = IncrementalOptions::default();

        // 1. Cold solve baseline.
        let t = Instant::now();
        let (cold, _) = solve_program(&source, opts, None, None)
            .unwrap_or_else(|e| fail(name, "cold solve", &e.to_string()));
        let cold_secs = t.elapsed().as_secs_f64();
        timer.record(&format!("{name}.cold_solve"), t.elapsed());

        // 2. Snapshot save, then restore from the file.
        let export = export_warm(&cold)
            .unwrap_or_else(|| fail(name, "export", "complete solve did not export"));
        let snap = snapshot::Snapshot { id: name.clone(), source: source.clone(), export };
        let t = Instant::now();
        let path = snapshot::save(&snap_dir, &snap)
            .unwrap_or_else(|e| fail(name, "snapshot save", &e.to_string()));
        let save_secs = t.elapsed().as_secs_f64();
        timer.record(&format!("{name}.snapshot_save"), t.elapsed());
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        timer.count(&format!("{name}.snapshot_bytes"), bytes);

        let t = Instant::now();
        let reread =
            snapshot::load(&path).unwrap_or_else(|e| fail(name, "snapshot load", &e.to_string()));
        let (restored, report) = restore_program(&reread.source, &reread.export, opts, None, None)
            .unwrap_or_else(|e| fail(name, "restore", &e.to_string()));
        let restore_secs = t.elapsed().as_secs_f64();
        timer.record(&format!("{name}.snapshot_restore"), t.elapsed());
        if !report.restored {
            fail(name, "restore", "fell back to a cold solve");
        }
        if restored.fingerprint != cold.fingerprint {
            fail(name, "restore", "fingerprint diverged from cold solve");
        }
        let speedup = if restore_secs > 0.0 { cold_secs / restore_secs } else { f64::INFINITY };
        timer.count(&format!("{name}.restore_speedup_x100"), (speedup * 100.0) as u64);
        println!(
            "{name}: cold {cold_secs:.3}s, snapshot save {save_secs:.3}s \
             ({bytes} bytes), restore {restore_secs:.3}s ({speedup:.1}x)"
        );
        if speedup < gate {
            eprintln!("FAIL: {name} restore speedup {speedup:.1}x below the {gate:.0}x gate");
            failed = true;
        }

        // 3. Request latency through the server dispatch path.
        let value_names: Vec<String> = cold
            .prog
            .values
            .iter()
            .filter(|v| !v.name.is_empty())
            .map(|v| v.name.clone())
            .collect();
        drop(restored);
        drop(cold);
        let mut server = Server::new();
        let load = format!(
            "{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}",
            Json::Str(source.clone()).to_line()
        );
        let (resp, _) = server.handle_line(&load);
        if !resp.contains("\"ok\":true") {
            fail(name, "server load", &resp);
        }
        let mut x = MIX_SEED | 1;
        let mut rand = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let pick = |r: &mut dyn FnMut() -> u64| {
            value_names[(r() % value_names.len() as u64) as usize].clone()
        };
        let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
        for i in 0..requests {
            let req = match i % 3 {
                0 => format!("{{\"op\":\"pts\",\"id\":\"w\",\"value\":\"%{}\"}}", pick(&mut rand)),
                1 => format!(
                    "{{\"op\":\"alias\",\"id\":\"w\",\"p\":\"%{}\",\"q\":\"%{}\"}}",
                    pick(&mut rand),
                    pick(&mut rand)
                ),
                _ => "{\"op\":\"stats\",\"id\":\"w\"}".to_string(),
            };
            let t = Instant::now();
            let (resp, _) = server.handle_line(&req);
            latencies_ns.push(t.elapsed().as_nanos() as u64);
            if !resp.starts_with("{\"ok\":") {
                fail(name, "query", &resp);
            }
        }
        latencies_ns.sort_unstable();
        let p50 = latencies_ns[latencies_ns.len() / 2];
        let p95 = latencies_ns[(latencies_ns.len() * 95 / 100).min(latencies_ns.len() - 1)];
        timer.count(&format!("{name}.request_p50_ns"), p50);
        timer.count(&format!("{name}.request_p95_ns"), p95);
        println!("{name}: {requests} requests, p50 {p50}ns, p95 {p95}ns");
    }

    // 4. Overload burst: 32 simultaneous connections vs capacity 4.
    let (served, shed) = overload_burst();
    let attempts = served + shed;
    timer.count("overload.attempts", attempts);
    timer.count("overload.served", served);
    timer.count("overload.shed", shed);
    timer.count("overload.shed_rate_x1000", (shed * 1000).checked_div(attempts).unwrap_or(0));
    println!(
        "overload: {served}/{attempts} served, {shed} shed ({:.0}% shed rate)",
        if attempts > 0 { shed as f64 * 100.0 / attempts as f64 } else { 0.0 }
    );

    let _ = std::fs::remove_dir_all(&snap_dir);
    vsfs_bench::format::write_json_report(&out, &timer.to_json());
    if failed {
        std::process::exit(1);
    }
    println!("server gate OK: every restore speedup >= {gate:.0}x");
}

/// Hammers a deliberately tiny server (2 workers, queue depth 2) with
/// 32 simultaneous connections; returns `(served, shed)`.
fn overload_burst() -> (u64, u64) {
    let sock = std::env::temp_dir().join(format!("vsfs-server-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let config = ServerConfig { workers: 2, queue_depth: 2, ..ServerConfig::default() };
    let handle = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut server = Server::with_config(config);
            let (resp, _) = server.handle_line(
                r#"{"op":"load","id":"w","source":"func @f() {\nentry:\n  %p = alloc stack A\n  ret\n}\n"}"#,
            );
            assert!(resp.contains("\"ok\":true"), "{resp}");
            server.run_unix(&sock)
        })
    };
    wait_for(&sock);

    let outcomes: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32)
            .map(|_| {
                scope.spawn(|| {
                    let Ok(stream) = UnixStream::connect(&sock) else { return false };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let mut writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(_) => return false,
                    };
                    let mut reader = BufReader::new(stream);
                    // The server may shed before reading the request;
                    // write first, then classify whatever line arrives.
                    let _ = writer.write_all(b"{\"op\":\"pts\",\"id\":\"w\",\"value\":\"%p\"}\n");
                    let _ = writer.flush();
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    line.contains("\"ok\":true")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(false)).collect()
    });
    let served = outcomes.iter().filter(|&&ok| ok).count() as u64;
    let shed = outcomes.len() as u64 - served;

    let closer = UnixStream::connect(&sock);
    if let Ok(stream) = closer {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Retry until a shutdown gets past the (possibly still busy)
        // admission queue.
        loop {
            let _ = writer.write_all(b"{\"op\":\"shutdown\"}\n");
            let _ = writer.flush();
            if reader.read_line(&mut line).unwrap_or(0) > 0 && line.contains("\"ok\":true") {
                break;
            }
            line.clear();
            match UnixStream::connect(&sock) {
                Ok(s) => {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    writer = s.try_clone().expect("clone");
                    reader = BufReader::new(s);
                }
                Err(_) => break,
            }
        }
    }
    let _ = handle.join().expect("server thread");
    (served, shed)
}

fn wait_for(sock: &Path) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if UnixStream::connect(sock).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never bound {}", sock.display());
}

fn parse_arg<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    let v = arg.unwrap_or_else(|| usage());
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

fn fail(name: &str, stage: &str, err: &str) -> ! {
    eprintln!("FAIL: {name}: {stage}: {err}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: server_bench [WORKLOAD,WORKLOAD,...] [--requests N] [--gate X] [--out FILE]");
    std::process::exit(2);
}

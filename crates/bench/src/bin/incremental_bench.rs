//! Incremental re-solve benchmark: warm-query latency and
//! re-solve-after-edit against full from-scratch re-solves.
//!
//! ```text
//! incremental [WORKLOADS] [--edits N] [--gate X] [--out FILE]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `ninja,bake` — the solver-dominated profiles; `du` is
//! pipeline-dominated and would measure parser overhead, not the
//! incremental engine). For each workload the bench
//!
//! 1. generates a deterministic *local* edit script
//!    ([`vsfs_workloads::edit_script_local`]: each edit appends a
//!    private non-escaping epilogue to one function — the realistic
//!    save-and-reanalyze workload; full-body rewrites are covered by the
//!    equivalence property suite instead, since a rewrite renames every
//!    object in the function and cannot be absorbed locally),
//! 2. cold-solves the base text through [`vsfs_core::solve_program`],
//! 3. for every edit, times a full from-scratch re-solve of the edited
//!    text against [`vsfs_core::resolve_edit`] from the resident warm
//!    state, asserting the two fingerprints are identical,
//! 4. samples warm-query latency (may-alias over the resident result).
//!
//! With `--gate X` (default 5) the run doubles as the CI incremental
//! gate: it fails (exit 1) unless every workload's **median**
//! edit-speedup (full seconds / incremental seconds) is at least `X`.
//! Results always go to `results/BENCH_incremental.json`
//! (`PhaseTimer::to_json` format).

use std::time::Instant;
use vsfs_adt::stats::PhaseTimer;
use vsfs_core::queries::AliasQueries;
use vsfs_core::{resolve_edit, solve_program, IncrementalOptions};
use vsfs_ir::ValueId;
use vsfs_workloads::edit_script_local;

/// Edit-stream seed: fixed so the benchmark is reproducible run to run.
const EDIT_SEED: u64 = 0xED17_5EED;
/// May-alias queries sampled per resident state.
const QUERY_SAMPLES: u64 = 10_000;

fn main() {
    let mut names: Vec<String> = vec!["ninja".into(), "bake".into()];
    let mut edits = 3usize;
    let mut gate = 5.0f64;
    let mut out = "results/BENCH_incremental.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--edits" => edits = parse_arg(args.next(), "--edits"),
            "--gate" => gate = parse_arg(args.next(), "--gate"),
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let mut timer = PhaseTimer::new();
    let mut failed = false;
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let mut cfg = spec.config.clone();
        if cfg.edit_fraction == 0.0 {
            cfg.edit_fraction = 0.5;
        }
        let script = edit_script_local(&cfg, EDIT_SEED, edits.max(1));
        let base_text = script.base.to_string();
        let opts = IncrementalOptions::default();

        let t = Instant::now();
        let (mut state, _) = solve_program(&base_text, opts, None, None)
            .unwrap_or_else(|e| fail(name, "base solve", &e.to_string()));
        let cold_secs = t.elapsed().as_secs_f64();
        timer.record(&format!("{name}.cold_solve"), t.elapsed());

        let mut speedups = Vec::with_capacity(script.steps.len());
        for (i, step) in script.steps.iter().enumerate() {
            let text = step.program.to_string();

            let t = Instant::now();
            let (full_state, full_report) = solve_program(&text, opts, None, None)
                .unwrap_or_else(|e| fail(name, "full re-solve", &e.to_string()));
            let full_secs = t.elapsed().as_secs_f64();
            // Only the fingerprint is compared below; dropping the full
            // state now keeps a harness artifact (a second resident copy
            // of the whole analysis) out of the incremental timing.
            drop(full_state);

            let t = Instant::now();
            let (next, report) = resolve_edit(&state, &text, opts, None, None)
                .unwrap_or_else(|e| fail(name, "incremental re-solve", &e.to_string()));
            let inc_secs = t.elapsed().as_secs_f64();

            if !report.incremental {
                eprintln!("FAIL: {name} edit {i}: engine fell back to a cold solve");
                std::process::exit(1);
            }
            if report.fingerprint != full_report.fingerprint {
                eprintln!(
                    "FAIL: {name} edit {i} (@{}): incremental fingerprint {:016x} != \
                     from-scratch {:016x}",
                    step.name, report.fingerprint, full_report.fingerprint
                );
                std::process::exit(1);
            }
            let speedup = if inc_secs > 0.0 { full_secs / inc_secs } else { f64::INFINITY };
            speedups.push(speedup);
            let key = |m: &str| format!("{name}.edit{i}.{m}");
            timer.record(&key("full"), std::time::Duration::from_secs_f64(full_secs));
            timer.record(&key("incremental"), std::time::Duration::from_secs_f64(inc_secs));
            timer.count(&key("dirty_nodes"), report.dirty_nodes as u64);
            timer.count(&key("total_nodes"), report.total_nodes as u64);
            timer.count(&key("carried_sets"), report.carried_sets as u64);
            timer.count(&key("speedup_x100"), (speedup * 100.0).min(u64::MAX as f64) as u64);
            println!(
                "{name} edit {i} (@{}): full {full_secs:.3}s vs incremental {inc_secs:.3}s \
                 ({speedup:.1}x, {}/{} dirty)",
                step.name, report.dirty_nodes, report.total_nodes
            );
            state = next;
        }

        // Warm-query latency on the final resident state.
        let queries = AliasQueries::new(&state.prog, &state.analysis.result);
        let n = state.prog.values.len() as u64;
        let mut x = EDIT_SEED | 1;
        let mut rand = move || {
            // xorshift64*: deterministic, no external RNG dependency.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let t = Instant::now();
        let mut hits = 0u64;
        for _ in 0..QUERY_SAMPLES {
            let p = ValueId::new((rand() % n) as u32);
            let q = ValueId::new((rand() % n) as u32);
            hits += queries.may_alias(p, q) as u64;
        }
        let per_query_ns = t.elapsed().as_nanos() as f64 / QUERY_SAMPLES as f64;
        timer.count(&format!("{name}.warm_query_ns"), per_query_ns as u64);
        timer.count(&format!("{name}.warm_query_hits"), hits);

        let mut sorted = speedups.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        timer.count(&format!("{name}.median_speedup_x100"), (median * 100.0) as u64);
        println!(
            "{name}: cold {cold_secs:.3}s, median edit speedup {median:.1}x, \
             warm query {per_query_ns:.0}ns"
        );
        if median < gate {
            eprintln!("FAIL: {name} median edit speedup {median:.1}x below the {gate:.0}x gate");
            failed = true;
        }
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
    if failed {
        std::process::exit(1);
    }
    println!("incremental gate OK: every median speedup >= {gate:.0}x");
}

fn parse_arg<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    let v = arg.unwrap_or_else(|| usage());
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

fn fail(name: &str, stage: &str, err: &str) -> ! {
    eprintln!("FAIL: {name}: {stage}: {err}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: incremental [WORKLOAD,WORKLOAD,...] [--edits N] [--gate X] [--out FILE]");
    std::process::exit(2);
}

//! Memory benchmark of the multi-level deduplication engine: peak
//! live-heap and end-to-end time for the full VSFS pipeline on suite
//! workloads, plus both dedup levels' counters — the chunked store
//! (unique sets/chunks, payload vs flat-equivalent bytes, chunk and
//! set-level memo hit rates) and the region memo (SCC fingerprint hits,
//! solves skipped).
//!
//! ```text
//! dedup_mem [WORKLOADS] [--out FILE] [--gate FILE]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `du,ninja,bake` — one per size profile). Without `--gate`,
//! the run writes `results/BENCH_dedup.json` (`PhaseTimer::to_json`
//! format, `schema` counter = 2: end-to-end seconds per workload in
//! `phases`, peak bytes and both dedup levels' counters in `counters`).
//!
//! With `--gate FILE` the run is the CI MDE gate and fails (exit 1) on
//! any of:
//!
//! * a workload's peak live-heap regressing more than 10% over the
//!   recorded baseline in `FILE`;
//! * the `bake` set payload (`unique_set_bytes`) shrinking less than
//!   25% against the flat one-block-per-chunk equivalent
//!   (`flat_equiv_bytes`) — the chunking has stopped paying for itself;
//! * zero `scc_solves_skipped` on `bake` — the region memo has stopped
//!   firing.
//!
//! Timings are not gated: wall clock is machine-dependent, peak live
//! bytes under the counting allocator and the dedup counters are not.

use std::time::Instant;
use vsfs_adt::mem::{CountingAlloc, MemScope};
use vsfs_adt::stats::PhaseTimer;
use vsfs_bench::format::{read_counter, write_json_report};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// `counters.schema` in the emitted JSON; bump when keys change shape.
const SCHEMA: u64 = 2;

/// Peak regression tolerated by `--gate` before it fails.
const PEAK_SLACK: f64 = 1.10;

/// Minimum `bake` payload reduction vs the flat-equivalent footprint.
const MIN_PAYLOAD_REDUCTION: f64 = 0.25;

/// The workload whose payload reduction and memo activity are gated.
const GATED_WORKLOAD: &str = "bake";

fn main() {
    let mut names: Vec<String> = vec!["du".into(), "ninja".into(), "bake".into()];
    let mut out = "results/BENCH_dedup.json".to_string();
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--gate" => gate = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let baseline = gate.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        })
    });

    let mut timer = PhaseTimer::new();
    timer.count("schema", SCHEMA);
    let mut failures = Vec::new();
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let prog = vsfs_workloads::generate(&spec.config);

        // Measure the whole flow-sensitive pipeline: the store is shared
        // across Andersen interning, SFS-style top-level state and the
        // versioned slots, so peak heap is only meaningful end-to-end.
        let scope = MemScope::start();
        let t = Instant::now();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let result = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        let elapsed = t.elapsed();
        let peak = scope.peak_bytes();

        let s = result.stats.store;
        timer.record(&format!("{name}.total"), elapsed);
        timer.count(&format!("{name}.peak_bytes"), peak as u64);
        // Level 1: the chunked, hash-consed set store.
        timer.count(&format!("{name}.unique_sets"), s.unique_sets as u64);
        timer.count(&format!("{name}.unique_set_bytes"), s.unique_set_bytes as u64);
        timer.count(&format!("{name}.flat_equiv_bytes"), s.flat_equiv_bytes as u64);
        timer.count(&format!("{name}.unique_chunks"), s.unique_chunks as u64);
        timer.count(&format!("{name}.chunk_bytes"), s.chunk_bytes as u64);
        timer.count(&format!("{name}.chunk_union_hits"), s.chunk_union_hits as u64);
        timer.count(&format!("{name}.chunk_union_misses"), s.chunk_union_misses as u64);
        timer.count(&format!("{name}.stored_object_sets"), result.stats.stored_object_sets as u64);
        timer.count(&format!("{name}.union_hits"), s.union_hits as u64);
        timer.count(&format!("{name}.union_misses"), s.union_misses as u64);
        timer.count(&format!("{name}.union_shortcuts"), s.union_shortcuts as u64);
        timer.count(&format!("{name}.union_hit_rate_x100"), (s.union_hit_rate() * 100.0) as u64);
        timer.count(&format!("{name}.insert_hits"), s.insert_hits as u64);
        timer.count(&format!("{name}.insert_misses"), s.insert_misses as u64);
        // Level 2: the region memo in the fixpoint engine.
        let hits = result.stats.scc_fingerprint_hits;
        let skipped = result.stats.scc_solves_skipped;
        timer.count(&format!("{name}.scc_fingerprint_hits"), hits as u64);
        timer.count(&format!("{name}.scc_solves_skipped"), skipped as u64);

        let reduction = payload_reduction(s.unique_set_bytes, s.flat_equiv_bytes);
        println!(
            "{name}: {:.3}s, peak {:.2} MiB, {} unique sets ({:.2} MiB payload, {:.1}% below \
             flat) in {} chunks, union hit rate {:.1}%, scc memo {hits} hits / {skipped} skips",
            elapsed.as_secs_f64(),
            peak as f64 / (1 << 20) as f64,
            s.unique_sets,
            s.unique_set_bytes as f64 / (1 << 20) as f64,
            100.0 * reduction,
            s.unique_chunks,
            100.0 * s.union_hit_rate(),
        );

        if let Some(base) = &baseline {
            let key = format!("{name}.peak_bytes");
            match read_counter(base, &key) {
                Some(base_peak) => {
                    let limit = (base_peak as f64 * PEAK_SLACK) as u64;
                    if peak as u64 > limit {
                        failures.push(format!(
                            "{name}: peak {peak} bytes exceeds baseline {base_peak} by more \
                             than {:.0}% (limit {limit})",
                            (PEAK_SLACK - 1.0) * 100.0
                        ));
                    } else {
                        println!(
                            "{name}: peak within {:.0}% of baseline ({base_peak} bytes)",
                            (PEAK_SLACK - 1.0) * 100.0
                        );
                    }
                }
                None => failures.push(format!("{name}: baseline has no `{key}` counter")),
            }
            if name == GATED_WORKLOAD {
                if reduction < MIN_PAYLOAD_REDUCTION {
                    failures.push(format!(
                        "{name}: set payload only {:.1}% below flat-equivalent \
                         (need >= {:.0}%)",
                        100.0 * reduction,
                        100.0 * MIN_PAYLOAD_REDUCTION
                    ));
                }
                if skipped == 0 {
                    failures.push(format!("{name}: region memo skipped zero solves"));
                }
            }
        }
    }

    if gate.is_some() {
        if failures.is_empty() {
            println!("MDE gate OK: peak within bounds, payload dedup and region memo active");
            return;
        }
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }

    write_json_report(&out, &timer.to_json());
}

/// Fraction of the flat-equivalent footprint the chunked payload saves.
fn payload_reduction(payload: usize, flat: usize) -> f64 {
    if flat == 0 {
        return 0.0;
    }
    1.0 - payload as f64 / flat as f64
}

fn usage() -> ! {
    eprintln!("usage: dedup_mem [WORKLOAD,WORKLOAD,...] [--out FILE] [--gate FILE]");
    std::process::exit(2);
}

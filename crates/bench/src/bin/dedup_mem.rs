//! Memory benchmark of the hash-consed points-to store: peak live-heap
//! and end-to-end time for the full VSFS pipeline on suite workloads,
//! plus the store's dedup counters (unique sets, union-memo hit rates).
//!
//! ```text
//! dedup_mem [WORKLOADS] [--out FILE] [--check FILE]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `du,ninja,bake` — one per size profile). Without `--check`,
//! the run writes `results/BENCH_dedup.json` (`PhaseTimer::to_json`
//! format: end-to-end seconds per workload in `phases`, peak bytes and
//! store counters in `counters`). With `--check FILE`, the run compares
//! its peak live-heap per workload against the recorded baseline and
//! fails (exit 1) if any workload regressed by more than 10% — the CI
//! memory gate. Timings are not gated: wall clock is machine-dependent,
//! peak live bytes under the counting allocator are not.

use std::time::Instant;
use vsfs_adt::mem::{CountingAlloc, MemScope};
use vsfs_adt::stats::PhaseTimer;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Peak regression tolerated by `--check` before the gate fails.
const PEAK_SLACK: f64 = 1.10;

fn main() {
    let mut names: Vec<String> = vec!["du".into(), "ninja".into(), "bake".into()];
    let mut out = "results/BENCH_dedup.json".to_string();
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let baseline = check.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        })
    });

    let mut timer = PhaseTimer::new();
    let mut regressions = Vec::new();
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let prog = vsfs_workloads::generate(&spec.config);

        // Measure the whole flow-sensitive pipeline: the store is shared
        // across Andersen interning, SFS-style top-level state and the
        // versioned slots, so peak heap is only meaningful end-to-end.
        let scope = MemScope::start();
        let t = Instant::now();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let result = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        let elapsed = t.elapsed();
        let peak = scope.peak_bytes();

        let s = result.stats.store;
        timer.record(&format!("{name}.total"), elapsed);
        timer.count(&format!("{name}.peak_bytes"), peak as u64);
        timer.count(&format!("{name}.unique_sets"), s.unique_sets as u64);
        timer.count(&format!("{name}.unique_set_bytes"), s.unique_set_bytes as u64);
        timer.count(&format!("{name}.stored_object_sets"), result.stats.stored_object_sets as u64);
        timer.count(&format!("{name}.union_hits"), s.union_hits as u64);
        timer.count(&format!("{name}.union_misses"), s.union_misses as u64);
        timer.count(&format!("{name}.union_shortcuts"), s.union_shortcuts as u64);
        timer.count(&format!("{name}.union_hit_rate_x100"), (s.union_hit_rate() * 100.0) as u64);
        timer.count(&format!("{name}.insert_hits"), s.insert_hits as u64);
        timer.count(&format!("{name}.insert_misses"), s.insert_misses as u64);
        println!(
            "{name}: {:.3}s, peak {:.2} MiB, {} unique sets ({:.2} MiB) for {} stored slots, \
             union hit rate {:.1}%",
            elapsed.as_secs_f64(),
            peak as f64 / (1 << 20) as f64,
            s.unique_sets,
            s.unique_set_bytes as f64 / (1 << 20) as f64,
            result.stats.stored_object_sets,
            100.0 * s.union_hit_rate(),
        );

        if let Some(base) = &baseline {
            let key = format!("{name}.peak_bytes");
            match read_counter(base, &key) {
                Some(base_peak) => {
                    let limit = (base_peak as f64 * PEAK_SLACK) as u64;
                    if peak as u64 > limit {
                        regressions.push(format!(
                            "{name}: peak {peak} bytes exceeds baseline {base_peak} by more \
                             than {:.0}% (limit {limit})",
                            (PEAK_SLACK - 1.0) * 100.0
                        ));
                    } else {
                        println!(
                            "{name}: peak within {:.0}% of baseline ({base_peak} bytes)",
                            (PEAK_SLACK - 1.0) * 100.0
                        );
                    }
                }
                None => regressions.push(format!("{name}: baseline has no `{key}` counter")),
            }
        }
    }

    if check.is_some() {
        if regressions.is_empty() {
            println!("memory gate OK: no workload regressed");
            return;
        }
        for r in &regressions {
            eprintln!("FAIL: {r}");
        }
        std::process::exit(1);
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, timer.to_json()) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}

/// Extracts an integer counter from a `PhaseTimer::to_json` document.
/// The format is flat and machine-written, so a string scan suffices —
/// no JSON parser in the tree.
fn read_counter(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage() -> ! {
    eprintln!("usage: dedup_mem [WORKLOAD,WORKLOAD,...] [--out FILE] [--check FILE]");
    std::process::exit(2);
}

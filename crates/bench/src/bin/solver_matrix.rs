//! Solver matrix benchmark: every flow-sensitive engine on the serving
//! workloads, measured end-to-end from the shared Andersen result.
//!
//! ```text
//! solver_matrix [WORKLOADS] [--out FILE] [--gate-equivalence]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `ninja,bake`, the serving workloads). For each workload the
//! bench runs SFS, VSFS, and the CFG-free solver, recording per
//! `(workload, solver)`: post-Andersen wall seconds *including* each
//! solver's own prerequisite stages (memory SSA + SVFG for the staged
//! pair, versioning for VSFS, nothing for cfgfree), peak live-heap
//! bytes over the same span, and the precision deltas vs Andersen
//! (values refined, flow-sensitive call edges, proven-uninitialised
//! loads). Without `--gate-equivalence` the run writes
//! `results/BENCH_solvers.json` (`PhaseTimer::to_json` format).
//!
//! The three solvers must be query-identical — the engine's central
//! equivalence property, extended to cfgfree by the constraint-ordering
//! construction. Any pairwise `precision_diff` is fatal (exit 1). With
//! `--gate-equivalence` the run acts as the CI gate: it verifies that
//! property over every workload and skips the JSON write so the
//! recorded baseline is untouched.

use std::time::Instant;
use vsfs_adt::mem::{CountingAlloc, MemScope};
use vsfs_adt::stats::PhaseTimer;
use vsfs_core::{compare_precision, precision_diff, FlowSensitiveResult};
use vsfs_ir::Program;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const SOLVERS: [&str; 3] = ["sfs", "vsfs", "cfgfree"];

fn main() {
    let mut names: Vec<String> = vec!["ninja".into(), "bake".into()];
    let mut out = "results/BENCH_solvers.json".to_string();
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--gate-equivalence" => gate = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }

    let mut timer = PhaseTimer::new();
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let prog = vsfs_workloads::generate(&spec.config);
        let aux = vsfs_andersen::analyze(&prog);

        let mut results: Vec<(&str, FlowSensitiveResult)> = Vec::new();
        for solver in SOLVERS {
            let scope = MemScope::start();
            let t = Instant::now();
            let r = match solver {
                "cfgfree" => vsfs_core::run_cfgfree(&prog, &aux),
                // The staged solvers pay for their own pipeline stages:
                // a fresh memory SSA and SVFG per run, so the matrix
                // compares true post-Andersen costs.
                _ => {
                    let mssa = MemorySsa::build(&prog, &aux);
                    let svfg = Svfg::build(&prog, &aux, &mssa);
                    match solver {
                        "sfs" => vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg),
                        _ => vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg),
                    }
                }
            };
            let secs = t.elapsed().as_secs_f64();
            let peak = scope.peak_bytes();
            let p = compare_precision(&prog, &aux, &r);
            let key = |metric: &str| format!("{name}.{solver}.{metric}");
            timer.record(&key("solve"), std::time::Duration::from_secs_f64(secs));
            timer.count(&key("peak_bytes"), peak as u64);
            timer.count(&key("refined_values"), p.refined_values as u64);
            timer.count(&key("call_edges"), p.fs_call_edges as u64);
            timer.count(&key("proven_uninit_loads"), p.proven_uninitialised_loads as u64);
            println!(
                "{name}.{solver}: {secs:.3}s, {:.2} MiB peak, {} / {} values refined, \
                 call edges {} -> {}",
                peak as f64 / (1 << 20) as f64,
                p.refined_values,
                p.values,
                p.aux_call_edges,
                p.fs_call_edges,
            );
            results.push((solver, r));
        }
        check_equivalent(&prog, name, &results);
    }

    if gate {
        println!("solver equivalence gate OK: sfs = vsfs = cfgfree on {}", names.join(", "));
        return;
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
}

/// Exits 1 unless every solver produced the same points-to sets and
/// call graph — the family-wide equivalence contract.
fn check_equivalent(prog: &Program, name: &str, results: &[(&str, FlowSensitiveResult)]) {
    let (base_name, base) = &results[0];
    for (solver, r) in &results[1..] {
        if let Some(diff) = precision_diff(prog, base, r) {
            eprintln!("FAIL: {name}: {base_name} and {solver} disagree: {diff}");
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: solver_matrix [WORKLOAD,WORKLOAD,...] [--out FILE] [--gate-equivalence]");
    std::process::exit(2);
}

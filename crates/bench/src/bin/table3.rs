//! Regenerates Table III: time and memory of Andersen's, SFS, and VSFS
//! over the 15-benchmark suite, with per-benchmark time/memory ratios and
//! geometric means.
//!
//! ```text
//! cargo run -p vsfs-bench --release --bin table3 -- \
//!     [--runs N] [--mem-limit-mib M] [benchmark ...]
//! ```
//!
//! `--mem-limit-mib` emulates the paper's 120 GB cap, scaled to these
//! workloads: a solver whose peak heap exceeds the budget is reported as
//! OOM. The default of 1024 MiB reproduces the paper's table shape —
//! SFS exhausts the budget on `lynx` while VSFS completes comfortably.
//! Pass `--mem-limit-mib 0` for unlimited.

use vsfs_adt::mem::CountingAlloc;
use vsfs_bench::{table3_row, Pipeline};
use vsfs_workloads::suite;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    let mut runs = 1usize;
    let mut mem_limit_mib = 1024usize;
    let mut csv = false;
    let mut filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => {
                runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a number"));
            }
            "--mem-limit-mib" => {
                mem_limit_mib = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--mem-limit-mib needs a number"));
                if mem_limit_mib == 0 {
                    mem_limit_mib = usize::MAX / (1024 * 1024);
                }
            }
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!("usage: table3 [--runs N] [--mem-limit-mib M] [--csv] [benchmark ...]");
                return;
            }
            other => filter.push(other.to_string()),
        }
    }
    let budget = mem_limit_mib.saturating_mul(1024 * 1024);

    let mut rows = Vec::new();
    for spec in suite() {
        if !filter.is_empty() && !filter.iter().any(|f| f == spec.name) {
            continue;
        }
        eprintln!("analysing {} (runs={runs}) ...", spec.name);
        let p = Pipeline::build(&spec);
        rows.push(table3_row(&spec, &p, runs, budget));
    }
    if csv {
        print!("{}", vsfs_bench::format::csv_table3(&rows));
    } else {
        print!("{}", vsfs_bench::format::render_table3(&rows));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

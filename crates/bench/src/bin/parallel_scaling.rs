//! Parallel-scaling benchmark of the two parallel solver phases —
//! Andersen wave propagation and object-partitioned versioning — on one
//! suite workload across a sweep of `--jobs` values.
//!
//! ```text
//! parallel_scaling [WORKLOAD] [--jobs 1,2,4,8] [--runs N] [--out FILE]
//! ```
//!
//! Defaults: the `lynx` workload (the suite's heaviest profile), jobs
//! `1,2,4,8`, best-of-3 timing, JSON written to
//! `results/BENCH_parallel.json` (phases in seconds plus task/steal/wave
//! counters, via `PhaseTimer::to_json`). Results are checked to be
//! identical across job counts before anything is written.

use std::time::{Duration, Instant};
use vsfs_adt::stats::PhaseTimer;
use vsfs_andersen::AndersenConfig;
use vsfs_bench::timing::fmt_duration;
use vsfs_core::VersionTables;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

fn main() {
    let mut workload = "lynx".to_string();
    let mut jobs_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut runs = 3usize;
    let mut out = "results/BENCH_parallel.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs_list =
                    v.split(',').map(|s| s.trim().parse().unwrap_or_else(|_| usage())).collect();
            }
            "--runs" => {
                runs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => workload = other.to_string(),
            _ => usage(),
        }
    }
    if jobs_list.is_empty() || runs == 0 {
        usage();
    }

    let spec = vsfs_workloads::suite::benchmark(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload `{workload}`");
        std::process::exit(2);
    });
    let prog = vsfs_workloads::generate(&spec.config);
    println!(
        "workload {}: {} instructions, {} values, {} objects",
        spec.name,
        prog.inst_count(),
        prog.values.len(),
        prog.objects.len()
    );

    // Reference results (sequential) for the cross-jobs identity check,
    // and the shared pre-analyses for the versioning phase.
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = MemorySsa::build(&prog, &aux);
    let svfg = Svfg::build(&prog, &aux, &mssa);
    let ref_tables = VersionTables::build(&prog, &mssa, &svfg);

    let mut timer = PhaseTimer::new();
    let mut ander_secs: Vec<(usize, f64)> = Vec::new();
    let mut version_secs: Vec<(usize, f64)> = Vec::new();
    for &jobs in &jobs_list {
        // Andersen wave propagation (jobs = 1 is the sequential solver).
        let mut best = Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let t = Instant::now();
            let r = vsfs_andersen::analyze_with_config(&prog, AndersenConfig::with_jobs(jobs));
            best = best.min(t.elapsed());
            last = Some(r);
        }
        let r = last.expect("at least one run");
        for (v, _) in prog.values.iter_enumerated() {
            assert_eq!(
                aux.value_pts(v).iter().collect::<Vec<_>>(),
                r.value_pts(v).iter().collect::<Vec<_>>(),
                "andersen jobs={jobs} diverged on {v:?}"
            );
        }
        timer.record(&format!("andersen.jobs{jobs}"), best);
        timer.count(&format!("andersen.jobs{jobs}.waves"), r.stats.waves as u64);
        ander_secs.push((jobs, best.as_secs_f64()));
        println!("andersen   --jobs {jobs}: {} ({} waves)", fmt_duration(best), r.stats.waves);

        // Object-partitioned versioning.
        let mut best = Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let t = Instant::now();
            let tables = VersionTables::build_with_jobs(&prog, &mssa, &svfg, jobs);
            best = best.min(t.elapsed());
            last = Some(tables);
        }
        let tables = last.expect("at least one run");
        assert_eq!(
            tables.stats.versions, ref_tables.stats.versions,
            "versioning jobs={jobs} diverged"
        );
        assert_eq!(tables.stats.reliance_edges, ref_tables.stats.reliance_edges);
        timer.record(&format!("versioning.jobs{jobs}"), best);
        timer.count(&format!("versioning.jobs{jobs}.tasks"), tables.stats.par_tasks as u64);
        timer.count(&format!("versioning.jobs{jobs}.steals"), tables.stats.par_steals as u64);
        version_secs.push((jobs, best.as_secs_f64()));
        println!(
            "versioning --jobs {jobs}: {} ({} tasks, {} steals)",
            fmt_duration(best),
            tables.stats.par_tasks,
            tables.stats.par_steals
        );
    }

    // Speedup trajectory relative to jobs = 1 (x100 so the integer
    // counters in the JSON can carry it).
    for (label, series) in [("andersen", &ander_secs), ("versioning", &version_secs)] {
        if let Some(&(_, base)) = series.iter().find(|&&(j, _)| j == 1) {
            for &(jobs, secs) in series.iter().filter(|&&(j, _)| j != 1) {
                let speedup = if secs > 0.0 { base / secs } else { 0.0 };
                timer.count(&format!("{label}.speedup_x100.jobs{jobs}"), (speedup * 100.0) as u64);
                println!("{label} speedup --jobs {jobs}: {speedup:.2}x");
            }
        }
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
}

fn usage() -> ! {
    eprintln!("usage: parallel_scaling [WORKLOAD] [--jobs 1,2,4,8] [--runs N] [--out FILE]");
    std::process::exit(2);
}

//! Unification pre-analysis benchmark: tier cost and alias-region
//! sharding (DESIGN.md §14).
//!
//! ```text
//! unify_bench [WORKLOADS] [--runs N] [--jobs J] [--out FILE]
//!             [--gate-ratio X] [--gate-sharding]
//! ```
//!
//! `WORKLOADS` is a comma-separated list of suite benchmark names
//! (default `ninja,bake`). For each workload the bench measures, over
//! `--runs` repetitions (default 5, median reported):
//!
//! * the full Andersen solve vs the unification solve — the cost gap
//!   that justifies unification as the ladder's rung of last resort
//!   and as a pre-analysis (`ratio = andersen / unify`);
//! * alias-region sharding at `--jobs J` (default 4): the VSFS meld
//!   phase and the Andersen wave schedule, each cost-only (the PR 1
//!   LPT partitioner) vs region-seeded
//!   (`speedup = cost_only / region_seeded`, paired per run, median
//!   ratio reported).
//!
//! Without a gate flag the run writes `results/BENCH_unify.json`
//! (`PhaseTimer::to_json` format). With `--gate-ratio X` it fails
//! (exit 1) unless every workload's median Andersen/unify ratio is at
//! least `X`; with `--gate-sharding` it fails unless region-seeded
//! sharding is at least as fast as cost-only on every workload, up to
//! a 10% measurement-noise allowance (the two shardings are timed as
//! back-to-back pairs and the speedup is the median per-run ratio).
//! Gate runs skip the JSON write so the recorded baseline is
//! untouched.

use std::time::{Duration, Instant};
use vsfs_adt::stats::PhaseTimer;
use vsfs_andersen::{AndersenConfig, UnifyConfig};
use vsfs_core::VersionTables;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;

fn main() {
    let mut names: Vec<String> = vec!["ninja".into(), "bake".into()];
    let mut out = "results/BENCH_unify.json".to_string();
    let mut runs = 5usize;
    let mut jobs = 4usize;
    let mut gate_ratio: Option<f64> = None;
    let mut gate_sharding = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--runs" => runs = parse_arg(args.next(), "--runs"),
            "--jobs" => jobs = parse_arg(args.next(), "--jobs"),
            "--gate-ratio" => gate_ratio = Some(parse_arg(args.next(), "--gate-ratio")),
            "--gate-sharding" => gate_sharding = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                names = other.split(',').map(|s| s.trim().to_string()).collect();
            }
            _ => usage(),
        }
    }
    let runs = runs.max(1);
    let gating = gate_ratio.is_some() || gate_sharding;

    let mut timer = PhaseTimer::new();
    let mut failed = false;
    for name in &names {
        let spec = vsfs_workloads::suite::benchmark(name).unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`");
            std::process::exit(2);
        });
        let prog = vsfs_workloads::generate(&spec.config);
        let key = |metric: &str| format!("{name}.{metric}");

        // Tier cost: the whole Andersen solve vs the whole unify solve.
        let andersen_secs = median(runs, || {
            let t = Instant::now();
            let r = vsfs_andersen::analyze(&prog);
            let s = t.elapsed().as_secs_f64();
            std::hint::black_box(&r);
            s
        });
        let unify_secs = median(runs, || {
            let t = Instant::now();
            let r = vsfs_andersen::analyze_unify(&prog);
            let s = t.elapsed().as_secs_f64();
            std::hint::black_box(&r);
            s
        });
        let ratio = andersen_secs / unify_secs.max(1e-9);

        let unify = vsfs_andersen::analyze_unify(&prog);
        let regions = unify.alias_regions(prog.objects.len());
        timer.record(&key("andersen_solve"), Duration::from_secs_f64(andersen_secs));
        timer.record(&key("unify_solve"), Duration::from_secs_f64(unify_secs));
        timer.count(&key("ratio_x100"), (ratio * 100.0) as u64);
        timer.count(&key("unify_classes"), unify.class_count() as u64);
        timer.count(&key("alias_regions"), regions.region_count as u64);
        println!(
            "{name}: andersen {andersen_secs:.4}s, unify {unify_secs:.4}s \
             ({ratio:.0}x, {} classes, {} regions)",
            unify.class_count(),
            regions.region_count,
        );
        if let Some(g) = gate_ratio {
            if ratio < g {
                eprintln!("FAIL: {name} unify ratio {ratio:.1}x below the {g:.0}x gate");
                failed = true;
            }
        }

        // Alias-region sharding vs the cost-only LPT partitioner, both
        // at `--jobs J`. Scheduling-hint deltas are small, so each run
        // times the two shardings back to back (paired — machine drift
        // hits both sides equally) and the speedup is the median of
        // the per-run ratios; the reported seconds are per-side
        // medians.
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let (meld_cost, meld_region, meld_speedup) = paired(runs, || {
            (
                timed(|| VersionTables::build_with_jobs(&prog, &mssa, &svfg, jobs)),
                timed(|| {
                    VersionTables::build_with_jobs_regions(
                        &prog,
                        &mssa,
                        &svfg,
                        jobs,
                        Some(&regions.region_of_object),
                    )
                }),
            )
        });
        let (waves_cost, waves_region, waves_speedup) = paired(runs, || {
            (
                timed(|| {
                    vsfs_andersen::analyze_with_config(&prog, AndersenConfig::with_jobs(jobs))
                }),
                timed(|| {
                    vsfs_andersen::analyze_with_config_regions(
                        &prog,
                        AndersenConfig::with_jobs(jobs),
                        &regions,
                    )
                }),
            )
        });
        timer.record(&key("meld_cost_only"), Duration::from_secs_f64(meld_cost));
        timer.record(&key("meld_region_seeded"), Duration::from_secs_f64(meld_region));
        timer.record(&key("waves_cost_only"), Duration::from_secs_f64(waves_cost));
        timer.record(&key("waves_region_seeded"), Duration::from_secs_f64(waves_region));
        timer.count(&key("meld_speedup_x100"), (meld_speedup * 100.0) as u64);
        timer.count(&key("waves_speedup_x100"), (waves_speedup * 100.0) as u64);
        println!(
            "{name}: jobs {jobs} meld {meld_cost:.4}s -> {meld_region:.4}s ({meld_speedup:.2}x), \
             waves {waves_cost:.4}s -> {waves_region:.4}s ({waves_speedup:.2}x)"
        );
        if gate_sharding {
            for (phase, speedup) in [("meld", meld_speedup), ("waves", waves_speedup)] {
                if speedup < 0.90 {
                    eprintln!(
                        "FAIL: {name} region-seeded {phase} sharding {speedup:.2}x slower \
                         than cost-only (gate: >= 0.90x)"
                    );
                    failed = true;
                }
            }
        }

        // The hint must be pure scheduling: both shardings (and the
        // sequential reference) agree bit-for-bit.
        let seeded = vsfs_andersen::analyze_with_config_regions(
            &prog,
            AndersenConfig::with_jobs(jobs),
            &regions,
        );
        for v in prog.values.indices() {
            assert_eq!(
                aux.value_pts(v),
                seeded.value_pts(v),
                "{name}: region seeding changed %{}",
                prog.values[v].name
            );
        }

        // Tier sanity while we are here: steensgaard ⊇ unify ⊇ andersen.
        let steens = vsfs_andersen::analyze_unify_with_config(&prog, UnifyConfig::steensgaard());
        for v in prog.values.indices() {
            assert!(
                steens.value_pts(v).is_superset(unify.value_pts(v))
                    && unify.value_pts(v).is_superset(aux.value_pts(v)),
                "{name}: tier chain broken at %{}",
                prog.values[v].name
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    if gating {
        let mut gates = Vec::new();
        if let Some(g) = gate_ratio {
            gates.push(format!("unify >= {g:.0}x faster than andersen"));
        }
        if gate_sharding {
            gates.push("region-seeded sharding >= cost-only".to_string());
        }
        println!("unify gate OK: {} on {}", gates.join(", "), names.join(", "));
        return;
    }

    vsfs_bench::format::write_json_report(&out, &timer.to_json());
}

fn timed<T>(f: impl FnOnce() -> T) -> f64 {
    let t = Instant::now();
    let r = f();
    let s = t.elapsed().as_secs_f64();
    std::hint::black_box(&r);
    s
}

fn median(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs `f` — which times a (baseline, candidate) pair back to back —
/// `runs` times and returns the median baseline seconds, median
/// candidate seconds, and the median of the per-run baseline/candidate
/// ratios (pairing cancels machine drift the two separate medians
/// would each absorb differently).
fn paired(runs: usize, mut f: impl FnMut() -> (f64, f64)) -> (f64, f64, f64) {
    let samples: Vec<(f64, f64)> = (0..runs).map(|_| f()).collect();
    let pick = |vals: Vec<f64>| -> f64 {
        let mut vals = vals;
        vals.sort_by(f64::total_cmp);
        vals[vals.len() / 2]
    };
    let base = pick(samples.iter().map(|&(b, _)| b).collect());
    let cand = pick(samples.iter().map(|&(_, c)| c).collect());
    let ratio = pick(samples.iter().map(|&(b, c)| b / c.max(1e-9)).collect());
    (base, cand, ratio)
}

fn parse_arg<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        usage()
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: unify_bench [WORKLOAD,WORKLOAD,...] [--runs N] [--jobs J] [--out FILE] \
         [--gate-ratio X] [--gate-sharding]"
    );
    std::process::exit(2);
}

//! Plain-text table rendering (the analogue of the artifact's
//! `table.awk`) and the shared `BENCH_*.json` report plumbing every
//! bench binary uses.

use crate::{geomean, Table2Row, Table3Row};

/// Formats bytes as a human-readable MiB figure.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Writes a `PhaseTimer::to_json` report to `path`, creating parent
/// directories as needed. Prints `wrote <path>` on success and exits
/// with code 1 on an I/O error — the uniform tail of every bench
/// binary.
pub fn write_json_report(path: &str, json: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Extracts an integer counter from a `PhaseTimer::to_json` document.
/// The format is flat and machine-written, so a string scan suffices —
/// no JSON parser in the tree. Used by the CI gates that compare a
/// fresh run against a recorded `results/BENCH_*.json` baseline.
pub fn read_counter(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders Table II.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>7} {:>8} {:>9} {:>9} {:>10} {:>11}  {}\n",
        "Bench.",
        "paperLOC",
        "insts",
        "#Nodes",
        "#D.Edges",
        "#I.Edges",
        "TopLevel",
        "AddrTaken",
        "Description"
    ));
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>9} {:>7} {:>8} {:>9} {:>9} {:>10} {:>11}  {}\n",
            r.name,
            r.paper_loc,
            r.instructions,
            r.nodes,
            r.direct_edges,
            r.indirect_edges,
            r.top_level,
            r.address_taken,
            r.description
        ));
    }
    out
}

/// Renders Table III, including the geometric-mean footer row.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} | {:>10} {:>9} | {:>8} {:>10} {:>9} | {:>8} {:>9} | {:>9} {:>9} | {:>6} {:>7}\n",
        "Bench.",
        "Ander(s)",
        "A.MiB",
        "SFS(s)",
        "SFS.MiB",
        "Vers(s)",
        "VSFS(s)",
        "VSFS.MiB",
        "CFGF(s)",
        "CFGF.MiB",
        "TimeDiff",
        "MemDiff",
        "Dedup%",
        "UHit%"
    ));
    out.push_str(&"-".repeat(154));
    out.push('\n');
    for r in rows {
        let sfs_time = if r.sfs.oom { "OOM".to_string() } else { format!("{:.3}", r.sfs.seconds) };
        let sfs_mem = if r.sfs.oom { "OOM".to_string() } else { mib(r.sfs.peak_bytes) };
        let tdiff = match r.time_diff() {
            Some(d) => format!("{d:.2}x"),
            None => "-".to_string(),
        };
        let mdiff = match r.mem_diff() {
            Some(d) => format!("{d:.2}x"),
            None => "-".to_string(),
        };
        // Share of logical VSFS slots served by an already-interned
        // canonical set, and the store's union-memo hit rate.
        let dedup = if r.vsfs.stored_sets > 0 {
            format!("{:.1}", 100.0 * (1.0 - r.vsfs.unique_sets as f64 / r.vsfs.stored_sets as f64))
        } else {
            "-".to_string()
        };
        let cfg_time =
            if r.cfgfree.oom { "OOM".to_string() } else { format!("{:.3}", r.cfgfree.seconds) };
        let cfg_mem = if r.cfgfree.oom { "OOM".to_string() } else { mib(r.cfgfree.peak_bytes) };
        out.push_str(&format!(
            "{:<14} {:>9.3} {:>9} | {:>10} {:>9} | {:>8.3} {:>10.3} {:>9} | {:>8} {:>9} | {:>9} {:>9} | {:>6} {:>7.1}\n",
            r.name,
            r.andersen_seconds,
            mib(r.andersen_peak_bytes),
            sfs_time,
            sfs_mem,
            r.versioning_seconds,
            r.vsfs.seconds,
            mib(r.vsfs.peak_bytes),
            cfg_time,
            cfg_mem,
            tdiff,
            mdiff,
            dedup,
            100.0 * r.vsfs.union_hit_rate
        ));
    }
    out.push_str(&"-".repeat(154));
    out.push('\n');
    let tg = geomean(rows.iter().filter_map(Table3Row::time_diff));
    let mg = geomean(rows.iter().filter_map(Table3Row::mem_diff));
    out.push_str(&format!(
        "{:<14} {:>106} {:>9} {:>9}\n",
        "Average",
        "(geometric mean)",
        tg.map_or("-".to_string(), |g| format!("{g:.2}x")),
        mg.map_or("-".to_string(), |g| format!("{g:.2}x")),
    ));
    out
}

/// Renders Table II as CSV.
pub fn csv_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "bench,paper_loc,instructions,nodes,direct_edges,indirect_edges,top_level,address_taken\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.name,
            r.paper_loc,
            r.instructions,
            r.nodes,
            r.direct_edges,
            r.indirect_edges,
            r.top_level,
            r.address_taken
        ));
    }
    out
}

/// Renders Table III as CSV (empty cells for OOM runs).
pub fn csv_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "bench,andersen_s,andersen_mib,sfs_s,sfs_mib,versioning_s,vsfs_s,vsfs_mib,time_diff,\
         mem_diff,sfs_oom,sfs_unique_sets,vsfs_unique_sets,vsfs_stored_sets,vsfs_union_hit_rate,\
         cfgfree_s,cfgfree_mib,cfgfree_oom\n",
    );
    for r in rows {
        let (sfs_s, sfs_m) = if r.sfs.oom {
            (String::new(), String::new())
        } else {
            (format!("{:.4}", r.sfs.seconds), mib(r.sfs.peak_bytes))
        };
        let (cfg_s, cfg_m) = if r.cfgfree.oom {
            (String::new(), String::new())
        } else {
            (format!("{:.4}", r.cfgfree.seconds), mib(r.cfgfree.peak_bytes))
        };
        out.push_str(&format!(
            "{},{:.4},{},{},{},{:.4},{:.4},{},{},{},{},{},{},{},{:.4},{},{},{}\n",
            r.name,
            r.andersen_seconds,
            mib(r.andersen_peak_bytes),
            sfs_s,
            sfs_m,
            r.versioning_seconds,
            r.vsfs.seconds,
            mib(r.vsfs.peak_bytes),
            r.time_diff().map_or(String::new(), |d| format!("{d:.3}")),
            r.mem_diff().map_or(String::new(), |d| format!("{d:.3}")),
            r.sfs.oom,
            r.sfs.unique_sets,
            r.vsfs.unique_sets,
            r.vsfs.stored_sets,
            r.vsfs.union_hit_rate,
            cfg_s,
            cfg_m,
            r.cfgfree.oom
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolverCell;

    #[test]
    fn renders_oom_and_diffs() {
        let cell = |secs, mem, oom| SolverCell {
            seconds: secs,
            peak_bytes: mem,
            stored_sets: 1,
            propagations: 1,
            unique_sets: 1,
            union_hit_rate: 0.5,
            oom,
        };
        let rows = vec![
            Table3Row {
                name: "ok".into(),
                andersen_seconds: 0.1,
                andersen_peak_bytes: 1 << 20,
                sfs: cell(2.0, 4 << 20, false),
                versioning_seconds: 0.1,
                vsfs: cell(0.4, 2 << 20, false),
                cfgfree: cell(0.6, 1 << 20, false),
            },
            Table3Row {
                name: "oomy".into(),
                andersen_seconds: 0.2,
                andersen_peak_bytes: 1 << 20,
                sfs: cell(9.0, 99 << 20, true),
                versioning_seconds: 0.2,
                vsfs: cell(1.0, 3 << 20, false),
                cfgfree: cell(1.5, 2 << 20, false),
            },
        ];
        let s = render_table3(&rows);
        assert!(s.contains("OOM"));
        assert!(s.contains("4.00x")); // 2.0 / (0.4 + 0.1)
        assert!(s.contains("2.00x")); // 4 MiB / 2 MiB
        assert!(s.contains("Average"));
        // OOM row excluded from the time geomean but not the mem one.
        let t2 = render_table2(&[]);
        assert!(t2.contains("Bench."));
        // CSV forms.
        let csv = csv_table3(&rows);
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("oomy,"));
        assert!(csv.contains(",true"));
        let c2 = csv_table2(&[]);
        assert!(c2.starts_with("bench,"));
    }
}

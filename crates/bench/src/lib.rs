//! Shared harness for reproducing the paper's evaluation tables.
//!
//! * [`Pipeline`] builds every stage (program → Andersen → memory SSA →
//!   SVFG) for a benchmark config and exposes timings.
//! * [`table2_row`] and [`table3_row`] compute one row of the paper's
//!   Table II (benchmark characteristics) and Table III (time and memory
//!   of Andersen/SFS/VSFS) respectively.
//! * [`mod@format`] renders aligned text tables like the artifact's
//!   `table.awk` output.
//! * [`mod@timing`] is the std-only micro-benchmark harness driving the
//!   `benches/` targets (the workspace builds offline, without
//!   criterion).

pub mod format;
pub mod timing;

use std::time::Instant;
use vsfs_adt::mem::MemScope;
use vsfs_andersen::AndersenResult;
use vsfs_core::{FlowSensitiveResult, VersionTables};
use vsfs_ir::Program;
use vsfs_mssa::MemorySsa;
use vsfs_svfg::Svfg;
use vsfs_workloads::{generate, BenchmarkSpec};

/// All pre-solver artifacts for one benchmark.
pub struct Pipeline {
    /// The generated program.
    pub prog: Program,
    /// Auxiliary (Andersen) results.
    pub aux: AndersenResult,
    /// Memory SSA.
    pub mssa: MemorySsa,
    /// The SVFG.
    pub svfg: Svfg,
    /// Andersen wall-clock seconds.
    pub andersen_seconds: f64,
    /// Peak heap bytes during the Andersen run (0 without the counting
    /// allocator installed).
    pub andersen_peak_bytes: usize,
}

impl Pipeline {
    /// Generates the program and runs the staged pre-analyses.
    pub fn build(spec: &BenchmarkSpec) -> Pipeline {
        let prog = generate(&spec.config);
        let scope = MemScope::start();
        let t = Instant::now();
        let aux = vsfs_andersen::analyze(&prog);
        let andersen_seconds = t.elapsed().as_secs_f64();
        let andersen_peak_bytes = scope.peak_bytes();
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        Pipeline { prog, aux, mssa, svfg, andersen_seconds, andersen_peak_bytes }
    }
}

/// One row of Table II: benchmark characteristics.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// The paper's LOC for the real program (context only).
    pub paper_loc: u32,
    /// Generated-program instruction count (our size analogue).
    pub instructions: usize,
    /// SVFG nodes.
    pub nodes: usize,
    /// Direct edges.
    pub direct_edges: usize,
    /// Indirect edges.
    pub indirect_edges: usize,
    /// Top-level variables.
    pub top_level: usize,
    /// Address-taken variables.
    pub address_taken: usize,
    /// Description from Table II.
    pub description: String,
}

/// Computes one Table II row.
pub fn table2_row(spec: &BenchmarkSpec, p: &Pipeline) -> Table2Row {
    Table2Row {
        name: spec.name.to_string(),
        paper_loc: spec.paper_loc,
        instructions: p.prog.inst_count(),
        nodes: p.svfg.node_count(),
        direct_edges: p.svfg.direct_edge_count(),
        indirect_edges: p.svfg.indirect_edge_count(),
        top_level: p.prog.values.len(),
        address_taken: p.prog.objects.len(),
        description: spec.description.to_string(),
    }
}

/// The outcome of one solver run for Table III.
#[derive(Debug, Clone, Copy)]
pub struct SolverCell {
    /// Main-phase seconds (average over runs).
    pub seconds: f64,
    /// Peak heap bytes above the pre-run baseline.
    pub peak_bytes: usize,
    /// Stored object points-to sets at the end.
    pub stored_sets: usize,
    /// Object-set union operations.
    pub propagations: usize,
    /// Distinct canonical sets in the hash-consed store (the physical
    /// footprint behind `stored_sets` logical slots).
    pub unique_sets: usize,
    /// Fraction of non-shortcut store unions served by the memo.
    pub union_hit_rate: f64,
    /// Whether the run exceeded the configured memory budget (reported
    /// like the paper's OOM row for lynx).
    pub oom: bool,
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Andersen time (s) and peak bytes.
    pub andersen_seconds: f64,
    /// Andersen peak heap bytes.
    pub andersen_peak_bytes: usize,
    /// SFS main phase.
    pub sfs: SolverCell,
    /// VSFS versioning seconds.
    pub versioning_seconds: f64,
    /// VSFS main phase.
    pub vsfs: SolverCell,
    /// CFG-free (constraint-ordering) main phase. Runs straight off the
    /// Andersen constraint graph, so unlike the staged cells its cost
    /// includes no memory-SSA/SVFG prerequisite at all.
    pub cfgfree: SolverCell,
}

impl Table3Row {
    /// SFS time / VSFS time (versioning included), when both completed.
    pub fn time_diff(&self) -> Option<f64> {
        if self.sfs.oom {
            return None;
        }
        let vsfs_total = self.vsfs.seconds + self.versioning_seconds;
        if vsfs_total <= 0.0 {
            return None;
        }
        Some(self.sfs.seconds / vsfs_total)
    }

    /// SFS peak memory / VSFS peak memory.
    pub fn mem_diff(&self) -> Option<f64> {
        if self.vsfs.peak_bytes == 0 {
            return None;
        }
        Some(self.sfs.peak_bytes as f64 / self.vsfs.peak_bytes as f64)
    }
}

/// Computes one Table III row: `runs` repetitions of each solver, with a
/// memory budget emulating the paper's 120 GB cap (post-hoc: the run
/// completes, then is marked OOM if its peak exceeded the budget).
pub fn table3_row(
    spec: &BenchmarkSpec,
    p: &Pipeline,
    runs: usize,
    mem_budget_bytes: usize,
) -> Table3Row {
    let mut sfs_secs = 0.0;
    let mut sfs_cell = None;
    for _ in 0..runs.max(1) {
        let scope = MemScope::start();
        let r = vsfs_core::run_sfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        let peak = scope.peak_bytes();
        sfs_secs += r.stats.solve_seconds;
        sfs_cell = Some(SolverCell {
            seconds: 0.0,
            peak_bytes: peak,
            stored_sets: r.stats.stored_object_sets,
            propagations: r.stats.object_propagations,
            unique_sets: r.stats.store.unique_sets,
            union_hit_rate: r.stats.store.union_hit_rate(),
            oom: peak > mem_budget_bytes,
        });
    }
    let mut sfs = sfs_cell.expect("at least one run");
    sfs.seconds = sfs_secs / runs.max(1) as f64;

    let mut vsfs_secs = 0.0;
    let mut versioning_secs = 0.0;
    let mut vsfs_cell = None;
    for _ in 0..runs.max(1) {
        let scope = MemScope::start();
        let tables = VersionTables::build(&p.prog, &p.mssa, &p.svfg);
        let r: FlowSensitiveResult =
            vsfs_core::run_vsfs_with_tables(&p.prog, &p.aux, &p.mssa, &p.svfg, tables);
        let peak = scope.peak_bytes();
        vsfs_secs += r.stats.solve_seconds;
        versioning_secs += r.stats.versioning_seconds;
        vsfs_cell = Some(SolverCell {
            seconds: 0.0,
            peak_bytes: peak,
            stored_sets: r.stats.stored_object_sets,
            propagations: r.stats.object_propagations,
            unique_sets: r.stats.store.unique_sets,
            union_hit_rate: r.stats.store.union_hit_rate(),
            oom: peak > mem_budget_bytes,
        });
    }
    let mut vsfs = vsfs_cell.expect("at least one run");
    vsfs.seconds = vsfs_secs / runs.max(1) as f64;

    let mut cfg_secs = 0.0;
    let mut cfg_cell = None;
    for _ in 0..runs.max(1) {
        let scope = MemScope::start();
        let r = vsfs_core::run_cfgfree(&p.prog, &p.aux);
        let peak = scope.peak_bytes();
        cfg_secs += r.stats.solve_seconds;
        cfg_cell = Some(SolverCell {
            seconds: 0.0,
            peak_bytes: peak,
            stored_sets: r.stats.stored_object_sets,
            propagations: r.stats.object_propagations,
            unique_sets: r.stats.store.unique_sets,
            union_hit_rate: r.stats.store.union_hit_rate(),
            oom: peak > mem_budget_bytes,
        });
    }
    let mut cfgfree = cfg_cell.expect("at least one run");
    cfgfree.seconds = cfg_secs / runs.max(1) as f64;

    Table3Row {
        name: spec.name.to_string(),
        andersen_seconds: p.andersen_seconds,
        andersen_peak_bytes: p.andersen_peak_bytes,
        sfs,
        versioning_seconds: versioning_secs / runs.max(1) as f64,
        vsfs,
        cfgfree,
    }
}

/// Geometric mean of positive ratios.
pub fn geomean(ratios: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in ratios {
        if r > 0.0 {
            log_sum += r.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!(geomean([]).is_none());
        let g = geomean([2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geomean([0.0, -1.0]), None);
    }

    #[test]
    fn smallest_suite_entry_produces_rows() {
        let spec = vsfs_workloads::suite::benchmark("du").unwrap();
        let p = Pipeline::build(&spec);
        let t2 = table2_row(&spec, &p);
        assert!(t2.nodes > 0 && t2.indirect_edges > 0);
        let t3 = table3_row(&spec, &p, 1, usize::MAX);
        assert!(!t3.sfs.oom && !t3.vsfs.oom && !t3.cfgfree.oom);
        assert!(t3.sfs.stored_sets >= t3.vsfs.stored_sets);
        assert!(t3.cfgfree.stored_sets > 0);
    }
}

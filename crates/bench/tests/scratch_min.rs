//! Scratch minimization harness (review; not for commit).

use vsfs_workloads::gen::{generate, WorkloadConfig};

#[test]
fn inspect_seed0() {
    let mut cfg = WorkloadConfig::small();
    cfg.seed = 0;
    cfg.heap_fraction = 0.2;
    cfg.indirect_call_fraction = 0.1;
    cfg.loop_bias = 0.1;
    cfg.backward_call_fraction = 0.3;
    cfg.deref_chain = 0.4;
    let prog = generate(&cfg);
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
    let dense = vsfs_core::run_dense(&prog, &aux);
    for v in prog.values.indices() {
        let extra: Vec<String> = sfs
            .value_pts(v)
            .iter()
            .filter(|&o| !dense.value_pts(v).contains(o))
            .map(|o| prog.objects[o].name.clone())
            .collect();
        if !extra.is_empty() {
            // where is v defined?
            println!(
                "value %{} def {:?}: SFS-only objs {:?}; sfs={} dense={}",
                prog.values[v].name,
                prog.values[v].def,
                extra,
                sfs.value_pts(v).len(),
                dense.value_pts(v).len()
            );
        }
    }
}

//! Differential test over many generated seeds: SFS and VSFS agree
//! exactly, and every solver refines Andersen's auxiliary solution.
//!
//! Dense is checked only against Andersen: dense-on-ICFG and
//! staged-on-SVFG are *incomparable* in precision (see
//! `tests/dense_baseline.rs` — dense kills strongly-updated state
//! across call boundaries and models non-returning callees, while the
//! SVFG's call-site bypass edge always relays pre-call state), so
//! neither containment direction holds between them in general.

use vsfs_workloads::gen::{generate, WorkloadConfig};

fn check(cfg: &WorkloadConfig) -> Result<(), String> {
    let prog = generate(cfg);
    vsfs_ir::verify::verify(&prog).map_err(|e| format!("verify: {e:?}"))?;
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
    let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
    if let Some(d) = vsfs_core::result::precision_diff(&prog, &sfs, &vsfs) {
        return Err(format!("seed {}: SFS != VSFS: {d}", cfg.seed));
    }
    // Both must refine Andersen.
    for v in prog.values.indices() {
        let a = aux.value_pts(v);
        for o in sfs.value_pts(v).iter() {
            if !a.contains(o) {
                return Err(format!(
                    "seed {}: SFS pt(%{}) contains {} not in Andersen",
                    cfg.seed, prog.values[v].name, prog.objects[o].name
                ));
            }
        }
    }
    // Dense must refine Andersen as well (pt_dense ⊆ pt_andersen).
    let dense = vsfs_core::run_dense(&prog, &aux);
    for v in prog.values.indices() {
        for o in dense.value_pts(v).iter() {
            if !aux.value_pts(v).contains(o) {
                return Err(format!(
                    "seed {}: dense pt(%{}) contains {} not in Andersen",
                    cfg.seed, prog.values[v].name, prog.objects[o].name
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn differential_many_seeds() {
    let mut failures = Vec::new();
    for seed in 0..60u64 {
        let mut cfg = WorkloadConfig::small();
        cfg.seed = seed;
        // vary shape a bit
        cfg.heap_fraction = 0.2 + 0.6 * ((seed % 5) as f64 / 5.0);
        cfg.indirect_call_fraction = 0.1 + 0.5 * ((seed % 4) as f64 / 4.0);
        cfg.loop_bias = 0.1 + 0.4 * ((seed % 3) as f64 / 3.0);
        cfg.backward_call_fraction = if seed % 2 == 0 { 0.3 } else { 0.05 };
        cfg.deref_chain = 0.4;
        if let Err(e) = check(&cfg) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

//! The call graph discovered by the analysis.
//!
//! Contains direct call edges plus the indirect edges resolved from
//! function-pointer points-to sets. Also identifies address-taken
//! functions and recursive functions — inputs to δ-node identification
//! (Section IV-C1) and strong-update eligibility.

use std::collections::{HashMap, HashSet};
use vsfs_graph::{DiGraph, Sccs};
use vsfs_ir::{FuncId, InstId, Program};

/// A call graph over functions, with per-call-site callee lists.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Callees of each call instruction.
    callees: HashMap<InstId, Vec<FuncId>>,
    /// Call instructions targeting each function.
    callers: HashMap<FuncId, Vec<InstId>>,
    /// Functions whose address is taken (possible indirect-call targets).
    address_taken: HashSet<FuncId>,
}

impl CallGraph {
    /// Creates an empty call graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Records that `call` may invoke `callee`; returns `true` if new.
    pub fn add_edge(&mut self, call: InstId, callee: FuncId) -> bool {
        let list = self.callees.entry(call).or_default();
        if list.contains(&callee) {
            return false;
        }
        list.push(callee);
        self.callers.entry(callee).or_default().push(call);
        true
    }

    /// Marks `func` as address-taken.
    pub fn mark_address_taken(&mut self, func: FuncId) {
        self.address_taken.insert(func);
    }

    /// Sorts every callee and caller list, making the exposed order a
    /// pure function of the edge *set* rather than of discovery order.
    /// Sequential and wave-mode solving discover indirect edges in
    /// different orders; downstream consumers (memory SSA, SVFG wiring)
    /// iterate these lists, so canonical order is what keeps the whole
    /// pipeline bit-identical across `--jobs`.
    pub fn canonicalize(&mut self) {
        for v in self.callees.values_mut() {
            v.sort_unstable();
        }
        for v in self.callers.values_mut() {
            v.sort_unstable();
        }
    }

    /// The possible callees of `call`.
    pub fn callees(&self, call: InstId) -> &[FuncId] {
        self.callees.get(&call).map_or(&[], |v| v.as_slice())
    }

    /// The call instructions that may invoke `func`.
    pub fn callers(&self, func: FuncId) -> &[InstId] {
        self.callers.get(&func).map_or(&[], |v| v.as_slice())
    }

    /// Returns `true` if `func`'s address is taken anywhere.
    pub fn is_address_taken(&self, func: FuncId) -> bool {
        self.address_taken.contains(&func)
    }

    /// Iterates all `(call, callee)` edges, grouped by ascending call
    /// site. The order is a pure function of the edge set (never of the
    /// backing map's hash order): SVFG construction wires indirect edges
    /// in this order, and the whole-pipeline bit-identity guarantee
    /// rests on it being reproducible.
    pub fn edges(&self) -> impl Iterator<Item = (InstId, FuncId)> + '_ {
        let mut calls: Vec<InstId> = self.callees.keys().copied().collect();
        calls.sort_unstable();
        calls.into_iter().flat_map(move |c| self.callees[&c].iter().map(move |&f| (c, f)))
    }

    /// Number of `(call, callee)` edges.
    pub fn edge_count(&self) -> usize {
        self.callees.values().map(Vec::len).sum()
    }

    /// Computes the set of functions involved in recursion (a call-graph
    /// cycle, including self-recursion).
    pub fn recursive_functions(&self, prog: &Program) -> HashSet<FuncId> {
        let mut g: DiGraph<u32> = DiGraph::with_nodes(prog.functions.len());
        for (call, callee) in self.edges() {
            let caller = prog.insts[call].func;
            g.add_edge_dedup(caller.raw(), callee.raw());
        }
        let sccs = Sccs::compute(&g);
        prog.functions.indices().filter(|f| sccs.in_cycle(&g, f.raw())).collect()
    }

    /// The functions transitively reachable from `roots` (inclusive).
    pub fn reachable_functions(&self, prog: &Program, roots: &[FuncId]) -> HashSet<FuncId> {
        let mut seen: HashSet<FuncId> = roots.iter().copied().collect();
        let mut stack: Vec<FuncId> = roots.to_vec();
        while let Some(f) = stack.pop() {
            for call in prog.func_insts(f) {
                for &callee in self.callees(call) {
                    if seen.insert(callee) {
                        stack.push(callee);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    #[test]
    fn edges_and_recursion() {
        let prog = parse_program(
            r#"
            func @a() {
            entry:
              call @b()
              ret
            }
            func @b() {
            entry:
              call @a()
              ret
            }
            func @main() {
            entry:
              call @a()
              ret
            }
            "#,
        )
        .unwrap();
        let a = prog.function_by_name("a").unwrap();
        let b = prog.function_by_name("b").unwrap();
        let main = prog.entry_function();
        let mut cg = CallGraph::new();
        for (call, f) in prog.insts.iter_enumerated().filter_map(|(i, inst)| match inst.kind {
            vsfs_ir::InstKind::Call { callee: vsfs_ir::Callee::Direct(f), .. } => Some((i, f)),
            _ => None,
        }) {
            assert!(cg.add_edge(call, f));
            assert!(!cg.add_edge(call, f)); // dedup
        }
        assert_eq!(cg.edge_count(), 3);
        let rec = cg.recursive_functions(&prog);
        assert!(rec.contains(&a));
        assert!(rec.contains(&b));
        assert!(!rec.contains(&main));
        let reach = cg.reachable_functions(&prog, &[main]);
        assert_eq!(reach.len(), 3);
        assert_eq!(cg.callers(a).len(), 2);
    }
}

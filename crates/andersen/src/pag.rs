//! The program assignment graph (PAG): pointer nodes and inclusion
//! constraints extracted from the IR.
//!
//! Node space: every top-level value and every address-taken object is a
//! pointer node (objects hold pointers too — `*p = q` writes into the
//! objects `p` points to). Constraints follow the classic Andersen forms:
//!
//! | constraint | source instruction | meaning |
//! |------------|--------------------|---------|
//! | `Addr`     | `ALLOC`, globals   | `pts(dst) ∋ obj` |
//! | `Copy`     | `CAST`, `PHI`, calls/returns | `pts(dst) ⊇ pts(src)` |
//! | `Load`     | `LOAD`             | `∀o ∈ pts(addr): pts(dst) ⊇ pts(o)` |
//! | `Store`    | `STORE`            | `∀o ∈ pts(addr): pts(o) ⊇ pts(val)` |
//! | `Gep`      | `FIELD`            | `∀o ∈ pts(base): pts(dst) ∋ field(o, k)` |
//!
//! Direct calls contribute `Copy` constraints immediately; indirect calls
//! are recorded as [`CallSite`]s and expanded by the solver as the
//! function pointer's points-to set grows (on-the-fly call graph).

use vsfs_adt::define_index;
use vsfs_ir::{Callee, FuncId, InstId, InstKind, ObjId, Program, ValueId};

define_index!(
    /// A PAG pointer node: a top-level value or an address-taken object.
    PagNodeId,
    "pag"
);

define_index!(
    /// An indirect call site record.
    CallSiteId,
    "cs"
);

/// An indirect call awaiting resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The `CALL` instruction.
    pub inst: InstId,
    /// The function-pointer value.
    pub fp: ValueId,
    /// Actual arguments.
    pub args: Vec<ValueId>,
    /// Destination of the returned pointer, if used.
    pub dst: Option<ValueId>,
}

/// Initial (simple) constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// `pts(dst) ∋ obj`.
    Addr { dst: PagNodeId, obj: ObjId },
    /// `pts(dst) ⊇ pts(src)`.
    Copy { src: PagNodeId, dst: PagNodeId },
    /// `∀o ∈ pts(addr): pts(dst) ⊇ pts(o)`.
    Load { addr: PagNodeId, dst: PagNodeId },
    /// `∀o ∈ pts(addr): pts(o) ⊇ pts(val)`.
    Store { val: PagNodeId, addr: PagNodeId },
    /// `∀o ∈ pts(base): pts(dst) ∋ field(o, offset)`.
    Gep { base: PagNodeId, offset: u32, dst: PagNodeId },
}

/// The program assignment graph.
#[derive(Debug, Clone)]
pub struct Pag {
    value_count: usize,
    object_count: usize,
    /// All simple constraints.
    pub constraints: Vec<Constraint>,
    /// Indirect call sites.
    pub call_sites: Vec<CallSite>,
    /// Direct call edges `(call inst, callee)` (for the call graph).
    pub direct_calls: Vec<(InstId, FuncId)>,
}

impl Pag {
    /// Builds the PAG of `prog`.
    pub fn build(prog: &Program) -> Self {
        let mut pag = Pag {
            value_count: prog.values.len(),
            object_count: prog.objects.len(),
            constraints: Vec::new(),
            call_sites: Vec::new(),
            direct_calls: Vec::new(),
        };
        // Globals: g -> {G}.
        for &(g, obj) in &prog.globals {
            pag.constraints.push(Constraint::Addr { dst: pag.value_node(g), obj });
        }
        for (inst_id, inst) in prog.insts.iter_enumerated() {
            match &inst.kind {
                InstKind::Alloc { dst, obj } => {
                    pag.constraints.push(Constraint::Addr { dst: pag.value_node(*dst), obj: *obj });
                }
                InstKind::Copy { dst, src } => {
                    pag.constraints.push(Constraint::Copy {
                        src: pag.value_node(*src),
                        dst: pag.value_node(*dst),
                    });
                }
                InstKind::Phi { dst, srcs } => {
                    for &s in srcs {
                        pag.constraints.push(Constraint::Copy {
                            src: pag.value_node(s),
                            dst: pag.value_node(*dst),
                        });
                    }
                }
                InstKind::Field { dst, base, offset } => {
                    pag.constraints.push(Constraint::Gep {
                        base: pag.value_node(*base),
                        offset: *offset,
                        dst: pag.value_node(*dst),
                    });
                }
                InstKind::Load { dst, addr } => {
                    pag.constraints.push(Constraint::Load {
                        addr: pag.value_node(*addr),
                        dst: pag.value_node(*dst),
                    });
                }
                InstKind::Store { addr, val } => {
                    pag.constraints.push(Constraint::Store {
                        val: pag.value_node(*val),
                        addr: pag.value_node(*addr),
                    });
                }
                InstKind::Call { dst, callee, args } => match callee {
                    Callee::Direct(f) => {
                        pag.direct_calls.push((inst_id, *f));
                        pag.add_binding_constraints(prog, *f, args, *dst);
                    }
                    Callee::Indirect(fp) => {
                        pag.call_sites.push(CallSite {
                            inst: inst_id,
                            fp: *fp,
                            args: args.clone(),
                            dst: *dst,
                        });
                    }
                },
                // FREE defines nothing and constrains nothing: a freed
                // object keeps its points-to set (checkers interpret the
                // deallocation event; the analysis stays sound).
                InstKind::Free { .. } | InstKind::FunEntry { .. } | InstKind::FunExit { .. } => {}
            }
        }
        pag
    }

    /// Emits the parameter/return copy constraints binding a call to a
    /// callee (used for direct calls at build time and by the solver when
    /// an indirect call resolves).
    pub fn binding_constraints(
        &self,
        prog: &Program,
        callee: FuncId,
        args: &[ValueId],
        dst: Option<ValueId>,
    ) -> Vec<Constraint> {
        let f = &prog.functions[callee];
        let mut out = Vec::new();
        for (a, p) in args.iter().zip(f.params.iter()) {
            out.push(Constraint::Copy { src: self.value_node(*a), dst: self.value_node(*p) });
        }
        if let Some(d) = dst {
            if let InstKind::FunExit { ret: Some(r), .. } = &prog.insts[f.exit_inst].kind {
                out.push(Constraint::Copy { src: self.value_node(*r), dst: self.value_node(d) });
            }
        }
        out
    }

    fn add_binding_constraints(
        &mut self,
        prog: &Program,
        callee: FuncId,
        args: &[ValueId],
        dst: Option<ValueId>,
    ) {
        let cs = self.binding_constraints(prog, callee, args, dst);
        self.constraints.extend(cs);
    }

    /// Number of PAG nodes (values + objects).
    pub fn node_count(&self) -> usize {
        self.value_count + self.object_count
    }

    /// The node of a top-level value.
    pub fn value_node(&self, v: ValueId) -> PagNodeId {
        PagNodeId::new(v.raw())
    }

    /// The node of an address-taken object.
    pub fn object_node(&self, o: ObjId) -> PagNodeId {
        PagNodeId::new(self.value_count as u32 + o.raw())
    }

    /// Inverse of [`Pag::object_node`]/[`Pag::value_node`].
    pub fn node_kind(&self, n: PagNodeId) -> PagNodeKind {
        if (n.index()) < self.value_count {
            PagNodeKind::Value(ValueId::new(n.raw()))
        } else {
            PagNodeKind::Object(ObjId::new(n.raw() - self.value_count as u32))
        }
    }
}

/// What a PAG node denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagNodeKind {
    /// A top-level value.
    Value(ValueId),
    /// An address-taken object.
    Object(ObjId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    #[test]
    fn builds_expected_constraints() {
        let prog = parse_program(
            r#"
            global @g
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %p = alloc stack A
              %c = copy %p
              %f = gep %c, 1
              %l = load %f
              store %l, %p
              %r = call @id(%p)
              ret
            }
            "#,
        )
        .unwrap();
        let pag = Pag::build(&prog);
        let count =
            |pred: fn(&Constraint) -> bool| pag.constraints.iter().filter(|c| pred(c)).count();
        // Addr: global g + alloc A
        assert_eq!(count(|c| matches!(c, Constraint::Addr { .. })), 2);
        // Copy: %c = copy %p, arg binding p->x, ret binding x->r
        assert_eq!(count(|c| matches!(c, Constraint::Copy { .. })), 3);
        assert_eq!(count(|c| matches!(c, Constraint::Load { .. })), 1);
        assert_eq!(count(|c| matches!(c, Constraint::Store { .. })), 1);
        assert_eq!(count(|c| matches!(c, Constraint::Gep { .. })), 1);
        assert_eq!(pag.direct_calls.len(), 1);
        assert!(pag.call_sites.is_empty());
        assert_eq!(pag.node_count(), prog.values.len() + prog.objects.len());
    }

    #[test]
    fn indirect_calls_become_call_sites() {
        let prog = parse_program(
            r#"
            func @f(%a) {
            entry:
              ret %a
            }
            func @main() {
            entry:
              %fp = funaddr @f
              %x = alloc stack X
              %r = icall %fp(%x)
              ret
            }
            "#,
        )
        .unwrap();
        let pag = Pag::build(&prog);
        assert_eq!(pag.call_sites.len(), 1);
        let cs = &pag.call_sites[0];
        assert_eq!(cs.args.len(), 1);
        assert!(cs.dst.is_some());
        assert!(pag.direct_calls.is_empty());
    }

    #[test]
    fn node_kind_roundtrip() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              ret
            }
            "#,
        )
        .unwrap();
        let pag = Pag::build(&prog);
        for (v, _) in prog.values.iter_enumerated() {
            assert_eq!(pag.node_kind(pag.value_node(v)), PagNodeKind::Value(v));
        }
        for (o, _) in prog.objects.iter_enumerated() {
            assert_eq!(pag.node_kind(pag.object_node(o)), PagNodeKind::Object(o));
        }
    }
}

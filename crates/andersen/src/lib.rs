//! Andersen's inclusion-based, flow-insensitive pointer analysis — the
//! *auxiliary analysis* of the paper (Section II-B).
//!
//! Staged flow-sensitive analysis needs a sound, cheap points-to
//! pre-analysis to (a) annotate loads/stores with the objects they may
//! access (`χ`/`µ` functions), (b) over-approximate the call graph, and
//! (c) bound the indirect value-flow edges of the SVFG. This crate
//! provides that pre-analysis:
//!
//! * [`pag`] — the *program assignment graph*: pointer nodes (top-level
//!   values ∪ address-taken objects) and the constraints between them
//!   (Addr/Copy/Load/Store/Gep), plus call-site records for on-the-fly
//!   call-graph construction.
//! * [`solver`] — a difference-propagation worklist solver with periodic
//!   strongly-connected-component collapsing (online cycle elimination).
//! * [`callgraph`] — the call graph discovered while solving.
//! * [`singletons`] — the `SN` set of Table I: objects representing
//!   exactly one runtime object, eligible for strong updates.
//!
//! # Examples
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q = alloc heap H
//!   store %q, %p
//!   %r = load %p
//!   ret
//! }
//! "#)?;
//! let result = vsfs_andersen::analyze(&prog);
//! let r = prog.values.iter_enumerated()
//!     .find(|(_, v)| v.name == "r").map(|(id, _)| id).unwrap();
//! // r = *p, *p = q, q -> {H}: so r points to H.
//! assert_eq!(result.value_pts(r).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod callgraph;
pub mod pag;
pub mod singletons;
pub mod solver;
pub mod unify;

pub use callgraph::CallGraph;
pub use pag::{Pag, PagNodeId};
pub use singletons::compute_singletons;
pub use solver::{
    analyze, analyze_governed, analyze_with_config, analyze_with_config_regions, AndersenConfig,
    AndersenResult, AndersenStats,
};
pub use unify::{
    analyze_unify, analyze_unify_governed, analyze_unify_with_config, AliasRegions, UnifyConfig,
    UnifyResult, UnifyStats,
};

//! Singleton objects (`SN ⊆ A`, Table I): abstract objects representing
//! exactly one runtime object, and therefore eligible for strong updates
//! during flow-sensitive solving (`[SU/WU]` rule).
//!
//! An object is a singleton when it denotes one concrete location:
//!
//! * globals (one instance per program run);
//! * stack objects of functions that cannot have two live activations —
//!   i.e. functions not involved in call-graph recursion;
//! * fields of such objects.
//!
//! Heap objects (one abstract object summarising many allocations),
//! arrays (one abstract object summarising many elements), and function
//! objects are never singletons.

use std::collections::HashSet;
use vsfs_adt::PointsToSet;
use vsfs_ir::{ObjId, ObjKind, Program};

use crate::callgraph::CallGraph;

/// Computes the singleton set `SN` given the (over-approximate) call graph.
///
/// Recursion detection must use a sound call graph: any call graph
/// over-approximating the real one (e.g. Andersen's) is safe, because extra
/// edges can only classify more functions as recursive, shrinking `SN`.
pub fn compute_singletons(prog: &Program, callgraph: &CallGraph) -> PointsToSet<ObjId> {
    let recursive = callgraph.recursive_functions(prog);
    let mut out = PointsToSet::new();
    for (id, _) in prog.objects.iter_enumerated() {
        if is_singleton(prog, &recursive, id) {
            out.insert(id);
        }
    }
    out
}

fn is_singleton(prog: &Program, recursive: &HashSet<vsfs_ir::FuncId>, o: ObjId) -> bool {
    let obj = &prog.objects[o];
    if obj.is_array {
        return false;
    }
    match obj.kind {
        // The null pseudo-object denotes one (non-)location per run.
        ObjKind::Global | ObjKind::Null => true,
        ObjKind::Stack(f) => !recursive.contains(&f),
        ObjKind::Heap(_) | ObjKind::Function(_) => false,
        ObjKind::Field { base, .. } => is_singleton(prog, recursive, base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::analyze;
    use vsfs_ir::parse_program;

    fn obj(prog: &Program, name: &str) -> ObjId {
        prog.objects.iter_enumerated().find(|(_, o)| o.name == name).map(|(id, _)| id).unwrap()
    }

    #[test]
    fn classification() {
        let prog = parse_program(
            r#"
            global @g fields 2
            global @arr array
            func @rec() {
            entry:
              %s = alloc stack RS
              call @rec()
              ret
            }
            func @main() {
            entry:
              %a = alloc stack MS
              %h = alloc heap MH
              %fp = funaddr @rec
              call @rec()
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        let sn = compute_singletons(&prog, &res.callgraph);
        assert!(sn.contains(obj(&prog, "g")));
        assert!(sn.contains(obj(&prog, "g.f1")), "fields of singletons are singletons");
        assert!(!sn.contains(obj(&prog, "arr")), "arrays are not singletons");
        assert!(!sn.contains(obj(&prog, "RS")), "stack in recursive fn");
        assert!(sn.contains(obj(&prog, "MS")), "stack in non-recursive fn");
        assert!(!sn.contains(obj(&prog, "MH")), "heap never singleton");
        assert!(!sn.contains(obj(&prog, "&rec")), "functions never singleton");
    }

    #[test]
    fn indirect_recursion_detected() {
        let prog = parse_program(
            r#"
            func @a() {
            entry:
              %s = alloc stack AS
              call @b()
              ret
            }
            func @b() {
            entry:
              call @a()
              ret
            }
            func @main() {
            entry:
              call @a()
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        let sn = compute_singletons(&prog, &res.callgraph);
        assert!(!sn.contains(obj(&prog, "AS")));
    }
}

//! The inclusion-constraint solver.
//!
//! A difference-propagation worklist solver: each node tracks its full
//! points-to set (`pts`) and the prefix that has already been propagated
//! and processed against complex constraints (`prop`). Popping a node
//! processes only the delta. Cycles in the copy graph are collapsed
//! periodically with a full SCC pass over representative nodes (online
//! cycle elimination à la wave propagation); the interval is configurable
//! and collapsing can be disabled entirely — an ablation the benchmark
//! harness exercises.
//!
//! With `jobs > 1` the solver switches to a *sharded wave-propagation*
//! schedule: instead of popping one node at a time it drains the whole
//! worklist into a sorted wave of dirty representatives and processes the
//! wave in three phases — a parallel read-only scan that computes each
//! node's delta and the structural actions it implies, a sequential
//! commit that applies graph mutations in ascending node order, and a
//! parallel union phase that applies delta propagations sharded by
//! *target* node over disjoint `&mut` chunks of the points-to array.
//! Every phase is a pure function of the wave's contents, so the entire
//! run — including when SCC collapses fire — is identical for any
//! `jobs >= 2`, and the final fixpoint matches the sequential schedule
//! because the inclusion constraints have a unique least solution.

use crate::callgraph::CallGraph;
use crate::pag::{CallSiteId, Constraint, Pag, PagNodeId};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vsfs_adt::govern::{panic_message, DegradeReason, Governor, Outcome, WorkerFault};
use vsfs_adt::par::{self, ParConfig};
use vsfs_adt::{FifoWorklist, FlatReader, PointsToSet, PtsId, PtsScratch, PtsStore, PtsStoreStats};
use vsfs_graph::{DiGraph, Sccs};
use vsfs_ir::{FuncId, ObjId, Program, ValueId};

/// The empty-set id of the solver's store.
const EMPTY: PtsId = PtsStore::<ObjId>::EMPTY;

/// Tuning knobs for the solver.
#[derive(Debug, Clone, Copy)]
pub struct AndersenConfig {
    /// Run an SCC collapse every this many worklist pops; `None` disables
    /// online cycle elimination.
    pub scc_interval: Option<usize>,
    /// Worker threads for the wave-propagation schedule. `1` (the
    /// default) runs the sequential pop-at-a-time solver; any other
    /// value (including `0` = all cores) runs sharded waves.
    pub jobs: usize,
}

impl Default for AndersenConfig {
    fn default() -> Self {
        AndersenConfig { scc_interval: Some(10_000), jobs: 1 }
    }
}

impl AndersenConfig {
    /// The default configuration with `jobs` worker threads.
    pub fn with_jobs(jobs: usize) -> Self {
        AndersenConfig { jobs, ..Default::default() }
    }
}

/// Counters describing a solver run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AndersenStats {
    /// Worklist pops.
    pub pops: usize,
    /// Set-union propagations along copy edges.
    pub propagations: usize,
    /// Copy edges in the final graph.
    pub copy_edges: usize,
    /// SCC collapse passes executed.
    pub scc_runs: usize,
    /// Nodes merged away by cycle elimination.
    pub nodes_collapsed: usize,
    /// `(call site, callee)` pairs resolved on the fly.
    pub indirect_resolutions: usize,
    /// Waves executed by the parallel schedule (0 for sequential runs).
    pub waves: usize,
    /// Worker threads used by the parallel schedule (0 for sequential runs).
    pub par_workers: usize,
    /// `true` when the union shards were seeded by unification alias
    /// regions ([`crate::solver::analyze_with_config_regions`]).
    pub region_seeded: bool,
    /// Hash-consed points-to store counters (unique sets, memo hit rates).
    pub store: PtsStoreStats,
}

/// The result of Andersen's analysis. Points-to sets live in a shared
/// hash-consed [`PtsStore`]; each node holds only a [`PtsId`] handle.
#[derive(Debug, Clone)]
pub struct AndersenResult {
    uf: Vec<u32>,
    store: PtsStore<ObjId>,
    /// Flat read-back cache for the representative sets the API lends
    /// out.
    flat: FlatReader<ObjId>,
    pts: Vec<PtsId>,
    value_count: usize,
    /// The (over-approximate) call graph.
    pub callgraph: CallGraph,
    /// Run counters.
    pub stats: AndersenStats,
}

impl AndersenResult {
    fn find(&self, mut n: usize) -> usize {
        while self.uf[n] as usize != n {
            n = self.uf[n] as usize;
        }
        n
    }

    /// The points-to set of top-level value `v`.
    pub fn value_pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.flat.get(self.pts[self.find(v.index())])
    }

    /// The (flow-insensitive) points-to set stored in object `o`.
    pub fn object_pts(&self, o: ObjId) -> &PointsToSet<ObjId> {
        self.flat.get(self.pts[self.find(self.value_count + o.index())])
    }

    /// Total elements across all distinct representative points-to sets —
    /// a logical memory metric.
    pub fn total_pts_entries(&self) -> usize {
        self.uf
            .iter()
            .enumerate()
            .filter(|&(i, &r)| i == r as usize)
            .map(|(i, _)| self.store.set_len(self.pts[i]))
            .sum()
    }
}

/// Runs Andersen's analysis with the default configuration.
pub fn analyze(prog: &Program) -> AndersenResult {
    analyze_with_config(prog, AndersenConfig::default())
}

/// Runs Andersen's analysis with an explicit configuration.
pub fn analyze_with_config(prog: &Program, config: AndersenConfig) -> AndersenResult {
    Solver::new(prog, config).run()
}

/// Runs Andersen's analysis with the wave shards seeded by the alias
/// regions of a unification pre-analysis ([`crate::unify`]): the union
/// phase orders its target groups region-major before the cost split,
/// so targets of the same (provably-disjoint) alias region land on the
/// same worker wherever load balance permits. A pure scheduling hint —
/// the result is bit-identical to [`analyze_with_config`] for every
/// `jobs` and every region assignment.
pub fn analyze_with_config_regions(
    prog: &Program,
    config: AndersenConfig,
    regions: &crate::unify::AliasRegions,
) -> AndersenResult {
    let mut solver = Solver::new(prog, config);
    solver.regions = Some(regions.region_of_node.clone());
    solver.run()
}

/// Runs Andersen's analysis under a [`Governor`]: the solver checkpoints
/// at every sequential pop (or wave boundary in the parallel schedule)
/// and stops once the governor trips, and parallel worker panics are
/// caught and reported through the governor instead of aborting.
///
/// **A degraded Andersen result is a partial fixpoint — an
/// under-approximation — and therefore unsound to analyse with or to
/// fall back to.** Callers must treat `Degraded` as an error; only the
/// flow-sensitive stages have a sound fallback (Andersen itself).
///
/// Step accounting caveat: the sequential and wave schedules pop in
/// different granularities, so step budgets are *not* schedule-portable
/// here. Deterministic budget tests target the flow-sensitive stage;
/// this entry point exists to bound wall-clock/memory and to propagate
/// cancellation.
pub fn analyze_governed(
    prog: &Program,
    config: AndersenConfig,
    governor: &Governor,
) -> Outcome<AndersenResult> {
    let mut solver = Solver::new(prog, config);
    solver.gov = Some(governor);
    let result = solver.run();
    Outcome { result, completion: governor.completion() }
}

/// What one wave-scan of a dirty node produced: the node's unprocessed
/// delta and the structural actions it implies. Raw `u32` node ids keep
/// the payload `Send` and compact; representatives are re-resolved at
/// apply time.
#[derive(Default)]
struct WaveOutcome {
    delta: PointsToSet<ObjId>,
    /// New copy edges `(src, dst)` from load/store constraints.
    copy_new: Vec<(u32, u32)>,
    /// Field-object insertions `(gep dst node, field object)`.
    gep_new: Vec<(u32, ObjId)>,
    /// Indirect-call resolutions discovered.
    calls: Vec<(CallSiteId, FuncId)>,
}

/// Path-compressing union-find lookup on a bare parent array.
///
/// A free function rather than a method so hot loops can split-borrow:
/// resolving representatives needs only `uf`, leaving `copy_succs` (and
/// the store) free to be borrowed alongside instead of cloned per pop.
fn find_in(uf: &mut [u32], n: usize) -> usize {
    let mut root = n;
    while uf[root] as usize != root {
        root = uf[root] as usize;
    }
    // Path compression.
    let mut cur = n;
    while uf[cur] as usize != cur {
        let next = uf[cur] as usize;
        uf[cur] = root as u32;
        cur = next;
    }
    root
}

struct Solver<'p> {
    prog: &'p Program,
    pag: Pag,
    config: AndersenConfig,
    gov: Option<&'p Governor>,
    uf: Vec<u32>,
    store: PtsStore<ObjId>,
    pts: Vec<PtsId>,
    prop: Vec<PtsId>,
    copy_succs: Vec<Vec<u32>>,
    loads: Vec<Vec<u32>>,
    stores: Vec<Vec<u32>>,
    geps: Vec<Vec<(u32, u32)>>,
    icalls: Vec<Vec<CallSiteId>>,
    resolved: HashSet<(CallSiteId, FuncId)>,
    /// Alias region of every PAG node, when a unification pre-analysis
    /// seeds the union shards (`u32::MAX` = never points anywhere).
    regions: Option<Vec<u32>>,
    /// Global copy-edge dedup (may contain stale pre-merge pairs, which
    /// only costs an occasional duplicate edge, never correctness).
    edge_seen: HashSet<(u32, u32)>,
    callgraph: CallGraph,
    worklist: FifoWorklist<usize>,
    stats: AndersenStats,
}

impl<'p> Solver<'p> {
    fn new(prog: &'p Program, config: AndersenConfig) -> Self {
        let pag = Pag::build(prog);
        let n = pag.node_count();
        Solver {
            prog,
            config,
            gov: None,
            uf: (0..n as u32).collect(),
            store: PtsStore::new(),
            pts: vec![EMPTY; n],
            prop: vec![EMPTY; n],
            copy_succs: vec![Vec::new(); n],
            loads: vec![Vec::new(); n],
            stores: vec![Vec::new(); n],
            geps: vec![Vec::new(); n],
            icalls: vec![Vec::new(); n],
            resolved: HashSet::new(),
            regions: None,
            edge_seen: HashSet::new(),
            callgraph: CallGraph::new(),
            worklist: FifoWorklist::new(n),
            pag,
            stats: AndersenStats::default(),
        }
    }

    fn find(&mut self, n: usize) -> usize {
        find_in(&mut self.uf, n)
    }

    fn run(mut self) -> AndersenResult {
        if self.config.jobs != 1 {
            return self.run_waves();
        }
        self.init();
        let mut pops_since_scc = 0usize;
        while let Some(n) = self.worklist.pop() {
            if self.find(n) != n {
                continue; // merged away
            }
            if self.gov.is_some_and(|g| g.check(1).is_err()) {
                break;
            }
            self.stats.pops += 1;
            pops_since_scc += 1;
            self.process_node(n);
            if let Some(interval) = self.config.scc_interval {
                if pops_since_scc >= interval {
                    pops_since_scc = 0;
                    self.collapse_cycles();
                }
            }
        }
        self.finish()
    }

    fn finish(mut self) -> AndersenResult {
        // Record direct call edges (indirect ones were added on the fly).
        for &(call, callee) in &self.pag.direct_calls {
            self.callgraph.add_edge(call, callee);
        }
        self.callgraph.canonicalize();
        let reps: Vec<PtsId> =
            (0..self.uf.len()).filter(|&i| self.uf[i] as usize == i).map(|i| self.pts[i]).collect();
        AndersenResult {
            uf: self.uf,
            value_count: self.prog.values.len(),
            callgraph: self.callgraph,
            stats: AndersenStats {
                copy_edges: self.copy_succs.iter().map(Vec::len).sum(),
                store: self.store.stats(),
                region_seeded: self.regions.is_some(),
                ..self.stats
            },
            flat: FlatReader::new(&self.store, reps),
            store: self.store,
            pts: self.pts,
        }
    }

    /// The sharded wave-propagation schedule (`jobs != 1`).
    ///
    /// Per wave: drain the worklist into a sorted list of dirty
    /// representatives, scan them in parallel (read-only), commit the
    /// resulting graph mutations sequentially in node order, then apply
    /// the copy-edge unions in parallel, sharded by target node. The
    /// schedule — and therefore every counter and merge decision — is a
    /// pure function of the wave contents, independent of thread count.
    fn run_waves(mut self) -> AndersenResult {
        self.init();
        let par = ParConfig::new(self.config.jobs);
        self.stats.par_workers = par.effective_jobs();
        let mut pops_since_scc = 0usize;
        loop {
            // Drain into a deterministic wave of dirty representatives.
            let mut dirty: Vec<usize> = Vec::new();
            while let Some(n) = self.worklist.pop() {
                let r = self.find(n);
                dirty.push(r);
            }
            dirty.sort_unstable();
            dirty.dedup();
            if dirty.is_empty() {
                break;
            }
            if self.gov.is_some_and(|g| g.check(dirty.len() as u64).is_err()) {
                break;
            }
            self.stats.waves += 1;

            // Phase A (parallel, read-only): per-node deltas plus the
            // structural actions they imply. Under a governor the region
            // is cancellable and worker panics degrade instead of
            // unwinding.
            let this = &self;
            let dirty_ref = &dirty;
            let outcomes = match par::try_run_tasks_with(
                par,
                dirty.len(),
                |k| {
                    (this.store.set_len(this.pts[dirty_ref[k]])
                        + this.copy_succs[dirty_ref[k]].len()
                        + 1) as u64
                },
                this.gov,
                || (),
                |(), k| this.wave_scan(dirty_ref[k]),
            ) {
                Ok((outcomes, _)) => outcomes,
                Err(interrupt) => match self.gov {
                    Some(g) => {
                        g.note_interrupt(&interrupt);
                        break;
                    }
                    None => {
                        let f = interrupt.faults.first().expect("ungoverned interrupt has fault");
                        panic!("parallel {f}");
                    }
                },
            };

            // Phase B (sequential): commit deltas to `prop` — interning
            // each delta in wave order, so store ids stay deterministic —
            // then apply structural mutations in ascending node order.
            for (k, out) in outcomes.iter().enumerate() {
                if out.delta.is_empty() {
                    continue;
                }
                self.stats.pops += 1;
                pops_since_scc += 1;
                let did = self.store.intern(&out.delta);
                self.prop[dirty[k]] = self.store.union(self.prop[dirty[k]], did);
            }
            for out in &outcomes {
                for &(src, dst) in &out.copy_new {
                    self.add_copy_edge(src as usize, dst as usize);
                }
                for &(dst, f) in &out.gep_new {
                    let d = self.find(dst as usize);
                    let new = self.store.insert(self.pts[d], f);
                    if new != self.pts[d] {
                        self.pts[d] = new;
                        self.worklist.push(d);
                    }
                }
                for &(cs, callee) in &out.calls {
                    self.resolve_call(cs, callee);
                }
            }

            // Phase C (parallel): propagate deltas along copy edges,
            // sharded by target so each target's unions land on exactly
            // one worker. Messages reference outcomes by index. The
            // successor lists are only read, so resolving targets needs
            // just a split borrow of the union-find — no clone per node.
            let mut msgs: Vec<(u32, u32)> = Vec::new();
            let uf = &mut self.uf;
            for (k, out) in outcomes.iter().enumerate() {
                if out.delta.is_empty() {
                    continue;
                }
                let n = dirty[k];
                for &s in &self.copy_succs[n] {
                    let t = find_in(uf, s as usize);
                    if t != n {
                        msgs.push((t as u32, k as u32));
                    }
                }
            }
            msgs.sort_unstable();
            msgs.dedup();
            self.stats.propagations += msgs.len();
            self.apply_unions(&msgs, &outcomes, par);

            if let Some(interval) = self.config.scc_interval {
                if pops_since_scc >= interval {
                    pops_since_scc = 0;
                    self.collapse_cycles();
                }
            }
        }
        self.finish()
    }

    /// Phase A worker: computes the unprocessed delta of representative
    /// `n` and the actions it implies, without mutating any solver state.
    fn wave_scan(&self, n: usize) -> WaveOutcome {
        let mut out =
            WaveOutcome { delta: self.store.materialize(self.pts[n]), ..Default::default() };
        out.delta.subtract(&self.store.materialize(self.prop[n]));
        if out.delta.is_empty() {
            return out;
        }
        let loads = &self.loads[n];
        let stores = &self.stores[n];
        let geps = &self.geps[n];
        let icalls = &self.icalls[n];
        for o in out.delta.iter().collect::<Vec<_>>() {
            let obj_node = self.pag.object_node(o).raw();
            for &dst in loads {
                out.copy_new.push((obj_node, dst));
            }
            for &val in stores {
                out.copy_new.push((val, obj_node));
            }
            for &(offset, dst) in geps {
                out.gep_new.push((dst, self.prog.field_object(o, offset)));
            }
            if !icalls.is_empty() {
                if let Some(callee) = self.prog.object_as_function(o) {
                    for &cs in icalls {
                        out.calls.push((cs, callee));
                    }
                }
            }
        }
        out
    }

    /// Phase C: applies `msgs` — sorted `(target, outcome index)` union
    /// requests — with one worker per cost-balanced group chunk. Workers
    /// are *read-only* over the shared store: each resolves its targets'
    /// current sets through a [`PtsScratch`], unions the message deltas
    /// into private owned sets, and reports `(target, set)` pairs for the
    /// targets that grew. The sequential barrier then sorts the grown
    /// targets (each target lives on exactly one worker, so the order is
    /// total) and interns them ascending, so store ids and the next wave
    /// are identical for any worker count and any shard assignment.
    ///
    /// When a unification pre-analysis seeds the shards, groups are
    /// ordered region-major before the cost split: targets of the same
    /// alias region — the only ones whose sets can share elements — land
    /// on the same worker wherever balance permits, and an oversized
    /// region still splits rather than serialising the wave.
    fn apply_unions(&mut self, msgs: &[(u32, u32)], outcomes: &[WaveOutcome], par: ParConfig) {
        if msgs.is_empty() {
            return;
        }
        // Group messages by target: (target, msgs start, msgs end).
        let mut groups: Vec<(usize, usize, usize)> = Vec::new();
        for (i, &(t, _)) in msgs.iter().enumerate() {
            match groups.last_mut() {
                Some(g) if g.0 == t as usize => g.2 = i + 1,
                _ => groups.push((t as usize, i, i + 1)),
            }
        }
        if let Some(regions) = &self.regions {
            let region_of = |t: usize| regions.get(t).copied().unwrap_or(u32::MAX);
            groups.sort_by_key(|&(t, _, _)| (region_of(t), t));
        }
        let costs: Vec<u64> = groups.iter().map(|&(_, s, e)| (e - s) as u64).collect();
        let ranges = par::split_by_cost(&costs, par.effective_jobs());

        type ChangedSets = Vec<(usize, PointsToSet<ObjId>)>;
        let this = &*self;
        let grown: Vec<Result<ChangedSets, WorkerFault>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranges.len());
            for r in &ranges {
                if r.is_empty() {
                    continue;
                }
                let chunk_groups = &groups[r.clone()];
                handles.push(scope.spawn(move || {
                    // Union application cannot realistically panic, but
                    // if it ever does the fault must not unwind through
                    // `thread::scope` (two unwinding workers abort the
                    // process). Catch and report instead.
                    catch_unwind(AssertUnwindSafe(move || {
                        let mut scratch = PtsScratch::new(&this.store);
                        for &(t, s, e) in chunk_groups {
                            scratch.union_into(
                                t,
                                this.pts[t],
                                msgs[s..e].iter().map(|&(_, k)| &outcomes[k as usize].delta),
                            );
                        }
                        scratch.into_changed()
                    }))
                    .map_err(|payload| WorkerFault {
                        task: chunk_groups[0].0,
                        message: panic_message(&*payload),
                    })
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(WorkerFault { task: usize::MAX, message: panic_message(&*payload) })
                    })
                })
                .collect::<Vec<Result<ChangedSets, WorkerFault>>>()
        });
        let mut all_changed: ChangedSets = Vec::new();
        for outcome in grown {
            match outcome {
                Ok(changed) => all_changed.extend(changed),
                Err(fault) => match self.gov {
                    // The wave-loop checkpoint sees the trip and breaks.
                    Some(g) => g.trip(DegradeReason::WorkerPanic(fault)),
                    None => panic!("parallel {fault}"),
                },
            }
        }
        // Deterministic merge: every target lives on exactly one worker,
        // so sorting gives one total ascending intern order whatever the
        // partition (contiguous, region-seeded, or otherwise).
        all_changed.sort_unstable_by_key(|&(t, _)| t);
        for (t, set) in all_changed {
            self.pts[t] = self.store.intern(&set);
            self.worklist.push(t);
        }
    }

    fn init(&mut self) {
        let constraints = std::mem::take(&mut self.pag.constraints);
        for c in &constraints {
            match *c {
                Constraint::Addr { dst, obj } => {
                    if self.prog.objects[obj].is_function() {
                        if let Some(f) = self.prog.object_as_function(obj) {
                            self.callgraph.mark_address_taken(f);
                        }
                    }
                    let d = self.find(dst.index());
                    let new = self.store.insert(self.pts[d], obj);
                    if new != self.pts[d] {
                        self.pts[d] = new;
                        self.worklist.push(d);
                    }
                }
                Constraint::Copy { src, dst } => {
                    self.add_copy_edge(src.index(), dst.index());
                }
                Constraint::Load { addr, dst } => {
                    let a = self.find(addr.index());
                    self.loads[a].push(dst.raw());
                    self.reprocess(a);
                }
                Constraint::Store { val, addr } => {
                    let a = self.find(addr.index());
                    self.stores[a].push(val.raw());
                    self.reprocess(a);
                }
                Constraint::Gep { base, offset, dst } => {
                    let b = self.find(base.index());
                    self.geps[b].push((offset, dst.raw()));
                    self.reprocess(b);
                }
            }
        }
        let sites: Vec<(CallSiteId, PagNodeId)> = self
            .pag
            .call_sites
            .iter()
            .enumerate()
            .map(|(i, cs)| (CallSiteId::new(i as u32), self.pag.value_node(cs.fp)))
            .collect();
        for (cs, fp) in sites {
            let f = self.find(fp.index());
            self.icalls[f].push(cs);
            self.reprocess(f);
        }
    }

    /// Forces already-propagated elements of `n` to be re-examined (used
    /// when a new complex constraint attaches to `n`).
    fn reprocess(&mut self, n: usize) {
        if self.pts[n] != EMPTY {
            self.prop[n] = EMPTY;
            self.worklist.push(n);
        }
    }

    fn process_node(&mut self, n: usize) {
        let delta = self.store.subtract(self.pts[n], self.prop[n]);
        if delta == EMPTY {
            return;
        }
        self.prop[n] = self.store.union(self.prop[n], delta);

        // Complex constraints keyed on n.
        let loads = std::mem::take(&mut self.loads[n]);
        let stores = std::mem::take(&mut self.stores[n]);
        let geps = std::mem::take(&mut self.geps[n]);
        let icalls = std::mem::take(&mut self.icalls[n]);
        for o in self.store.iter_set(delta).collect::<Vec<_>>() {
            let obj_node = self.pag.object_node(o).index();
            for &dst in &loads {
                self.add_copy_edge(obj_node, dst as usize);
            }
            for &val in &stores {
                self.add_copy_edge(val as usize, obj_node);
            }
            for &(offset, dst) in &geps {
                let f = self.prog.field_object(o, offset);
                let d = self.find(dst as usize);
                let new = self.store.insert(self.pts[d], f);
                if new != self.pts[d] {
                    self.pts[d] = new;
                    self.worklist.push(d);
                }
            }
            if !icalls.is_empty() {
                if let Some(callee) = self.prog.object_as_function(o) {
                    for &cs in &icalls {
                        self.resolve_call(cs, callee);
                    }
                }
            }
        }
        let n2 = self.find(n);
        self.loads[n2].extend(loads);
        self.stores[n2].extend(stores);
        self.geps[n2].extend(geps);
        self.icalls[n2].extend(icalls);

        // Propagate the delta along copy edges. Split-borrow the fields
        // (union-find, id arrays, store, worklist) so the successor list
        // can be iterated in place instead of cloned on every pop.
        let uf = &mut self.uf;
        let pts = &mut self.pts;
        let store = &mut self.store;
        let worklist = &mut self.worklist;
        let stats = &mut self.stats;
        let root = find_in(uf, n);
        for &s in &self.copy_succs[n] {
            let s = find_in(uf, s as usize);
            if s == root {
                continue;
            }
            stats.propagations += 1;
            let new = store.union(pts[s], delta);
            if new != pts[s] {
                pts[s] = new;
                worklist.push(s);
            }
        }
        // If complex processing grew pts[n] itself (e.g. gep dst == n), the
        // worklist push in those paths covers it.
    }

    fn add_copy_edge(&mut self, src: usize, dst: usize) {
        let s = self.find(src);
        let d = self.find(dst);
        if s == d || !self.edge_seen.insert((s as u32, d as u32)) {
            return;
        }
        self.copy_succs[s].push(d as u32);
        // Seed the new edge with everything already processed at s.
        if self.prop[s] != EMPTY {
            self.stats.propagations += 1;
            let new = self.store.union(self.pts[d], self.prop[s]);
            if new != self.pts[d] {
                self.pts[d] = new;
                self.worklist.push(d);
            }
        }
    }

    fn resolve_call(&mut self, cs: CallSiteId, callee: FuncId) {
        if !self.resolved.insert((cs, callee)) {
            return;
        }
        self.stats.indirect_resolutions += 1;
        let site = self.pag.call_sites[cs.index()].clone();
        self.callgraph.add_edge(site.inst, callee);
        let bindings = self.pag.binding_constraints(self.prog, callee, &site.args, site.dst);
        for c in bindings {
            if let Constraint::Copy { src, dst } = c {
                self.add_copy_edge(src.index(), dst.index());
            }
        }
    }

    /// Collapses copy-graph cycles among representative nodes.
    fn collapse_cycles(&mut self) {
        self.stats.scc_runs += 1;
        let n = self.uf.len();
        let mut g: DiGraph<u32> = DiGraph::with_nodes(n);
        // Split-borrow: only the union-find is mutated while walking the
        // successor lists, so no per-node clone is needed.
        let uf = &mut self.uf;
        for i in 0..n {
            if find_in(uf, i) != i {
                continue;
            }
            for &s in &self.copy_succs[i] {
                let d = find_in(uf, s as usize);
                if d != i {
                    g.add_edge_dedup(i as u32, d as u32);
                }
            }
        }
        let sccs = Sccs::compute(&g);
        for c in 0..sccs.count() as u32 {
            let members: Vec<u32> = sccs
                .members(c)
                .iter()
                .copied()
                .filter(|&m| self.find(m as usize) == m as usize)
                .collect();
            if members.len() < 2 {
                continue;
            }
            let root = members[0] as usize;
            for &m in &members[1..] {
                self.merge_into(m as usize, root);
            }
            self.worklist.push(root);
        }
    }

    /// Merges node `a` into `root` (both must be current representatives).
    fn merge_into(&mut self, a: usize, root: usize) {
        debug_assert_ne!(a, root);
        self.stats.nodes_collapsed += 1;
        self.uf[a] = root as u32;
        let a_pts = std::mem::replace(&mut self.pts[a], EMPTY);
        self.pts[root] = self.store.union(self.pts[root], a_pts);
        // Only elements processed by *both* halves can be considered
        // processed for the merged constraint set.
        let a_prop = std::mem::replace(&mut self.prop[a], EMPTY);
        self.prop[root] = self.store.intersect(self.prop[root], a_prop);
        let succs = std::mem::take(&mut self.copy_succs[a]);
        self.copy_succs[root].extend(succs);
        let l = std::mem::take(&mut self.loads[a]);
        self.loads[root].extend(l);
        let s = std::mem::take(&mut self.stores[a]);
        self.stores[root].extend(s);
        let gp = std::mem::take(&mut self.geps[a]);
        self.geps[root].extend(gp);
        let ic = std::mem::take(&mut self.icalls[a]);
        self.icalls[root].extend(ic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn value(prog: &Program, name: &str) -> ValueId {
        prog.values
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    fn obj(prog: &Program, name: &str) -> ObjId {
        prog.objects
            .iter_enumerated()
            .find(|(_, o)| o.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no object named {name}"))
    }

    fn pts_names(prog: &Program, s: &PointsToSet<ObjId>) -> Vec<String> {
        let mut v: Vec<String> = s.iter().map(|o| prog.objects[o].name.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn store_load_roundtrip() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "p"))), vec!["A"]);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "r"))), vec!["H"]);
        assert_eq!(pts_names(&prog, res.object_pts(obj(&prog, "A"))), vec!["H"]);
    }

    #[test]
    fn flow_insensitivity_merges_both_stores() {
        // p points to A; *p = q then *p = r: A holds both H1 and H2 and a
        // load sees both regardless of order.
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H1
              %x = load %p
              %r = alloc heap H2
              store %q, %p
              store %r, %p
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "x"))), vec!["H1", "H2"]);
    }

    #[test]
    fn copy_cycles_converge() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %init = alloc stack A
              goto head
            head:
              %a = phi %init, %b
              %b = copy %a
              br head, out
            out:
              %c = copy %b
              ret
            }
            "#,
        )
        .unwrap();
        // With and without cycle elimination.
        for cfg in [
            AndersenConfig { scc_interval: Some(1), ..Default::default() },
            AndersenConfig { scc_interval: None, ..Default::default() },
        ] {
            let res = analyze_with_config(&prog, cfg);
            assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "c"))), vec!["A"]);
        }
    }

    #[test]
    fn gep_creates_field_pointees() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %s = alloc stack S fields 3
              %f1 = gep %s, 1
              %h = alloc heap H
              store %h, %f1
              %f1b = gep %s, 1
              %x = load %f1b
              %f2 = gep %s, 2
              %y = load %f2
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "x"))), vec!["H"]);
        // Different field: no H.
        assert!(res.value_pts(value(&prog, "y")).is_empty());
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "f1"))), vec!["S.f1"]);
    }

    #[test]
    fn direct_call_binds_params_and_returns() {
        let prog = parse_program(
            r#"
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %a = alloc heap H
              %r = call @id(%a)
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "r"))), vec!["H"]);
        assert_eq!(res.callgraph.edge_count(), 1);
    }

    #[test]
    fn indirect_call_resolved_on_the_fly() {
        let prog = parse_program(
            r#"
            global @table
            func @f(%x) {
            entry:
              ret %x
            }
            func @g(%y) {
            entry:
              %h = alloc heap GH
              ret %h
            }
            func @main() {
            entry:
              %fp0 = funaddr @f
              store %fp0, @table
              %fp1 = funaddr @g
              br a, b
            a:
              goto join
            b:
              store %fp1, @table
              goto join
            join:
              %fp = load @table
              %arg = alloc heap AH
              %r = icall %fp(%arg)
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        let f = prog.function_by_name("f").unwrap();
        let g = prog.function_by_name("g").unwrap();
        // Both targets resolved.
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| {
                matches!(
                    i.kind,
                    vsfs_ir::InstKind::Call { callee: vsfs_ir::Callee::Indirect(_), .. }
                )
            })
            .map(|(id, _)| id)
            .unwrap();
        let mut callees = res.callgraph.callees(call).to_vec();
        callees.sort();
        assert_eq!(callees, vec![f, g]);
        assert!(res.callgraph.is_address_taken(f));
        assert!(res.callgraph.is_address_taken(g));
        // r gets AH (via f) and GH (via g).
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "r"))), vec!["AH", "GH"]);
        assert_eq!(res.stats.indirect_resolutions, 2);
    }

    #[test]
    fn multi_level_pointers() {
        // **pp chain: r should reach the bottom object.
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %pp = alloc stack PP
              %p = alloc stack P
              %h = alloc heap H
              store %p, %pp
              store %h, %p
              %p2 = load %pp
              %r = load %p2
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "r"))), vec!["H"]);
    }

    #[test]
    fn results_invariant_under_scc_interval() {
        let prog = parse_program(
            r#"
            func @rec(%n) {
            entry:
              %l = load %n
              %r = call @rec(%l)
              ret %r
            }
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              store %h, %p
              %x = call @rec(%p)
              ret
            }
            "#,
        )
        .unwrap();
        let base =
            analyze_with_config(&prog, AndersenConfig { scc_interval: None, ..Default::default() });
        let scc = analyze_with_config(
            &prog,
            AndersenConfig { scc_interval: Some(1), ..Default::default() },
        );
        for (v, _) in prog.values.iter_enumerated() {
            assert_eq!(
                base.value_pts(v).iter().collect::<Vec<_>>(),
                scc.value_pts(v).iter().collect::<Vec<_>>(),
                "mismatch for {:?}",
                v
            );
        }
        for (o, _) in prog.objects.iter_enumerated() {
            assert_eq!(
                base.object_pts(o).iter().collect::<Vec<_>>(),
                scc.object_pts(o).iter().collect::<Vec<_>>()
            );
        }
    }

    /// Asserts that `a` and `b` agree on every value/object points-to set
    /// and on the (sorted) call-graph edge set.
    fn assert_same_result(prog: &Program, a: &AndersenResult, b: &AndersenResult, label: &str) {
        for (v, _) in prog.values.iter_enumerated() {
            assert_eq!(
                a.value_pts(v).iter().collect::<Vec<_>>(),
                b.value_pts(v).iter().collect::<Vec<_>>(),
                "{label}: value pts mismatch for {v:?}"
            );
        }
        for (o, _) in prog.objects.iter_enumerated() {
            assert_eq!(
                a.object_pts(o).iter().collect::<Vec<_>>(),
                b.object_pts(o).iter().collect::<Vec<_>>(),
                "{label}: object pts mismatch for {o:?}"
            );
        }
        let edges = |r: &AndersenResult| {
            let mut e: Vec<_> = r.callgraph.edges().collect();
            e.sort();
            e
        };
        assert_eq!(edges(a), edges(b), "{label}: callgraph mismatch");
    }

    #[test]
    fn wave_mode_matches_sequential_at_any_job_count() {
        // Exercises loads, stores, geps, indirect calls, recursion
        // (copy cycles), and multi-target function pointers.
        let prog = parse_program(
            r#"
            global @table
            func @rec(%n) {
            entry:
              %l = load %n
              %r = call @rec(%l)
              ret %r
            }
            func @g(%y) {
            entry:
              %h = alloc heap GH
              ret %h
            }
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              store %h, %p
              %x = call @rec(%p)
              %s = alloc stack S fields 3
              %f1 = gep %s, 1
              store %h, %f1
              %fp0 = funaddr @rec
              store %fp0, @table
              %fp1 = funaddr @g
              store %fp1, @table
              %fp = load @table
              %ic = icall %fp(%p)
              ret
            }
            "#,
        )
        .unwrap();
        for scc_interval in [Some(1), Some(4), None] {
            let seq = analyze_with_config(&prog, AndersenConfig { scc_interval, jobs: 1 });
            for jobs in [2usize, 8] {
                let wave = analyze_with_config(&prog, AndersenConfig { scc_interval, jobs });
                assert_same_result(
                    &prog,
                    &seq,
                    &wave,
                    &format!("scc={scc_interval:?} jobs={jobs}"),
                );
                assert!(wave.stats.waves > 0);
                assert_eq!(wave.stats.par_workers, jobs);
            }
        }
    }

    #[test]
    fn region_seeded_waves_match_cost_only_sharding_exactly() {
        let prog = parse_program(
            r#"
            global @table
            func @rec(%n) {
            entry:
              %l = load %n
              %r = call @rec(%l)
              ret %r
            }
            func @g(%y) {
            entry:
              %h = alloc heap GH
              ret %h
            }
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              store %h, %p
              %x = call @rec(%p)
              %s = alloc stack S fields 3
              %f1 = gep %s, 1
              store %h, %f1
              %q = alloc stack B
              %h2 = alloc heap H2
              store %h2, %q
              %y2 = load %q
              %fp0 = funaddr @rec
              store %fp0, @table
              %fp1 = funaddr @g
              store %fp1, @table
              %fp = load @table
              %ic = icall %fp(%p)
              ret
            }
            "#,
        )
        .unwrap();
        let regions = crate::unify::analyze_unify(&prog).alias_regions(prog.objects.len());
        for jobs in [2usize, 4, 8] {
            let cfg = AndersenConfig::with_jobs(jobs);
            let base = analyze_with_config(&prog, cfg);
            let seeded = analyze_with_config_regions(&prog, cfg, &regions);
            assert_same_result(&prog, &base, &seeded, &format!("jobs={jobs}"));
            // Region seeding is a scheduling hint: the internal run must
            // match exactly, not just the fixpoint.
            assert_eq!(base.stats.waves, seeded.stats.waves);
            assert_eq!(base.stats.pops, seeded.stats.pops);
            assert_eq!(base.stats.propagations, seeded.stats.propagations);
            assert!(!base.stats.region_seeded);
            assert!(seeded.stats.region_seeded);
        }
    }

    #[test]
    fn wave_mode_is_bit_identical_across_job_counts() {
        let prog = parse_program(
            r#"
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %pp = alloc stack PP
              %p = alloc stack P
              %h = alloc heap H
              store %p, %pp
              store %h, %p
              %p2 = load %pp
              %r = load %p2
              %c = call @id(%r)
              ret
            }
            "#,
        )
        .unwrap();
        let base = analyze_with_config(&prog, AndersenConfig::with_jobs(2));
        for jobs in [3usize, 8] {
            let other = analyze_with_config(&prog, AndersenConfig::with_jobs(jobs));
            // The wave schedule is thread-count independent, so even the
            // internal run (merges, pushes, counters) matches exactly.
            assert_same_result(&prog, &base, &other, &format!("jobs={jobs}"));
            assert_eq!(base.stats.waves, other.stats.waves);
            assert_eq!(base.stats.pops, other.stats.pops);
            assert_eq!(base.stats.propagations, other.stats.propagations);
            assert_eq!(base.stats.nodes_collapsed, other.stats.nodes_collapsed);
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn value(prog: &Program, name: &str) -> ValueId {
        prog.values.iter_enumerated().find(|(_, v)| v.name == name).map(|(id, _)| id).unwrap()
    }

    fn pts_names(prog: &Program, s: &PointsToSet<ObjId>) -> Vec<String> {
        let mut v: Vec<String> = s.iter().map(|o| prog.objects[o].name.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn phi_unions_all_inputs() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %a = alloc heap A
              %b = alloc heap B
              %c = alloc heap C
              br l, r
            l:
              goto j
            r:
              goto j
            j:
              %m = phi %a, %b, %c
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "m"))), vec!["A", "B", "C"]);
    }

    #[test]
    fn gep_offset_zero_is_the_base() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %s = alloc stack S fields 3
              %f0 = gep %s, 0
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(
            res.value_pts(value(&prog, "f0")).iter().collect::<Vec<_>>(),
            res.value_pts(value(&prog, "s")).iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn gep_offset_clamps_to_field_count() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %s = alloc stack S fields 3
              %last = gep %s, 2
              %over = gep %s, 99
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(
            pts_names(&prog, res.value_pts(value(&prog, "over"))),
            pts_names(&prog, res.value_pts(value(&prog, "last")))
        );
    }

    #[test]
    fn function_pointers_flow_through_fields() {
        let prog = parse_program(
            r#"
            func @target(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %obj = alloc heap VTable fields 2
              %slot = gep %obj, 1
              %fp = funaddr @target
              store %fp, %slot
              %loaded = load %slot
              %arg = alloc heap Arg
              %r = icall %loaded(%arg)
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        let target = prog.function_by_name("target").unwrap();
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, vsfs_ir::InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(res.callgraph.callees(call), &[target]);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "r"))), vec!["Arg"]);
    }

    #[test]
    fn total_pts_entries_counts_representatives_once() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %a = alloc heap A
              %b = copy %a
              %c = copy %b
              ret
            }
            "#,
        )
        .unwrap();
        // With aggressive SCC the copies may merge; entries must not be
        // double-counted either way.
        let res = analyze_with_config(
            &prog,
            AndersenConfig { scc_interval: Some(1), ..Default::default() },
        );
        assert!(res.total_pts_entries() >= 1);
        assert!(res.total_pts_entries() <= 3);
    }

    #[test]
    fn unreachable_code_is_still_analyzed_flow_insensitively() {
        let prog = parse_program(
            r#"
            func @never_called() {
            entry:
              %h = alloc heap Hidden
              %p = alloc stack Slot
              store %h, %p
              %x = load %p
              ret
            }
            func @main() {
            entry:
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze(&prog);
        assert_eq!(pts_names(&prog, res.value_pts(value(&prog, "x"))), vec!["Hidden"]);
    }
}

//! Unification-based (Steensgaard-style) pointer analysis — the
//! cheapest tier of the precision ladder.
//!
//! The solver runs in two phases over the same [`Pag`] the inclusion
//! solver consumes:
//!
//! 1. **Unification** — a weighted quick-union with path compression
//!    over *equivalence class representatives* (ECRs). Every PAG node
//!    starts as its own ECR; each ECR lazily owns at most one *pointee*
//!    ECR. The classic Steensgaard rules collapse the graph:
//!    `x = y` joins `x` with `y`, `x = *p` joins `x` with `ptd(p)`,
//!    `*p = y` joins `y` with `ptd(p)`, and `x = &o` joins `o`'s node
//!    into `ptd(x)`. Joins of ECRs that both own pointees join the
//!    pointees recursively (iteratively, via an explicit stack), so
//!    phase 1 is near-linear in the constraint count.
//! 2. **Quotient fixpoint** — a small sequential Andersen-style
//!    difference-propagation pass over the ECR *quotient* graph (one
//!    node per class). Phase 1 collapsed almost every copy chain, so the
//!    quotient is tiny and the fixpoint converges in a handful of pops.
//!
//! Phase 2 re-processes **all** constraints at class granularity, which
//! gives the central invariant for free: the result is the least
//! inclusion solution of the *collapsed* constraint graph, and
//! collapsing only ever adds constraints, so for every query
//!
//! ```text
//! unify pts ⊇ andersen pts ⊇ flow-sensitive pts
//! ```
//!
//! holds structurally — phase 1 can only trade precision for speed,
//! never soundness. The `ci.sh` soundness-chain gate checks this on
//! random workloads and the checker corpus.
//!
//! # No-oversharing refinements
//!
//! With [`UnifyConfig::no_oversharing`] (the default, the `unify` tier)
//! two refinements in the spirit of Kuderski et al. ("Unification-based
//! Pointer Analysis without Oversharing", PAPERS.md) keep the classic
//! failure modes of Steensgaard's analysis in check:
//!
//! * **Directional call-site copies** — parameter/return bindings of
//!   direct calls are *not* unified; they stay inclusion edges resolved
//!   by phase 2. One imprecise caller no longer pollutes every other
//!   caller of the same function.
//! * **Address-taken singletons** — an object whose address is taken at
//!   exactly one site keeps its own contents class: the object node is
//!   not joined into the pointee class, so two unrelated allocations
//!   stored through the same pointer class do not share their contents.
//!   Phase 2's load/store processing propagates their contents
//!   directionally instead.
//!
//! Disabling the flag yields the classic full-oversharing analysis (the
//! `steensgaard` tier), giving the four-tier precision chain
//! `steensgaard ⊇ unify ⊇ andersen ⊇ flow-sensitive`.
//!
//! # Alias regions
//!
//! [`UnifyResult::alias_regions`] derives *provably disjoint alias
//! regions* from the solution: objects co-occurring in any class's
//! points-to set are placed in one region. Every points-to set any
//! sound tier computes is a subset of a unify set and therefore lies
//! entirely inside one region — which is what lets the regions seed
//! `--jobs` sharding for the Andersen wave schedule and object-
//! partitioned versioning without any cross-shard communication.

use crate::callgraph::CallGraph;
use crate::pag::{CallSiteId, Constraint, Pag};
use std::collections::HashSet;
use std::time::Instant;
use vsfs_adt::govern::{Governor, Outcome};
use vsfs_adt::{FifoWorklist, FlatReader, PointsToSet, PtsId, PtsStore, PtsStoreStats};
use vsfs_ir::{ObjId, Program, ValueId};

/// The empty-set id of the solver's store.
const EMPTY: PtsId = PtsStore::<ObjId>::EMPTY;

/// Absent pointee marker in the ECR table.
const NO_PTD: u32 = u32::MAX;

/// Tuning knobs for the unification solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifyConfig {
    /// Apply the no-oversharing refinements (directional call-site
    /// copies, content-isolated address-taken singletons). `true` is
    /// the `unify` tier; `false` is classic Steensgaard oversharing
    /// (the `steensgaard` tier).
    pub no_oversharing: bool,
}

impl Default for UnifyConfig {
    fn default() -> Self {
        UnifyConfig { no_oversharing: true }
    }
}

impl UnifyConfig {
    /// The classic full-oversharing configuration.
    pub fn steensgaard() -> Self {
        UnifyConfig { no_oversharing: false }
    }

    /// The tier name this configuration computes.
    pub fn tier_name(self) -> &'static str {
        if self.no_oversharing {
            "unify"
        } else {
            "steensgaard"
        }
    }
}

/// Counters describing a unification run.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnifyStats {
    /// Phase-1 union operations that actually merged two classes.
    pub joins: usize,
    /// Placeholder pointee ECRs allocated in phase 1.
    pub placeholder_ecrs: usize,
    /// Distinct classes over PAG nodes after phase 1.
    pub classes: usize,
    /// Objects kept content-isolated by the singleton refinement.
    pub singleton_objects: usize,
    /// Call-binding copies kept directional by the refinement.
    pub directional_edges: usize,
    /// Phase-2 worklist pops.
    pub pops: usize,
    /// Phase-2 set-union propagations along quotient copy edges.
    pub propagations: usize,
    /// Copy edges in the final quotient graph.
    pub copy_edges: usize,
    /// `(call site, callee)` pairs resolved on the fly.
    pub indirect_resolutions: usize,
    /// Wall-clock seconds for the whole solve.
    pub seconds: f64,
    /// Hash-consed points-to store counters.
    pub store: PtsStoreStats,
}

/// The result of the unification analysis. Points-to sets are stored
/// once per equivalence class; nodes map to classes through a dense
/// `class_of` table.
#[derive(Debug, Clone)]
pub struct UnifyResult {
    /// PAG node index → dense class id.
    class_of: Vec<u32>,
    store: PtsStore<ObjId>,
    /// Flat read-back cache for the per-class sets the API lends out.
    flat: FlatReader<ObjId>,
    /// Per-class points-to set.
    pts: Vec<PtsId>,
    value_count: usize,
    /// The configuration the run used.
    pub config: UnifyConfig,
    /// The (over-approximate) call graph.
    pub callgraph: CallGraph,
    /// Run counters.
    pub stats: UnifyStats,
}

impl UnifyResult {
    /// The points-to set of top-level value `v`.
    pub fn value_pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.flat.get(self.pts[self.class_of[v.index()] as usize])
    }

    /// The (flow-insensitive) points-to set stored in object `o`.
    pub fn object_pts(&self, o: ObjId) -> &PointsToSet<ObjId> {
        self.flat.get(self.pts[self.class_of[self.value_count + o.index()] as usize])
    }

    /// Number of equivalence classes over PAG nodes.
    pub fn class_count(&self) -> usize {
        self.pts.len()
    }

    /// Derives the disjoint alias regions of the solution (see the
    /// module docs). `object_count` must be `prog.objects.len()` for
    /// the analysed program.
    pub fn alias_regions(&self, object_count: usize) -> AliasRegions {
        // Union-find over objects: co-occurrence in any class's set
        // merges. Iterating classes in id order keeps region numbering
        // deterministic.
        let mut parent: Vec<u32> = (0..object_count as u32).collect();
        fn find(parent: &mut [u32], mut n: usize) -> usize {
            while parent[n] as usize != n {
                parent[n] = parent[parent[n] as usize];
                n = parent[n] as usize;
            }
            n
        }
        let mut seen = vec![false; object_count];
        for &id in &self.pts {
            let mut anchor: Option<usize> = None;
            for o in self.store.iter_set(id) {
                seen[o.index()] = true;
                match anchor {
                    None => anchor = Some(find(&mut parent, o.index())),
                    Some(a) => {
                        let r = find(&mut parent, o.index());
                        if r != a {
                            // Keep the smaller root so region anchors
                            // are stable in ascending object order.
                            let (lo, hi) = if r < a { (r, a) } else { (a, r) };
                            parent[hi] = lo as u32;
                            anchor = Some(lo);
                        }
                    }
                }
            }
        }
        // Compress roots of pointed-to objects into dense region ids in
        // ascending root order.
        let mut region_of_object = vec![AliasRegions::NONE; object_count];
        let mut next = 0u32;
        let mut region_of_root = vec![AliasRegions::NONE; object_count];
        for o in 0..object_count {
            if !seen[o] {
                continue;
            }
            let r = find(&mut parent, o);
            if region_of_root[r] == AliasRegions::NONE {
                region_of_root[r] = next;
                next += 1;
            }
            region_of_object[o] = region_of_root[r];
        }
        // Every node's set lies in exactly one region (or none).
        let region_of_node = self
            .class_of
            .iter()
            .map(|&c| {
                self.store
                    .iter_set(self.pts[c as usize])
                    .next()
                    .map_or(AliasRegions::NONE, |o| region_of_object[o.index()])
            })
            .collect();
        AliasRegions { region_of_object, region_of_node, region_count: next as usize }
    }
}

/// Disjoint alias regions derived from a unification solution: two
/// objects share a region iff some pointer may point to both (under
/// the coarsest sound tier), so any sound analysis's points-to set —
/// and therefore any set union a parallel schedule performs — stays
/// within one region.
#[derive(Debug, Clone)]
pub struct AliasRegions {
    /// Region per object; [`AliasRegions::NONE`] if nothing points to it.
    pub region_of_object: Vec<u32>,
    /// Region of each PAG node's points-to set; [`AliasRegions::NONE`]
    /// for nodes with empty sets (cost-only scheduling applies there).
    pub region_of_node: Vec<u32>,
    /// Number of distinct regions.
    pub region_count: usize,
}

impl AliasRegions {
    /// Marker for "no region": empty set / never pointed to.
    pub const NONE: u32 = u32::MAX;
}

/// Runs the unification analysis with the default (no-oversharing)
/// configuration.
pub fn analyze_unify(prog: &Program) -> UnifyResult {
    analyze_unify_with_config(prog, UnifyConfig::default())
}

/// Runs the unification analysis with an explicit configuration.
pub fn analyze_unify_with_config(prog: &Program, config: UnifyConfig) -> UnifyResult {
    UnifySolver::new(prog, config, None).run()
}

/// Runs the unification analysis under a [`Governor`]: phase 1
/// checkpoints per constraint, phase 2 per pop.
///
/// Like the governed Andersen entry point, **a degraded unification
/// result is a partial fixpoint and unsound to fall back to** — and
/// unification is the *last* sound rung of the degradation ladder, so
/// callers must treat `Degraded` here as a hard error (exit 1). The
/// ladder's fallback path therefore runs this solver ungoverned: its
/// cost is a small fraction of the Andersen stage that already tripped,
/// and an answer of last resort must actually be produced.
pub fn analyze_unify_governed(
    prog: &Program,
    config: UnifyConfig,
    governor: &Governor,
) -> Outcome<UnifyResult> {
    let result = UnifySolver::new(prog, config, Some(governor)).run();
    Outcome { result, completion: governor.completion() }
}

/// Phase-1 union-find over ECRs. Indices `0..pag.node_count()` are PAG
/// nodes; placeholder pointee ECRs are appended past them.
struct Ecrs {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Pointee ECR per root; `NO_PTD` if not yet demanded.
    ptd: Vec<u32>,
    joins: usize,
    placeholders: usize,
}

impl Ecrs {
    fn new(n: usize) -> Ecrs {
        Ecrs {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            ptd: vec![NO_PTD; n],
            joins: 0,
            placeholders: 0,
        }
    }

    fn find(&mut self, n: u32) -> u32 {
        let mut root = n;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = n;
        while self.parent[cur as usize] != cur {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// The pointee ECR of `e`'s class, allocating a placeholder if the
    /// class does not own one yet.
    fn pointee(&mut self, e: u32) -> u32 {
        let r = self.find(e) as usize;
        if self.ptd[r] == NO_PTD {
            let id = self.parent.len() as u32;
            self.parent.push(id);
            self.rank.push(0);
            self.ptd.push(NO_PTD);
            self.placeholders += 1;
            self.ptd[r] = id;
            id
        } else {
            self.find(self.ptd[r])
        }
    }

    /// Unifies the classes of `a` and `b`; joins owned pointees
    /// recursively (via an explicit stack — chains of `**p` never
    /// recurse on the call stack).
    fn join(&mut self, a: u32, b: u32) {
        let mut stack = vec![(a, b)];
        while let Some((a, b)) = stack.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            self.joins += 1;
            let (keep, gone) =
                if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
            if self.rank[keep as usize] == self.rank[gone as usize] {
                self.rank[keep as usize] += 1;
            }
            self.parent[gone as usize] = keep;
            match (self.ptd[keep as usize], self.ptd[gone as usize]) {
                (_, NO_PTD) => {}
                (NO_PTD, p) => self.ptd[keep as usize] = p,
                (pk, pg) => stack.push((pk, pg)),
            }
        }
    }
}

struct UnifySolver<'p> {
    prog: &'p Program,
    pag: Pag,
    config: UnifyConfig,
    gov: Option<&'p Governor>,
    stats: UnifyStats,
}

impl<'p> UnifySolver<'p> {
    fn new(prog: &'p Program, config: UnifyConfig, gov: Option<&'p Governor>) -> Self {
        UnifySolver { prog, pag: Pag::build(prog), config, gov, stats: UnifyStats::default() }
    }

    fn run(mut self) -> UnifyResult {
        let start = Instant::now();
        let class_of = self.unify();
        let class_count = class_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        self.stats.classes = class_count;
        let mut result = self.quotient_fixpoint(&class_of, class_count);
        result.stats.seconds = start.elapsed().as_secs_f64();
        result
    }

    /// Phase 1: returns the dense `PAG node → class` table.
    fn unify(&mut self) -> Vec<u32> {
        let n = self.pag.node_count();
        let mut ecrs = Ecrs::new(n);
        let refined = self.config.no_oversharing;

        // Address-taken singletons: objects whose address is taken at
        // exactly one site keep their own contents class.
        let mut addr_sites = vec![0u32; self.prog.objects.len()];
        for c in &self.pag.constraints {
            if let Constraint::Addr { obj, .. } = c {
                addr_sites[obj.index()] = addr_sites[obj.index()].saturating_add(1);
            }
        }

        // Call-binding copies stay directional under the refinement:
        // re-derive the binding pairs of every direct call and skip
        // their unification (phase 2 processes all copies anyway).
        let mut directional: HashSet<(u32, u32)> = HashSet::new();
        if refined {
            for &(call, callee) in &self.pag.direct_calls {
                let (args, dst) = match &self.prog.insts[call].kind {
                    vsfs_ir::InstKind::Call { args, dst, .. } => (args.clone(), *dst),
                    _ => continue,
                };
                for c in self.pag.binding_constraints(self.prog, callee, &args, dst) {
                    if let Constraint::Copy { src, dst } = c {
                        directional.insert((src.raw(), dst.raw()));
                    }
                }
            }
        }

        for k in 0..self.pag.constraints.len() {
            if self.gov.is_some_and(|g| g.check(1).is_err()) {
                break;
            }
            match self.pag.constraints[k] {
                Constraint::Addr { dst, obj } => {
                    if refined && addr_sites[obj.index()] == 1 {
                        self.stats.singleton_objects += 1;
                        continue;
                    }
                    let p = ecrs.pointee(dst.raw());
                    let on = self.pag.object_node(obj).raw();
                    ecrs.join(p, on);
                }
                Constraint::Copy { src, dst } => {
                    if refined && directional.contains(&(src.raw(), dst.raw())) {
                        self.stats.directional_edges += 1;
                        continue;
                    }
                    ecrs.join(src.raw(), dst.raw());
                }
                Constraint::Load { addr, dst } => {
                    let p = ecrs.pointee(addr.raw());
                    ecrs.join(p, dst.raw());
                }
                Constraint::Store { val, addr } => {
                    let p = ecrs.pointee(addr.raw());
                    ecrs.join(p, val.raw());
                }
                Constraint::Gep { base, dst, .. } => {
                    // Classic mode overshares fields with their parent
                    // class; the refinement leaves geps to phase 2.
                    if !refined {
                        let a = ecrs.pointee(base.raw());
                        let b = ecrs.pointee(dst.raw());
                        ecrs.join(a, b);
                    }
                }
            }
        }
        self.stats.joins = ecrs.joins;
        self.stats.placeholder_ecrs = ecrs.placeholders;

        // Compress PAG-node roots into dense class ids, ascending.
        let mut class_of = vec![0u32; n];
        let mut id_of_root = vec![NO_PTD; ecrs.parent.len()];
        let mut next = 0u32;
        for (i, c) in class_of.iter_mut().enumerate() {
            let r = ecrs.find(i as u32) as usize;
            if id_of_root[r] == NO_PTD {
                id_of_root[r] = next;
                next += 1;
            }
            *c = id_of_root[r];
        }
        class_of
    }

    /// Phase 2: sequential Andersen-style difference propagation over
    /// the quotient graph. Re-processing *every* constraint here (most
    /// are now self-loops) is what makes the result the least solution
    /// of the collapsed system — a guaranteed superset of Andersen's.
    fn quotient_fixpoint(self, class_of: &[u32], classes: usize) -> UnifyResult {
        let UnifySolver { prog, pag, config, gov, mut stats } = self;
        let cls = |n: u32| class_of[n as usize] as usize;
        let mut store: PtsStore<ObjId> = PtsStore::new();
        let mut pts = vec![EMPTY; classes];
        let mut prop = vec![EMPTY; classes];
        let mut copy_succs: Vec<Vec<u32>> = vec![Vec::new(); classes];
        let mut loads: Vec<Vec<u32>> = vec![Vec::new(); classes];
        let mut stores: Vec<Vec<u32>> = vec![Vec::new(); classes];
        let mut geps: Vec<Vec<(u32, u32)>> = vec![Vec::new(); classes];
        let mut icalls: Vec<Vec<CallSiteId>> = vec![Vec::new(); classes];
        let mut edge_seen: HashSet<(u32, u32)> = HashSet::new();
        let mut resolved: HashSet<(CallSiteId, vsfs_ir::FuncId)> = HashSet::new();
        let mut callgraph = CallGraph::new();
        let mut worklist: FifoWorklist<usize> = FifoWorklist::new(classes);

        let mut add_edge = |src: usize,
                            dst: usize,
                            copy_succs: &mut Vec<Vec<u32>>,
                            store: &mut PtsStore<ObjId>,
                            pts: &mut Vec<PtsId>,
                            prop: &[PtsId],
                            worklist: &mut FifoWorklist<usize>,
                            stats: &mut UnifyStats| {
            if src == dst || !edge_seen.insert((src as u32, dst as u32)) {
                return;
            }
            copy_succs[src].push(dst as u32);
            if prop[src] != EMPTY {
                stats.propagations += 1;
                let new = store.union(pts[dst], prop[src]);
                if new != pts[dst] {
                    pts[dst] = new;
                    worklist.push(dst);
                }
            }
        };

        for c in &pag.constraints {
            match *c {
                Constraint::Addr { dst, obj } => {
                    if prog.objects[obj].is_function() {
                        if let Some(f) = prog.object_as_function(obj) {
                            callgraph.mark_address_taken(f);
                        }
                    }
                    let d = cls(dst.raw());
                    let new = store.insert(pts[d], obj);
                    if new != pts[d] {
                        pts[d] = new;
                        worklist.push(d);
                    }
                }
                Constraint::Copy { src, dst } => {
                    add_edge(
                        cls(src.raw()),
                        cls(dst.raw()),
                        &mut copy_succs,
                        &mut store,
                        &mut pts,
                        &prop,
                        &mut worklist,
                        &mut stats,
                    );
                }
                Constraint::Load { addr, dst } => {
                    loads[cls(addr.raw())].push(cls(dst.raw()) as u32);
                }
                Constraint::Store { val, addr } => {
                    stores[cls(addr.raw())].push(cls(val.raw()) as u32);
                }
                Constraint::Gep { base, offset, dst } => {
                    geps[cls(base.raw())].push((offset, cls(dst.raw()) as u32));
                }
            }
        }
        for (i, site) in pag.call_sites.iter().enumerate() {
            icalls[cls(pag.value_node(site.fp).raw())].push(CallSiteId::new(i as u32));
        }
        // Collapsing dsts to classes leaves heavy duplication inside
        // each site list (thousands of loads through one pointer class
        // often target one destination class); dedup once so the
        // per-delta loops pay for distinct class pairs only.
        for list in loads.iter_mut().chain(stores.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        for list in &mut geps {
            list.sort_unstable();
            list.dedup();
        }

        let mut delta_objs: Vec<ObjId> = Vec::new();
        let mut delta_cls: Vec<usize> = Vec::new();
        let mut cls_epoch: Vec<u32> = vec![0; classes];
        let mut epoch = 0u32;
        while let Some(n) = worklist.pop() {
            if gov.is_some_and(|g| g.check(1).is_err()) {
                break;
            }
            stats.pops += 1;
            let delta = store.subtract(pts[n], prop[n]);
            if delta == EMPTY {
                continue;
            }
            prop[n] = store.union(prop[n], delta);
            // Load/store edges depend only on the *class* of the new
            // object, so the delta is deduped to distinct object
            // classes first (epoch-stamped, no per-pop clearing); the
            // per-object loops below then only pay for geps (fields
            // are per object) and call resolution (callees are per
            // object).
            delta_objs.clear();
            delta_objs.extend(store.iter_set(delta));
            if !loads[n].is_empty() || !stores[n].is_empty() {
                epoch += 1;
                delta_cls.clear();
                for &o in &delta_objs {
                    let c = cls(pag.object_node(o).raw());
                    if cls_epoch[c] != epoch {
                        cls_epoch[c] = epoch;
                        delta_cls.push(c);
                    }
                }
                for &obj_cls in &delta_cls {
                    for &dst in &loads[n] {
                        add_edge(
                            obj_cls,
                            dst as usize,
                            &mut copy_succs,
                            &mut store,
                            &mut pts,
                            &prop,
                            &mut worklist,
                            &mut stats,
                        );
                    }
                    for &val in &stores[n] {
                        add_edge(
                            val as usize,
                            obj_cls,
                            &mut copy_succs,
                            &mut store,
                            &mut pts,
                            &prop,
                            &mut worklist,
                            &mut stats,
                        );
                    }
                }
            }
            for &o in &delta_objs {
                for &(offset, dst) in &geps[n] {
                    let d = dst as usize;
                    let f = prog.field_object(o, offset);
                    let new = store.insert(pts[d], f);
                    if new != pts[d] {
                        pts[d] = new;
                        worklist.push(d);
                    }
                }
                if !icalls[n].is_empty() {
                    if let Some(callee) = prog.object_as_function(o) {
                        for &cs in &icalls[n] {
                            if !resolved.insert((cs, callee)) {
                                continue;
                            }
                            stats.indirect_resolutions += 1;
                            let site = pag.call_sites[cs.index()].clone();
                            callgraph.add_edge(site.inst, callee);
                            for b in pag.binding_constraints(prog, callee, &site.args, site.dst) {
                                if let Constraint::Copy { src, dst } = b {
                                    add_edge(
                                        cls(src.raw()),
                                        cls(dst.raw()),
                                        &mut copy_succs,
                                        &mut store,
                                        &mut pts,
                                        &prop,
                                        &mut worklist,
                                        &mut stats,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            // Propagate along quotient copy edges.
            for &succ in &copy_succs[n] {
                let s = succ as usize;
                if s == n {
                    continue;
                }
                stats.propagations += 1;
                let new = store.union(pts[s], delta);
                if new != pts[s] {
                    pts[s] = new;
                    worklist.push(s);
                }
            }
        }

        for &(call, callee) in &pag.direct_calls {
            callgraph.add_edge(call, callee);
        }
        callgraph.canonicalize();
        stats.copy_edges = copy_succs.iter().map(Vec::len).sum();
        stats.store = store.stats();
        let flat = FlatReader::new(&store, pts.iter().copied());
        UnifyResult {
            class_of: class_of.to_vec(),
            store,
            flat,
            pts,
            value_count: prog.values.len(),
            config,
            callgraph,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::analyze;
    use vsfs_ir::parse_program;

    fn value(prog: &Program, name: &str) -> ValueId {
        prog.values
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    fn pts_names(prog: &Program, s: &PointsToSet<ObjId>) -> Vec<String> {
        let mut v: Vec<String> = s.iter().map(|o| prog.objects[o].name.clone()).collect();
        v.sort();
        v
    }

    /// Asserts the precision chain on every value and object:
    /// steensgaard ⊇ unify ⊇ andersen.
    fn assert_chain(src: &str) {
        let prog = parse_program(src).unwrap();
        let coarse = analyze_unify_with_config(&prog, UnifyConfig::steensgaard());
        let refined = analyze_unify(&prog);
        let ander = analyze(&prog);
        for (v, _) in prog.values.iter_enumerated() {
            let a = ander.value_pts(v);
            let u = refined.value_pts(v);
            let s = coarse.value_pts(v);
            for o in a.iter() {
                assert!(u.contains(o), "unify misses {o:?} for value {v:?}");
            }
            for o in u.iter() {
                assert!(s.contains(o), "steensgaard misses {o:?} for value {v:?}");
            }
        }
        for (o, _) in prog.objects.iter_enumerated() {
            let a = ander.object_pts(o);
            let u = refined.object_pts(o);
            let s = coarse.object_pts(o);
            for x in a.iter() {
                assert!(u.contains(x), "unify misses {x:?} for object {o:?}");
            }
            for x in u.iter() {
                assert!(s.contains(x), "steensgaard misses {x:?} for object {o:?}");
            }
        }
        // Call graphs: every Andersen edge appears in both unify tiers.
        let edges = |cg: &CallGraph| {
            let mut e: Vec<_> = cg.edges().collect();
            e.sort();
            e
        };
        for e in edges(&ander.callgraph) {
            assert!(edges(&refined.callgraph).contains(&e), "unify misses call edge {e:?}");
            assert!(edges(&coarse.callgraph).contains(&e), "steensgaard misses call edge {e:?}");
        }
    }

    #[test]
    fn store_load_roundtrip_is_sound() {
        assert_chain(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        );
    }

    #[test]
    fn multi_level_chain_is_sound() {
        assert_chain(
            r#"
            func @main() {
            entry:
              %pp = alloc stack PP
              %p = alloc stack P
              %h = alloc heap H
              store %p, %pp
              store %h, %p
              %p2 = load %pp
              %r = load %p2
              ret
            }
            "#,
        );
    }

    #[test]
    fn calls_fields_and_icalls_are_sound() {
        assert_chain(
            r#"
            global @table
            func @rec(%n) {
            entry:
              %l = load %n
              %r = call @rec(%l)
              ret %r
            }
            func @g(%y) {
            entry:
              %h = alloc heap GH
              ret %h
            }
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              store %h, %p
              %x = call @rec(%p)
              %s = alloc stack S fields 3
              %f1 = gep %s, 1
              store %h, %f1
              %fp0 = funaddr @rec
              store %fp0, @table
              %fp1 = funaddr @g
              store %fp1, @table
              %fp = load @table
              %ic = icall %fp(%p)
              ret
            }
            "#,
        );
    }

    #[test]
    fn unification_overshares_where_andersen_does_not() {
        // Two pointers stored into the same cell class: Steensgaard
        // merges their pointees; Andersen keeps x pointing only at H1.
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc stack B
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              store %h1, %p
              store %h2, %q
              %m = phi %p, %q
              %x = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let coarse = analyze_unify_with_config(&prog, UnifyConfig::steensgaard());
        let x = value(&prog, "x");
        // The phi merges p and q's pointee classes, so A and B share a
        // contents class and x sees both heaps.
        assert_eq!(pts_names(&prog, coarse.value_pts(x)), vec!["H1", "H2"]);
        let ander = analyze(&prog);
        assert_eq!(pts_names(&prog, ander.value_pts(x)), vec!["H1"]);
    }

    #[test]
    fn directional_call_copies_curb_oversharing() {
        // Two callers pass distinct objects to @id. Classic
        // unification merges both argument classes through the shared
        // parameter; the refinement keeps the bindings directional, so
        // the callers' own views stay separate.
        let src = r#"
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %a = alloc heap A
              %b = alloc heap B
              %pa = alloc stack PA
              %pb = alloc stack PB
              store %a, %pa
              store %b, %pb
              %r1 = call @id(%a)
              %r2 = call @id(%b)
              %la = load %pa
              ret
            }
            "#;
        let prog = parse_program(src).unwrap();
        let refined = analyze_unify(&prog);
        let coarse = analyze_unify_with_config(&prog, UnifyConfig::steensgaard());
        // Both tiers must see the callee results soundly.
        for res in [&refined, &coarse] {
            let r1 = pts_names(&prog, res.value_pts(value(&prog, "r1")));
            assert!(r1.contains(&"A".to_string()), "r1 misses A: {r1:?}");
        }
        // The refined tier keeps %a's class free of B.
        let a_refined = pts_names(&prog, refined.value_pts(value(&prog, "a")));
        assert_eq!(a_refined, vec!["A"], "refined tier overshared the argument class");
        assert!(refined.stats.directional_edges > 0);
        assert_chain(src);
    }

    #[test]
    fn singleton_refinement_keeps_contents_separate() {
        // p and q are unified through the phi, but their pointees A and
        // B are address-taken singletons: the refinement keeps the
        // *contents* of A and B in separate classes.
        let src = r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc stack B
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              store %h1, %p
              store %h2, %q
              %m = phi %p, %q
              %x = load %p
              ret
            }
            "#;
        let prog = parse_program(src).unwrap();
        let refined = analyze_unify(&prog);
        assert!(refined.stats.singleton_objects > 0);
        // Soundness: x still sees at least H1 (and, via the merged
        // pointer class, may see H2 — but A's own contents class was
        // not unified with B's).
        let x = pts_names(&prog, refined.value_pts(value(&prog, "x")));
        assert!(x.contains(&"H1".to_string()));
        assert_chain(src);
    }

    #[test]
    fn empty_program_has_no_classes_to_speak_of() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze_unify(&prog);
        for (v, _) in prog.values.iter_enumerated() {
            assert!(res.value_pts(v).is_empty());
        }
        let regions = res.alias_regions(prog.objects.len());
        assert_eq!(regions.region_count, 0);
    }

    #[test]
    fn alias_regions_are_disjoint_and_cover_every_set() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc stack B
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              %h3 = alloc heap H3
              store %h1, %p
              store %h2, %p
              store %h3, %q
              %x = load %p
              %y = load %q
              ret
            }
            "#,
        )
        .unwrap();
        let res = analyze_unify(&prog);
        let regions = res.alias_regions(prog.objects.len());
        assert!(regions.region_count >= 1);
        // Every class's set lies within exactly one region.
        for (v, _) in prog.values.iter_enumerated() {
            let set = res.value_pts(v);
            let rs: HashSet<u32> =
                set.iter().map(|o| regions.region_of_object[o.index()]).collect();
            assert!(rs.len() <= 1, "value {v:?} set spans regions {rs:?}");
            if let Some(&r) = rs.iter().next() {
                assert_ne!(r, AliasRegions::NONE);
                assert_eq!(regions.region_of_node[v.index()], r);
            }
        }
        // H1 and H2 co-occur in pts(p): same region. The Andersen sets
        // are subsets of unify sets, so they respect regions too.
        let ander = analyze(&prog);
        for (v, _) in prog.values.iter_enumerated() {
            let rs: HashSet<u32> =
                ander.value_pts(v).iter().map(|o| regions.region_of_object[o.index()]).collect();
            assert!(rs.len() <= 1, "andersen set for {v:?} spans regions {rs:?}");
        }
    }

    #[test]
    fn governed_run_completes_within_budget() {
        use vsfs_adt::govern::Budget;
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let g = Governor::new(Budget::default());
        let out = analyze_unify_governed(&prog, UnifyConfig::default(), &g);
        assert!(out.completion.is_complete());
        assert_eq!(pts_names(&prog, out.result.value_pts(value(&prog, "r"))), vec!["H"]);
    }

    #[test]
    fn tier_names_round_trip() {
        assert_eq!(UnifyConfig::default().tier_name(), "unify");
        assert_eq!(UnifyConfig::steensgaard().tier_name(), "steensgaard");
    }
}

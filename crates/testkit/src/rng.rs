//! A small deterministic PRNG for workload generation and property tests.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
//! Pseudorandom Number Generators", OOPSLA 2014): a 64-bit counter mixed
//! through two xor-shift-multiply rounds. It passes BigCrush, needs no
//! allocation, and — crucially for this workspace — is fully specified
//! here, so generated workloads are reproducible from a seed on any
//! platform with no external crates.

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from `range`. Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Forks an independent generator; the fork and `self` produce
    /// unrelated streams. Used to derive per-case seeds in the property
    /// harness.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Types a [`Rng`] can sample uniformly from a half-open range.
pub trait SampleRange: Copy {
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

/// Uniform integer in `[0, bound)` by Lemire's multiply-shift with a
/// rejection step — exactly uniform, no modulo bias.
fn bounded(rng: &mut Rng, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + bounded(rng, span) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, usize);

impl SampleRange for u64 {
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        range.start + bounded(rng, range.end - range.start)
    }
}

impl SampleRange for f64 {
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..5);
            assert!(w < 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_sampling_hits_every_value() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(17);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Deterministic fault plans for exercising degradation paths.
//!
//! A [`FaultPlan`] turns a SplitMix64 seed into one concrete
//! [`FaultSpec`] — a panic injected into the Nth parallel task, or a
//! virtual deadline / allocation-cap trip at the Nth governor
//! checkpoint. Because task indices and checkpoint numbers advance only
//! at deterministic points of the solvers (task index = input order,
//! checkpoints = sequential iteration boundaries), the same plan fires
//! at the same logical point for every `--jobs` count — which is what
//! lets the degradation tests demand bit-identical outcomes across
//! jobs 1/2/8 under a fixed seed.
//!
//! Injection sites are kept *small* (`at` in `1..=8`) so even modest
//! corpus programs reach them; a plan aimed past the end of a run
//! simply never fires and the run completes.

use crate::rng::Rng;
use vsfs_adt::govern::{FaultKind, FaultSpec};

/// Upper bound (exclusive) for seed-derived injection sites.
const MAX_SITE: u64 = 9;

/// A deterministic single-fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    spec: Option<FaultSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan { spec: None }
    }

    /// Panic inside the task with index `task`.
    pub fn panic_at_task(task: u64) -> Self {
        FaultPlan { spec: Some(FaultSpec { kind: FaultKind::PanicAtTask, at: task }) }
    }

    /// Virtual deadline trip at the `checkpoint`-th governor checkpoint
    /// (1-based).
    pub fn deadline_at_checkpoint(checkpoint: u64) -> Self {
        FaultPlan {
            spec: Some(FaultSpec { kind: FaultKind::DeadlineAtCheckpoint, at: checkpoint }),
        }
    }

    /// Virtual allocation-cap trip at the `checkpoint`-th governor
    /// checkpoint (1-based).
    pub fn mem_cap_at_checkpoint(checkpoint: u64) -> Self {
        FaultPlan { spec: Some(FaultSpec { kind: FaultKind::MemCapAtCheckpoint, at: checkpoint }) }
    }

    /// Derives a plan of the given kind from `seed`, using the same
    /// SplitMix64 streams as the property harness: the stream is keyed
    /// by `fault:<kind>` hashed FNV-1a, offset by the seed, so each kind
    /// samples an unrelated site for the same seed.
    pub fn from_seed(kind: FaultKind, seed: u64) -> Self {
        let stream_key = crate::hash_name(&format!("fault:{}", kind.code()));
        let mut rng = Rng::seed_from_u64(stream_key.wrapping_add(seed));
        let at = rng.gen_range(1u64..MAX_SITE);
        FaultPlan { spec: Some(FaultSpec { kind, at }) }
    }

    /// Parses a CLI-style plan description: `panic:SEED`,
    /// `deadline:SEED`, or `mem-cap:SEED` (decimal seed).
    pub fn parse(desc: &str) -> Result<Self, String> {
        let (kind_str, seed_str) = desc
            .split_once(':')
            .ok_or_else(|| format!("bad fault `{desc}`: expected KIND:SEED"))?;
        let kind = match kind_str {
            "panic" => FaultKind::PanicAtTask,
            "deadline" => FaultKind::DeadlineAtCheckpoint,
            "mem-cap" => FaultKind::MemCapAtCheckpoint,
            other => {
                return Err(format!(
                    "bad fault kind `{other}`: expected panic, deadline, or mem-cap"
                ))
            }
        };
        let seed: u64 = seed_str
            .parse()
            .map_err(|_| format!("bad fault seed `{seed_str}`: expected a decimal integer"))?;
        Ok(FaultPlan::from_seed(kind, seed))
    }

    /// The concrete fault to hand to
    /// `vsfs_adt::govern::Governor::with_fault`, if any.
    pub fn spec(&self) -> Option<FaultSpec> {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_small() {
        for kind in
            [FaultKind::PanicAtTask, FaultKind::DeadlineAtCheckpoint, FaultKind::MemCapAtCheckpoint]
        {
            for seed in 0..64u64 {
                let a = FaultPlan::from_seed(kind, seed);
                let b = FaultPlan::from_seed(kind, seed);
                assert_eq!(a, b);
                let spec = a.spec().unwrap();
                assert_eq!(spec.kind, kind);
                assert!((1..MAX_SITE).contains(&spec.at), "site {} out of range", spec.at);
            }
        }
    }

    #[test]
    fn parse_accepts_each_kind_and_rejects_garbage() {
        assert_eq!(
            FaultPlan::parse("panic:3").unwrap(),
            FaultPlan::from_seed(FaultKind::PanicAtTask, 3)
        );
        assert_eq!(
            FaultPlan::parse("deadline:1").unwrap(),
            FaultPlan::from_seed(FaultKind::DeadlineAtCheckpoint, 1)
        );
        assert_eq!(
            FaultPlan::parse("mem-cap:7").unwrap(),
            FaultPlan::from_seed(FaultKind::MemCapAtCheckpoint, 7)
        );
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("oops:3").is_err());
        assert!(FaultPlan::parse("panic:x").is_err());
    }
}

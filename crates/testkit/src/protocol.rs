//! Seeded protocol fuzzing for the analysis server (DESIGN.md §12).
//!
//! [`ProtocolFuzzer`] turns one SplitMix64 seed into a deterministic
//! session of hostile request lines: malformed JSON, truncated
//! requests, oversized lines, interleaved objects, raw binary garbage,
//! and — crucially — a sprinkling of *well-formed* requests, so a
//! session exercises the parser's recovery path, not just its rejection
//! path. The generator knows nothing about the server (the dependency
//! points the other way); drivers feed the lines to `handle_line`, a
//! spawned stdio process, or a Unix socket and assert the invariants:
//!
//! * the process never dies — every line gets exactly one response;
//! * every failure response carries a code from the server's closed
//!   error taxonomy;
//! * the same seed produces byte-identical sessions everywhere.
//!
//! Lines never contain `\n` (the protocol's framing byte): the fuzzer
//! probes what a line *contains*, the transports already decide what a
//! line *is*.

use crate::rng::Rng;

/// What a generated line is trying to provoke. Carried alongside the
/// bytes so failing drivers can report the category, and so tests can
/// assert a session covers all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// A well-formed request (valid JSON, plausible op) — keeps the
    /// session exercising real dispatch between attacks.
    Valid,
    /// Valid JSON with fields of the wrong type (`"op": 7`, ids that
    /// are arrays, budgets that are strings…).
    WrongTypes,
    /// A well-formed request cut off mid-byte.
    Truncated,
    /// Raw ASCII/binary garbage.
    Garbage,
    /// A line engineered to exceed the transport cap.
    Oversized,
    /// Several complete JSON objects interleaved on one line.
    Interleaved,
    /// Empty or all-whitespace lines.
    Whitespace,
    /// Deeply nested / pathological but parseable JSON shapes.
    Pathological,
}

/// All kinds, in generation-weight order.
pub const ALL_KINDS: &[CaseKind] = &[
    CaseKind::Valid,
    CaseKind::WrongTypes,
    CaseKind::Truncated,
    CaseKind::Garbage,
    CaseKind::Oversized,
    CaseKind::Interleaved,
    CaseKind::Whitespace,
    CaseKind::Pathological,
];

/// One generated request line (framing newline *not* included).
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The raw line bytes; never contains `\n`.
    pub line: Vec<u8>,
    /// The category that produced it.
    pub kind: CaseKind,
}

/// Deterministic generator of hostile protocol sessions.
pub struct ProtocolFuzzer {
    rng: Rng,
    /// Target length for [`CaseKind::Oversized`] lines: a little past
    /// the transport cap under test.
    oversize_to: usize,
}

impl ProtocolFuzzer {
    /// A fuzzer whose oversized lines exceed `max_line_bytes`.
    pub fn new(seed: u64, max_line_bytes: usize) -> ProtocolFuzzer {
        ProtocolFuzzer {
            rng: Rng::seed_from_u64(seed ^ 0x70726f_746f636f), // "protoco"
            oversize_to: max_line_bytes.saturating_add(64),
        }
    }

    /// A full session of `n` lines.
    pub fn session(&mut self, n: usize) -> Vec<FuzzCase> {
        (0..n).map(|_| self.next_case()).collect()
    }

    /// The next line of the session.
    pub fn next_case(&mut self) -> FuzzCase {
        let kind = match self.rng.gen_range(0..100u32) {
            0..=29 => CaseKind::Valid,
            30..=44 => CaseKind::WrongTypes,
            45..=59 => CaseKind::Truncated,
            60..=74 => CaseKind::Garbage,
            75..=79 => CaseKind::Oversized,
            80..=89 => CaseKind::Interleaved,
            90..=94 => CaseKind::Whitespace,
            _ => CaseKind::Pathological,
        };
        let mut line = match kind {
            CaseKind::Valid => self.valid_request(),
            CaseKind::WrongTypes => self.wrong_types(),
            CaseKind::Truncated => {
                let full = self.valid_request();
                let cut = self.rng.gen_range(0..full.len().max(1));
                full[..cut].to_vec()
            }
            CaseKind::Garbage => self.garbage(),
            CaseKind::Oversized => self.oversized(),
            CaseKind::Interleaved => self.interleaved(),
            CaseKind::Whitespace => {
                let n = self.rng.gen_range(0..5usize);
                vec![b' '; n]
            }
            CaseKind::Pathological => self.pathological(),
        };
        line.retain(|&b| b != b'\n');
        FuzzCase { line, kind }
    }

    /// One of the real ops with plausible fields. Ids are drawn from a
    /// tiny pool so sessions hit both loaded and unknown programs.
    fn valid_request(&mut self) -> Vec<u8> {
        let id = ["fz0", "fz1", "nope"][self.rng.gen_range(0..3usize)];
        let req = match self.rng.gen_range(0..8u32) {
            0 => r#"{"op":"ping"}"#.to_string(),
            1 => {
                // Sometimes pick a resident solver: every real name
                // (the server accepts all five), plus names the closed
                // error taxonomy must reject as `bad_request` — among
                // them `steensgaard`, a tier name that is *not* a
                // solver name, and case-mangled variants.
                let solver = [
                    "",
                    r#","solver":"dense""#,
                    r#","solver":"sfs""#,
                    r#","solver":"vsfs""#,
                    r#","solver":"cfgfree""#,
                    r#","solver":"unify""#,
                    r#","solver":"ander""#,
                    r#","solver":"steensgaard""#,
                    r#","solver":"CFGFREE""#,
                    r#","solver":"UNIFY""#,
                    r#","solver":"""#,
                ][self.rng.gen_range(0..11usize)];
                format!(
                    r#"{{"op":"load","id":"{id}","source":"func @f() {{\nentry:\n  %p = alloc stack A\n  ret\n}}\n"{solver}}}"#
                )
            }
            2 => format!(r#"{{"op":"pts","id":"{id}","value":"%p"}}"#),
            3 => format!(r#"{{"op":"alias","id":"{id}","p":"%p","q":"%p"}}"#),
            4 => format!(r#"{{"op":"stats","id":"{id}"}}"#),
            5 => r#"{"op":"stats"}"#.to_string(),
            6 => {
                // Edits may carry a solver switch too — valid, invalid,
                // and the bare form all exercise the same parse path.
                let solver = ["", r#","solver":"unify""#, r#","solver":"Unify""#]
                    [self.rng.gen_range(0..3usize)];
                format!(r#"{{"op":"edit","id":"{id}","delta":[]{solver}}}"#)
            }
            _ => format!(r#"{{"op":"check","id":"{id}"}}"#),
        };
        req.into_bytes()
    }

    fn wrong_types(&mut self) -> Vec<u8> {
        let pick = self.rng.gen_range(0..10u32);
        let req = match pick {
            8 => r#"{"op":"load","id":"x","source":"func @f(){}","solver":7}"#.to_string(),
            9 => r#"{"op":"edit","id":"x","delta":[],"solver":["unify"]}"#.to_string(),
            0 => r#"{"op":7}"#.to_string(),
            1 => r#"{"op":null}"#.to_string(),
            2 => r#"{"op":["ping"]}"#.to_string(),
            3 => r#"{"op":"pts","id":42,"value":true}"#.to_string(),
            4 => r#"{"op":"load","id":"x","source":12345}"#.to_string(),
            5 => r#"{"op":"edit","id":"x","delta":{"not":"an array"}}"#.to_string(),
            6 => {
                r#"{"op":"load","id":"x","source":"func @f(){}","time_budget":"soon"}"#.to_string()
            }
            _ => format!(r#"{{"op":"pts","id":"x","value":{}}}"#, self.rng.next_u64()),
        };
        req.into_bytes()
    }

    fn garbage(&mut self) -> Vec<u8> {
        let len = self.rng.gen_range(1..64usize);
        let binary = self.rng.gen_bool(0.5);
        (0..len)
            .map(|_| {
                if binary {
                    self.rng.gen_range(0..256u32) as u8
                } else {
                    // Printable ASCII, brace- and quote-heavy.
                    const ALPHABET: &[u8] = br#"{}[]",:ping load\x"#;
                    ALPHABET[self.rng.gen_range(0..ALPHABET.len())]
                }
            })
            .collect()
    }

    fn oversized(&mut self) -> Vec<u8> {
        let mut line = r#"{"op":"ping","pad":""#.as_bytes().to_vec();
        line.resize(self.oversize_to, b'x');
        line.extend_from_slice(b"\"}");
        line
    }

    fn interleaved(&mut self) -> Vec<u8> {
        let k = self.rng.gen_range(2..5usize);
        let mut line = Vec::new();
        for i in 0..k {
            if i > 0 && self.rng.gen_bool(0.5) {
                line.push(b' ');
            }
            line.extend_from_slice(&self.valid_request());
        }
        line
    }

    fn pathological(&mut self) -> Vec<u8> {
        match self.rng.gen_range(0..5u32) {
            0 => {
                // Deep nesting.
                let depth = self.rng.gen_range(8..64usize);
                let mut s = String::new();
                for _ in 0..depth {
                    s.push_str("{\"a\":");
                }
                s.push('1');
                for _ in 0..depth {
                    s.push('}');
                }
                s.into_bytes()
            }
            1 => br#"{"op":"ping","n":1e309}"#.to_vec(),
            2 => r#"{"op":"ping","s":"\udead뻯"}"#.as_bytes().to_vec(),
            3 => br#"{"op":"ping","unterminated":"..."#.to_vec(),
            _ => {
                // Duplicate keys, the last one hostile.
                br#"{"op":"ping","op":"shutdown_not_really","op":[1,2]}"#.to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let a: Vec<_> = ProtocolFuzzer::new(7, 1024).session(200);
        let b: Vec<_> = ProtocolFuzzer::new(7, 1024).session(200);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.line, y.line);
        }
        let c: Vec<_> = ProtocolFuzzer::new(8, 1024).session(200);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line), "different seeds should differ");
    }

    #[test]
    fn lines_never_contain_framing_bytes() {
        let mut f = ProtocolFuzzer::new(99, 512);
        for case in f.session(500) {
            assert!(!case.line.contains(&b'\n'), "{:?}", case.kind);
        }
    }

    #[test]
    fn long_sessions_cover_every_kind() {
        let mut f = ProtocolFuzzer::new(3, 512);
        let kinds: HashSet<_> = f.session(400).into_iter().map(|c| c.kind).collect();
        for k in ALL_KINDS {
            assert!(kinds.contains(k), "kind {k:?} never generated");
        }
    }

    #[test]
    fn oversized_cases_exceed_the_cap() {
        let mut f = ProtocolFuzzer::new(5, 256);
        let over: Vec<_> =
            f.session(300).into_iter().filter(|c| c.kind == CaseKind::Oversized).collect();
        assert!(!over.is_empty());
        assert!(over.iter().all(|c| c.line.len() > 256));
    }

    #[test]
    fn no_fuzz_case_is_a_shutdown() {
        // A fuzz session must never stop the server under test: the
        // only op that stops it is `shutdown`, which the generator
        // never emits. (The server's JSON keeps the *first* duplicate
        // key, so the duplicate-key case dispatches as `ping`.)
        let mut f = ProtocolFuzzer::new(11, 512);
        for case in f.session(1000) {
            let text = String::from_utf8_lossy(&case.line);
            assert_ne!(text.trim(), r#"{"op":"shutdown"}"#);
        }
    }
}

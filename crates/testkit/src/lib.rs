//! Hermetic property-testing harness.
//!
//! A minimal, fully offline replacement for the parts of `proptest` this
//! workspace used: deterministic case generation from a [`Rng`], a fixed
//! number of cases per property, and seed reporting on failure so any
//! failing case can be replayed in isolation.
//!
//! Unlike proptest there is no shrinking — properties here are already
//! written over small generated inputs, and every failure prints the
//! exact seed that reproduces it:
//!
//! ```text
//! VSFS_PROP_SEED=0x9f84… cargo test -p vsfs-adt failing_property
//! ```
//!
//! Environment knobs:
//!
//! * `VSFS_PROP_CASES` — override the number of cases per property;
//! * `VSFS_PROP_SEED` — run exactly one case with the given seed
//!   (decimal or `0x…` hex).
//!
//! Case seeds are derived from the property *name*, so runs are
//! reproducible across machines and invocations — the suite is
//! deterministic by default, not only on replay.

pub mod fault;
pub mod gen;
pub mod protocol;
pub mod rng;

pub use fault::FaultPlan;
pub use protocol::{CaseKind, FuzzCase, ProtocolFuzzer};
pub use rng::Rng;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property (see [`check`]).
pub const DEFAULT_CASES: u32 = 64;

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a, used to give every property its own deterministic seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `prop` for [`DEFAULT_CASES`] deterministic cases.
///
/// `name` should be the test function's name; it seeds the case stream
/// and appears in failure reports. The property signals failure by
/// panicking (e.g. via `assert!`).
pub fn check(name: &str, prop: impl FnMut(&mut Rng)) {
    check_cases(name, DEFAULT_CASES, prop);
}

/// Runs `prop` for `cases` deterministic cases (overridable via
/// `VSFS_PROP_CASES`; `VSFS_PROP_SEED` replays a single case).
pub fn check_cases(name: &str, cases: u32, mut prop: impl FnMut(&mut Rng)) {
    if let Some(seed) = std::env::var("VSFS_PROP_SEED").ok().as_deref().and_then(parse_seed) {
        eprintln!("[vsfs-testkit] `{name}`: replaying single case with seed {seed:#018x}");
        prop(&mut Rng::seed_from_u64(seed));
        return;
    }
    let cases = std::env::var("VSFS_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(cases);
    let mut stream = Rng::seed_from_u64(hash_name(name));
    for case in 0..cases {
        let seed = stream.next_u64();
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut Rng::seed_from_u64(seed))));
        if let Err(payload) = outcome {
            eprintln!(
                "[vsfs-testkit] property `{name}` failed at case {case}/{cases} \
                 (seed {seed:#018x}); replay with VSFS_PROP_SEED={seed:#x}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_every_case() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = AtomicU32::new(0);
        check_cases("check_runs_every_case", 17, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn failing_property_reports_and_propagates() {
        let outcome = catch_unwind(|| {
            check_cases("always_fails", 4, |_| panic!("boom"));
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn case_seeds_are_deterministic() {
        let mut a = Vec::new();
        check_cases("seed_stream_probe", 5, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        check_cases("seed_stream_probe", 5, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        // A different property name yields a different stream.
        let mut c = Vec::new();
        check_cases("seed_stream_probe_2", 5, |rng| c.push(rng.next_u64()));
        assert_ne!(a, c);
    }
}

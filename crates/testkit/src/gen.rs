//! Common case generators for property tests.

use crate::rng::Rng;

/// A vector whose length is drawn from `len` and whose elements come
/// from `elem`.
pub fn vec_with<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut elem: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = if len.start >= len.end { len.start } else { rng.gen_range(len) };
    (0..n).map(|_| elem(rng)).collect()
}

/// A string of printable ASCII (space through `~`) plus newlines, the
/// alphabet the parser-robustness tests fuzz with.
pub fn printable_string(rng: &mut Rng, len: std::ops::Range<usize>) -> String {
    let n = if len.start >= len.end { len.start } else { rng.gen_range(len) };
    (0..n)
        .map(|_| if rng.gen_bool(0.05) { '\n' } else { char::from(rng.gen_range(b' '..b'~' + 1)) })
        .collect()
}

/// A uniformly chosen element of a non-empty slice.
pub fn pick<'a, T>(rng: &mut Rng, pool: &'a [T]) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_with_respects_length_range() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let v = vec_with(&mut rng, 2..9, |r| r.next_u32());
            assert!((2..9).contains(&v.len()));
        }
        assert_eq!(vec_with(&mut rng, 0..1, |r| r.next_u32()).len(), 0);
    }

    #[test]
    fn printable_string_stays_in_alphabet() {
        let mut rng = Rng::seed_from_u64(5);
        let s = printable_string(&mut rng, 0..400);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}

//! Programmatic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] owns the arenas while a program is being assembled;
//! [`FunctionBuilder`] appends blocks and instructions to one function.
//! [`ProgramBuilder::finish`] materialises field objects, lowers global
//! initialisers into `main`, and returns the completed [`Program`].
//!
//! # Examples
//!
//! ```
//! use vsfs_ir::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare_function("main", 0);
//! {
//!     let mut fb = pb.build_function(main);
//!     let entry = fb.block("entry");
//!     fb.switch_to(entry);
//!     let p = fb.alloc_stack("p", "A", 1, false);
//!     let q = fb.alloc_heap("q", "H", 1, false);
//!     fb.store(q, p); // *p = q
//!     fb.load("r", p);
//!     fb.ret(None);
//! }
//! let prog = pb.finish()?;
//! assert_eq!(prog.inst_count(), 6); // funentry + 4 + funexit
//! # Ok::<(), vsfs_ir::build::BuildError>(())
//! ```

use crate::ids::{BlockId, FuncId, InstId, ObjId, ValueId};
use crate::inst::{Block, Callee, Inst, InstKind, Terminator};
use crate::program::{Function, ObjKind, Object, Program, Value, ValueDef};
use std::fmt;

/// An error detected while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A global initialiser was given but the program has no `main`.
    GlobalInitWithoutMain,
    /// A function body was never built.
    MissingBody(String),
    /// A function body was built twice.
    DuplicateBody(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::GlobalInitWithoutMain => {
                write!(f, "global initialisers require a `main` function")
            }
            BuildError::MissingBody(n) => write!(f, "function `@{n}` has no body"),
            BuildError::DuplicateBody(n) => write!(f, "function `@{n}` built twice"),
        }
    }
}

impl std::error::Error for BuildError {}

/// What a global initialiser stores into a global object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GInitVal {
    /// The address held by another global pointer (i.e. `*g = h` where `h`
    /// is a global pointer).
    Global(ValueId),
    /// A function address (`*g = &f`), common in function-pointer tables.
    Func(FuncId),
}

const SENTINEL: InstId = InstId::new(u32::MAX);

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
    bodies_built: Vec<bool>,
    ginits: Vec<(ValueId, GInitVal)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a global variable: creates its storage object and its
    /// (top-level, globally scoped) pointer, which always points to that
    /// storage.
    pub fn add_global(&mut self, name: &str, num_fields: u32, is_array: bool) -> (ValueId, ObjId) {
        let obj = self.prog.objects.push(Object {
            name: name.to_string(),
            kind: ObjKind::Global,
            num_fields,
            is_array,
        });
        let val = self.prog.values.push(Value {
            name: name.to_string(),
            func: None,
            def: ValueDef::GlobalPtr(obj),
        });
        self.prog.globals.push((val, obj));
        (val, obj)
    }

    /// Records a global initialiser `*gptr = value`, lowered into the
    /// start of `main` by [`ProgramBuilder::finish`].
    pub fn ginit(&mut self, gptr: ValueId, value: GInitVal) {
        self.ginits.push((gptr, value));
    }

    /// Declares a function with `nparams` parameters. Bodies may be built
    /// in any order afterwards, enabling mutual recursion.
    pub fn declare_function(&mut self, name: &str, nparams: usize) -> FuncId {
        let func = self.prog.functions.next_index();
        let params = (0..nparams)
            .map(|i| {
                self.prog.values.push(Value {
                    name: format!("arg{i}"),
                    func: Some(func),
                    def: ValueDef::Param(func, i as u32),
                })
            })
            .collect();
        self.prog.functions.push(Function {
            name: name.to_string(),
            params,
            blocks: Vec::new(),
            entry_inst: SENTINEL,
            exit_inst: SENTINEL,
            exit_block: BlockId::new(u32::MAX),
        });
        self.bodies_built.push(false);
        if name == "main" {
            self.prog.entry = Some(func);
        }
        func
    }

    /// Renames the `i`-th parameter of `func` (used by the parser to apply
    /// source names).
    pub fn rename_param(&mut self, func: FuncId, i: usize, name: &str) {
        let v = self.prog.functions[func].params[i];
        self.prog.values[v].name = name.to_string();
    }

    /// Starts building the body of `func`.
    ///
    /// # Panics
    ///
    /// Panics if the body was already built.
    pub fn build_function(&mut self, func: FuncId) -> FunctionBuilder<'_> {
        assert!(
            !self.bodies_built[func.index()],
            "function body built twice: @{}",
            self.prog.functions[func].name
        );
        self.bodies_built[func.index()] = true;
        FunctionBuilder { pb: self, func, cur: None }
    }

    /// The function-address object for `func`, created on first use.
    pub fn function_object(&mut self, func: FuncId) -> ObjId {
        if let Some(&o) = self.prog.func_obj.get(&func) {
            return o;
        }
        let name = format!("&{}", self.prog.functions[func].name);
        let o = self.prog.objects.push(Object {
            name,
            kind: ObjKind::Function(func),
            num_fields: 0,
            is_array: false,
        });
        self.prog.func_obj.insert(func, o);
        o
    }

    /// The singleton null pseudo-object, created on first use.
    pub fn null_object(&mut self) -> ObjId {
        if let Some(o) = self.prog.null_obj {
            return o;
        }
        let o = self.prog.objects.push(Object {
            name: "null".to_string(),
            kind: ObjKind::Null,
            num_fields: 0,
            is_array: false,
        });
        self.prog.null_obj = Some(o);
        o
    }

    /// Completes the program: checks every declared function has a body,
    /// lowers global initialisers into `main`, and materialises field
    /// objects.
    ///
    /// # Errors
    ///
    /// Returns an error if a declared function lacks a body or global
    /// initialisers exist without a `main`.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        for (f, built) in self.bodies_built.iter().enumerate() {
            if !built {
                return Err(BuildError::MissingBody(
                    self.prog.functions[FuncId::new(f as u32)].name.clone(),
                ));
            }
        }
        self.lower_ginits()?;
        self.materialise_fields();
        Ok(self.prog)
    }

    fn lower_ginits(&mut self) -> Result<(), BuildError> {
        if self.ginits.is_empty() {
            return Ok(());
        }
        let main = self.prog.entry.ok_or(BuildError::GlobalInitWithoutMain)?;
        let entry_block = self.prog.functions[main].entry_block();
        let mut new_insts = Vec::new();
        let ginits = std::mem::take(&mut self.ginits);
        for (i, (gptr, val)) in ginits.into_iter().enumerate() {
            let src = match val {
                GInitVal::Global(v) => v,
                GInitVal::Func(f) => {
                    let obj = self.function_object(f);
                    let tmp = self.prog.values.push(Value {
                        name: format!("__ginit{i}"),
                        func: Some(main),
                        def: ValueDef::Undefined,
                    });
                    let inst = self.prog.insts.push(Inst {
                        kind: InstKind::Alloc { dst: tmp, obj },
                        block: entry_block,
                        func: main,
                    });
                    self.prog.values[tmp].def = ValueDef::Inst(inst);
                    new_insts.push(inst);
                    tmp
                }
            };
            let store = self.prog.insts.push(Inst {
                kind: InstKind::Store { addr: gptr, val: src },
                block: entry_block,
                func: main,
            });
            new_insts.push(store);
        }
        // Insert right after the FUNENTRY (position 0) of main's entry.
        let insts = &mut self.prog.blocks[entry_block].insts;
        debug_assert!(matches!(self.prog.insts[insts[0]].kind, InstKind::FunEntry { .. }));
        insts.splice(1..1, new_insts);
        Ok(())
    }

    fn materialise_fields(&mut self) {
        let bases: Vec<(ObjId, u32, bool)> = self
            .prog
            .objects
            .iter_enumerated()
            .filter(|(_, o)| !o.is_field() && o.num_fields > 1)
            .map(|(id, o)| (id, o.num_fields, o.is_array))
            .collect();
        for (base, nf, is_array) in bases {
            for offset in 1..nf {
                let name = format!("{}.f{}", self.prog.objects[base].name, offset);
                let f = self.prog.objects.push(Object {
                    name,
                    kind: ObjKind::Field { base, offset },
                    num_fields: 0,
                    is_array,
                });
                self.prog.field_map.insert((base, offset), f);
            }
        }
    }
}

/// Builds one function's body.
///
/// The first block created becomes the entry block and receives the
/// `FUNENTRY` instruction automatically; [`FunctionBuilder::ret`] emits the
/// unique `FUNEXIT`.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    func: FuncId,
    cur: Option<BlockId>,
}

impl FunctionBuilder<'_> {
    /// The function being built.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The `i`-th parameter value.
    pub fn param(&self, i: usize) -> ValueId {
        self.pb.prog.functions[self.func].params[i]
    }

    /// Creates a block named `name`. The first block created is the entry
    /// block. Does not switch to it.
    pub fn block(&mut self, name: &str) -> BlockId {
        let block = self.pb.prog.blocks.push(Block {
            name: name.to_string(),
            func: self.func,
            insts: Vec::new(),
            // Placeholder; must be overwritten by a terminator call.
            term: Terminator::Return,
        });
        let is_entry = self.pb.prog.functions[self.func].blocks.is_empty();
        self.pb.prog.functions[self.func].blocks.push(block);
        if is_entry {
            let entry = self.pb.prog.insts.push(Inst {
                kind: InstKind::FunEntry { func: self.func },
                block,
                func: self.func,
            });
            self.pb.prog.blocks[block].insts.push(entry);
            self.pb.prog.functions[self.func].entry_inst = entry;
        }
        block
    }

    /// Makes `block` the insertion point for subsequent instructions.
    pub fn switch_to(&mut self, block: BlockId) {
        assert_eq!(self.pb.prog.blocks[block].func, self.func, "block of another function");
        self.cur = Some(block);
    }

    fn fresh_value(&mut self, name: &str) -> ValueId {
        self.pb.prog.values.push(Value {
            name: name.to_string(),
            func: Some(self.func),
            def: ValueDef::Undefined,
        })
    }

    fn emit(&mut self, kind: InstKind) -> InstId {
        let block = self.cur.expect("no current block: call switch_to first");
        let inst = self.pb.prog.insts.push(Inst { kind, block, func: self.func });
        self.pb.prog.blocks[block].insts.push(inst);
        inst
    }

    fn emit_def(&mut self, name: &str, mk: impl FnOnce(ValueId) -> InstKind) -> ValueId {
        let dst = self.fresh_value(name);
        let inst = self.emit(mk(dst));
        self.pb.prog.values[dst].def = ValueDef::Inst(inst);
        dst
    }

    /// `dst = alloc_o` for a fresh stack object named `obj_name`.
    pub fn alloc_stack(&mut self, dst: &str, obj_name: &str, fields: u32, array: bool) -> ValueId {
        let obj = self.pb.prog.objects.push(Object {
            name: obj_name.to_string(),
            kind: ObjKind::Stack(self.func),
            num_fields: fields,
            is_array: array,
        });
        self.emit_def(dst, |d| InstKind::Alloc { dst: d, obj })
    }

    /// `dst = alloc_o` for a fresh heap object named `obj_name`.
    pub fn alloc_heap(&mut self, dst: &str, obj_name: &str, fields: u32, array: bool) -> ValueId {
        let obj = self.pb.prog.objects.push(Object {
            name: obj_name.to_string(),
            kind: ObjKind::Heap(self.func),
            num_fields: fields,
            is_array: array,
        });
        self.emit_def(dst, |d| InstKind::Alloc { dst: d, obj })
    }

    /// `dst = &target` — takes the address of a function.
    pub fn funaddr(&mut self, dst: &str, target: FuncId) -> ValueId {
        let obj = self.pb.function_object(target);
        self.emit_def(dst, |d| InstKind::Alloc { dst: d, obj })
    }

    /// `dst = φ(srcs...)`.
    pub fn phi(&mut self, dst: &str, srcs: &[ValueId]) -> ValueId {
        let srcs = srcs.to_vec();
        self.emit_def(dst, |d| InstKind::Phi { dst: d, srcs })
    }

    /// The id the next emitted instruction will receive (used by the
    /// parser to attach source spans to everything one line emits).
    pub fn next_inst(&self) -> InstId {
        self.pb.prog.insts.next_index()
    }

    /// Records source span (`line`, `col`) for every instruction emitted
    /// since `from` (exclusive of ids at or past the current end).
    pub fn set_spans_since(&mut self, from: InstId, line: u32, col: u32) {
        let end = self.pb.prog.insts.next_index().index();
        for i in from.index()..end {
            self.pb.prog.inst_spans.insert(InstId::new(i as u32), (line, col));
        }
    }

    /// The instruction that defines `v`, if instruction-defined.
    pub fn def_inst_of(&self, v: ValueId) -> Option<InstId> {
        match self.pb.prog.values[v].def {
            crate::program::ValueDef::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Replaces operand `idx` of the `PHI` at `inst` with `v`.
    ///
    /// Phi operands may reference values defined later in the function
    /// (loop back-edges); emit with a placeholder and patch afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a `PHI` or `idx` is out of range.
    pub fn patch_phi_operand(&mut self, inst: InstId, idx: usize, v: ValueId) {
        match &mut self.pb.prog.insts[inst].kind {
            InstKind::Phi { srcs, .. } => srcs[idx] = v,
            other => panic!("patch_phi_operand on non-phi ({})", other.mnemonic()),
        }
    }

    /// `dst = (t) src` — CAST/copy.
    pub fn copy(&mut self, dst: &str, src: ValueId) -> ValueId {
        self.emit_def(dst, |d| InstKind::Copy { dst: d, src })
    }

    /// `dst = &base->f_offset`.
    pub fn gep(&mut self, dst: &str, base: ValueId, offset: u32) -> ValueId {
        self.emit_def(dst, |d| InstKind::Field { dst: d, base, offset })
    }

    /// `dst = *addr`.
    pub fn load(&mut self, dst: &str, addr: ValueId) -> ValueId {
        self.emit_def(dst, |d| InstKind::Load { dst: d, addr })
    }

    /// `*addr = val`.
    pub fn store(&mut self, val: ValueId, addr: ValueId) -> InstId {
        self.emit(InstKind::Store { addr, val })
    }

    /// `free ptr`.
    pub fn free(&mut self, ptr: ValueId) -> InstId {
        self.emit(InstKind::Free { ptr })
    }

    /// `dst = null` — allocates the singleton null pseudo-object.
    pub fn null_ptr(&mut self, dst: &str) -> ValueId {
        let obj = self.pb.null_object();
        self.emit_def(dst, |d| InstKind::Alloc { dst: d, obj })
    }

    /// Direct call `dst = callee(args...)`; `dst` is created when
    /// `dst_name` is given.
    pub fn call(
        &mut self,
        dst_name: Option<&str>,
        callee: FuncId,
        args: &[ValueId],
    ) -> Option<ValueId> {
        self.call_inner(dst_name, Callee::Direct(callee), args)
    }

    /// Indirect call `dst = (*fp)(args...)`.
    pub fn icall(
        &mut self,
        dst_name: Option<&str>,
        fp: ValueId,
        args: &[ValueId],
    ) -> Option<ValueId> {
        self.call_inner(dst_name, Callee::Indirect(fp), args)
    }

    fn call_inner(
        &mut self,
        dst_name: Option<&str>,
        callee: Callee,
        args: &[ValueId],
    ) -> Option<ValueId> {
        let args = args.to_vec();
        match dst_name {
            Some(n) => Some(self.emit_def(n, |d| InstKind::Call { dst: Some(d), callee, args })),
            None => {
                self.emit(InstKind::Call { dst: None, callee, args });
                None
            }
        }
    }

    /// Terminates the current block with an unconditional jump.
    pub fn goto(&mut self, target: BlockId) {
        let b = self.cur.expect("no current block");
        self.pb.prog.blocks[b].term = Terminator::Goto(target);
        self.cur = None;
    }

    /// Terminates the current block with a multi-way branch.
    pub fn br(&mut self, targets: &[BlockId]) {
        assert!(targets.len() >= 2, "br needs at least two targets; use goto");
        let b = self.cur.expect("no current block");
        self.pb.prog.blocks[b].term = Terminator::Branch(targets.to_vec());
        self.cur = None;
    }

    /// Terminates the current block with the function's unique `FUNEXIT`
    /// returning `ret`.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same function (the paper assumes
    /// `UnifyFunctionExitNodes`: a single exit per function).
    pub fn ret(&mut self, ret: Option<ValueId>) {
        assert_eq!(
            self.pb.prog.functions[self.func].exit_inst, SENTINEL,
            "function @{} already has a FUNEXIT; unify exits first",
            self.pb.prog.functions[self.func].name
        );
        let func = self.func;
        let exit = self.emit(InstKind::FunExit { func, ret });
        let b = self.cur.expect("no current block");
        self.pb.prog.blocks[b].term = Terminator::Return;
        self.pb.prog.functions[func].exit_inst = exit;
        self.pb.prog.functions[func].exit_block = b;
        self.cur = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_function("main", 0);
        {
            let mut fb = pb.build_function(main);
            let entry = fb.block("entry");
            fb.switch_to(entry);
            let p = fb.alloc_stack("p", "A", 1, false);
            let q = fb.alloc_heap("q", "H", 1, false);
            fb.store(q, p);
            let r = fb.load("r", p);
            fb.ret(Some(r));
        }
        let prog = pb.finish().unwrap();
        assert_eq!(prog.entry, Some(main));
        assert_eq!(prog.inst_count(), 6);
        let f = &prog.functions[main];
        assert!(matches!(prog.insts[f.entry_inst].kind, InstKind::FunEntry { .. }));
        assert!(matches!(prog.insts[f.exit_inst].kind, InstKind::FunExit { ret: Some(_), .. }));
        assert_eq!(prog.objects.len(), 2);
    }

    #[test]
    fn globals_and_ginit_lower_into_main() {
        let mut pb = ProgramBuilder::new();
        let (g, _gobj) = pb.add_global("g", 1, false);
        let (h, _hobj) = pb.add_global("h", 1, false);
        let callee = pb.declare_function("callee", 0);
        let main = pb.declare_function("main", 0);
        pb.ginit(g, GInitVal::Global(h));
        pb.ginit(h, GInitVal::Func(callee));
        {
            let mut fb = pb.build_function(callee);
            let e = fb.block("entry");
            fb.switch_to(e);
            fb.ret(None);
        }
        {
            let mut fb = pb.build_function(main);
            let e = fb.block("entry");
            fb.switch_to(e);
            fb.ret(None);
        }
        let prog = pb.finish().unwrap();
        let entry_block = prog.functions[main].entry_block();
        let kinds: Vec<&'static str> =
            prog.blocks[entry_block].insts.iter().map(|&i| prog.insts[i].kind.mnemonic()).collect();
        // funentry, store (*g=h), alloc (&callee), store (*h=&callee), funexit
        assert_eq!(kinds, vec!["funentry", "store", "alloc", "store", "funexit"]);
        assert!(prog.function_object(callee).is_some());
    }

    #[test]
    fn field_materialisation_and_lookup() {
        let mut pb = ProgramBuilder::new();
        let (_, gobj) = pb.add_global("s", 3, false);
        let main = pb.declare_function("main", 0);
        {
            let mut fb = pb.build_function(main);
            let e = fb.block("entry");
            fb.switch_to(e);
            fb.ret(None);
        }
        let prog = pb.finish().unwrap();
        // base + 2 fields
        let f1 = prog.field_object(gobj, 1);
        let f2 = prog.field_object(gobj, 2);
        assert_ne!(f1, f2);
        assert_ne!(f1, gobj);
        // offset 0 is the base itself
        assert_eq!(prog.field_object(gobj, 0), gobj);
        // out-of-range clamps to the last field
        assert_eq!(prog.field_object(gobj, 9), f2);
        // field-of-field collapses onto the root
        assert_eq!(prog.field_object(f1, 1), f2);
        assert_eq!(prog.field_object(f1, 5), f2);
        assert_eq!(prog.base_object(f1), gobj);
    }

    #[test]
    fn scalar_objects_absorb_fields() {
        let mut pb = ProgramBuilder::new();
        let (_, gobj) = pb.add_global("x", 1, false);
        let main = pb.declare_function("main", 0);
        {
            let mut fb = pb.build_function(main);
            let e = fb.block("entry");
            fb.switch_to(e);
            fb.ret(None);
        }
        let prog = pb.finish().unwrap();
        assert_eq!(prog.field_object(gobj, 3), gobj);
    }

    #[test]
    fn missing_body_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.declare_function("f", 0);
        assert!(matches!(pb.finish(), Err(BuildError::MissingBody(_))));
    }

    #[test]
    #[should_panic(expected = "already has a FUNEXIT")]
    fn two_rets_panic() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0);
        let mut fb = pb.build_function(f);
        let a = fb.block("a");
        let b = fb.block("b");
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
    }
}

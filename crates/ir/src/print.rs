//! Pretty-printing of programs back to the textual form.
//!
//! `Display for Program` emits text that [`crate::parse_program`] accepts,
//! enabling round-trip tests. Lowered global initialisers print as the
//! ordinary instructions they became (inside `main`), not as `ginit`
//! lines.

use crate::ids::{FuncId, ObjId, ValueId};
use crate::inst::{Callee, InstKind, Terminator};
use crate::program::{ObjKind, Program, ValueDef};
use std::fmt;

impl Program {
    fn fmt_value(&self, v: ValueId) -> String {
        match self.values[v].def {
            ValueDef::GlobalPtr(_) => format!("@{}", self.values[v].name),
            _ => format!("%{}", self.values[v].name),
        }
    }

    fn fmt_obj_suffix(&self, o: ObjId) -> String {
        let obj = &self.objects[o];
        let mut s = String::new();
        if obj.num_fields > 1 {
            s.push_str(&format!(" fields {}", obj.num_fields));
        }
        if obj.is_array {
            s.push_str(" array");
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(v, o) in &self.globals {
            writeln!(f, "global @{}{}", self.values[v].name, self.fmt_obj_suffix(o))?;
        }
        if !self.globals.is_empty() {
            writeln!(f)?;
        }
        for (func, fun) in self.functions.iter_enumerated() {
            let params: Vec<String> =
                fun.params.iter().map(|&p| format!("%{}", self.values[p].name)).collect();
            writeln!(f, "func @{}({}) {{", fun.name, params.join(", "))?;
            for &b in &fun.blocks {
                let block = &self.blocks[b];
                writeln!(f, "{}:", block.name)?;
                for &i in &block.insts {
                    self.fmt_inst(f, func, i)?;
                }
                match &block.term {
                    Terminator::Goto(t) => writeln!(f, "  goto {}", self.blocks[*t].name)?,
                    Terminator::Branch(ts) => {
                        let names: Vec<&str> =
                            ts.iter().map(|&t| self.blocks[t].name.as_str()).collect();
                        writeln!(f, "  br {}", names.join(", "))?;
                    }
                    Terminator::Return => {} // printed by the FUNEXIT line
                }
            }
            writeln!(f, "}}")?;
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Program {
    fn fmt_inst(
        &self,
        f: &mut fmt::Formatter<'_>,
        _func: FuncId,
        i: crate::ids::InstId,
    ) -> fmt::Result {
        match &self.insts[i].kind {
            InstKind::Alloc { dst, obj } => {
                let o = &self.objects[*obj];
                match o.kind {
                    ObjKind::Function(target) => writeln!(
                        f,
                        "  {} = funaddr @{}",
                        self.fmt_value(*dst),
                        self.functions[target].name
                    ),
                    ObjKind::Heap(_) => writeln!(
                        f,
                        "  {} = alloc heap {}{}",
                        self.fmt_value(*dst),
                        o.name,
                        self.fmt_obj_suffix(*obj)
                    ),
                    ObjKind::Null => writeln!(f, "  {} = null", self.fmt_value(*dst)),
                    _ => writeln!(
                        f,
                        "  {} = alloc stack {}{}",
                        self.fmt_value(*dst),
                        o.name,
                        self.fmt_obj_suffix(*obj)
                    ),
                }
            }
            InstKind::Phi { dst, srcs } => {
                let ops: Vec<String> = srcs.iter().map(|&s| self.fmt_value(s)).collect();
                writeln!(f, "  {} = phi {}", self.fmt_value(*dst), ops.join(", "))
            }
            InstKind::Copy { dst, src } => {
                writeln!(f, "  {} = copy {}", self.fmt_value(*dst), self.fmt_value(*src))
            }
            InstKind::Field { dst, base, offset } => {
                writeln!(
                    f,
                    "  {} = gep {}, {}",
                    self.fmt_value(*dst),
                    self.fmt_value(*base),
                    offset
                )
            }
            InstKind::Load { dst, addr } => {
                writeln!(f, "  {} = load {}", self.fmt_value(*dst), self.fmt_value(*addr))
            }
            InstKind::Store { addr, val } => {
                writeln!(f, "  store {}, {}", self.fmt_value(*val), self.fmt_value(*addr))
            }
            InstKind::Free { ptr } => writeln!(f, "  free {}", self.fmt_value(*ptr)),
            InstKind::Call { dst, callee, args } => {
                let ops: Vec<String> = args.iter().map(|&a| self.fmt_value(a)).collect();
                let callee_s = match callee {
                    Callee::Direct(t) => format!("call @{}", self.functions[*t].name),
                    Callee::Indirect(v) => format!("icall {}", self.fmt_value(*v)),
                };
                match dst {
                    Some(d) => {
                        writeln!(f, "  {} = {}({})", self.fmt_value(*d), callee_s, ops.join(", "))
                    }
                    None => writeln!(f, "  {}({})", callee_s, ops.join(", ")),
                }
            }
            InstKind::FunEntry { .. } => Ok(()), // implicit in the textual form
            InstKind::FunExit { ret, .. } => match ret {
                Some(r) => writeln!(f, "  ret {}", self.fmt_value(*r)),
                None => writeln!(f, "  ret"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_program;
    use crate::verify::verify;

    const SRC: &str = r#"
global @g fields 2
ginit @g, @g

func @callee(%x) {
entry:
  %l = load %x
  ret %l
}

func @main() {
entry:
  %p = alloc stack A fields 3 array
  %h = alloc heap H
  %n = null
  %fp = funaddr @callee
  store %h, %p
  free %h
  br left, right
left:
  %a = gep %p, 1
  goto join
right:
  %b = copy %p
  goto join
join:
  %m = phi %a, %b
  %r1 = call @callee(%m)
  %r2 = icall %fp(%m)
  ret %r2
}
"#;

    #[test]
    fn round_trips_through_text() {
        let p1 = parse_program(SRC).unwrap();
        verify(&p1).unwrap();
        let text = p1.to_string();
        let p2 = parse_program(&text).unwrap();
        verify(&p2).unwrap();
        // Identical shape: same counts everywhere and identical re-print.
        assert_eq!(p1.functions.len(), p2.functions.len());
        assert_eq!(p1.inst_count(), p2.inst_count());
        assert_eq!(p1.values.len(), p2.values.len());
        assert_eq!(p1.objects.len(), p2.objects.len());
        assert_eq!(text, p2.to_string());
    }
}

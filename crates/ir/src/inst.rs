//! Instructions and block terminators.

use crate::ids::{BlockId, FuncId, InstId, ObjId, ValueId};

/// The callee of a [`InstKind::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A direct call to a known function.
    Direct(FuncId),
    /// An indirect call through a function pointer (resolved by the
    /// pointer analysis, on the fly).
    Indirect(ValueId),
}

/// An instruction of the Table I instruction set.
///
/// `MEMPHI` is intentionally absent: it is introduced by memory-SSA
/// construction in `vsfs-mssa`, not written in input programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstKind {
    /// `p = alloc_o` — allocates object `o` (stack, heap, or a function
    /// address; globals get their pointer seeded without an instruction).
    Alloc { dst: ValueId, obj: ObjId },
    /// `p = φ(q, r, ...)` — selects a top-level pointer at a control-flow
    /// join.
    Phi { dst: ValueId, srcs: Vec<ValueId> },
    /// `p = (t) q` — the paper's CAST; points-to-wise a copy.
    Copy { dst: ValueId, src: ValueId },
    /// `p = &q->f_k` — the paper's FIELD: a pointer to field `k` of the
    /// aggregate(s) `q` points to.
    Field { dst: ValueId, base: ValueId, offset: u32 },
    /// `p = *q` — LOAD.
    Load { dst: ValueId, addr: ValueId },
    /// `*p = q` — STORE.
    Store { addr: ValueId, val: ValueId },
    /// `free p` — deallocates the object(s) `p` points to.
    ///
    /// Points-to-wise a no-op (it defines nothing and the freed objects
    /// keep their sets); memory-SSA-wise a weak update (χ) of everything
    /// `p` may point to, so checkers observe a value-flow event at the
    /// deallocation site.
    Free { ptr: ValueId },
    /// `p = q(r1, ..., rn)` — CALL (direct or indirect).
    Call { dst: Option<ValueId>, callee: Callee, args: Vec<ValueId> },
    /// `fun(r1, ..., rn)` — FUNENTRY: the unique entry pseudo-instruction
    /// carrying the parameters.
    FunEntry { func: FuncId },
    /// `ret_fun p` — FUNEXIT: the unique exit pseudo-instruction carrying
    /// the (optional) returned pointer.
    FunExit { func: FuncId, ret: Option<ValueId> },
}

impl InstKind {
    /// The top-level value this instruction defines, if any.
    pub fn def(&self) -> Option<ValueId> {
        match *self {
            InstKind::Alloc { dst, .. }
            | InstKind::Phi { dst, .. }
            | InstKind::Copy { dst, .. }
            | InstKind::Field { dst, .. }
            | InstKind::Load { dst, .. } => Some(dst),
            InstKind::Call { dst, .. } => dst,
            InstKind::Store { .. }
            | InstKind::Free { .. }
            | InstKind::FunEntry { .. }
            | InstKind::FunExit { .. } => None,
        }
    }

    /// The top-level values this instruction uses, in operand order.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            InstKind::Alloc { .. } | InstKind::FunEntry { .. } => Vec::new(),
            InstKind::Phi { srcs, .. } => srcs.clone(),
            InstKind::Copy { src, .. } => vec![*src],
            InstKind::Field { base, .. } => vec![*base],
            InstKind::Load { addr, .. } => vec![*addr],
            InstKind::Store { addr, val } => vec![*val, *addr],
            InstKind::Free { ptr } => vec![*ptr],
            InstKind::Call { callee, args, .. } => {
                let mut u = Vec::with_capacity(args.len() + 1);
                if let Callee::Indirect(v) = callee {
                    u.push(*v);
                }
                u.extend(args.iter().copied());
                u
            }
            InstKind::FunExit { ret, .. } => ret.iter().copied().collect(),
        }
    }

    /// Returns `true` for STORE instructions (the only instructions that
    /// can yield a different object version than they consume, Section
    /// IV-C2).
    pub fn is_store(&self) -> bool {
        matches!(self, InstKind::Store { .. })
    }

    /// A short mnemonic for diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            InstKind::Alloc { .. } => "alloc",
            InstKind::Phi { .. } => "phi",
            InstKind::Copy { .. } => "copy",
            InstKind::Field { .. } => "gep",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Free { .. } => "free",
            InstKind::Call { .. } => "call",
            InstKind::FunEntry { .. } => "funentry",
            InstKind::FunExit { .. } => "funexit",
        }
    }
}

/// An instruction together with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
    /// The block holding the instruction.
    pub block: BlockId,
    /// The function holding the instruction.
    pub func: FuncId,
}

/// A basic-block terminator.
///
/// Branches carry no condition: pointer analysis is path-insensitive, so
/// only the shape of control flow matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Non-deterministic branch to two or more targets.
    Branch(Vec<BlockId>),
    /// Function return; only valid in the exit block (which ends with the
    /// `FUNEXIT` instruction).
    Return,
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> &[BlockId] {
        match self {
            Terminator::Goto(b) => std::slice::from_ref(b),
            Terminator::Branch(bs) => bs,
            Terminator::Return => &[],
        }
    }
}

/// A basic block: a list of instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Name as written in the textual form (unique within its function).
    pub name: String,
    /// The function owning this block.
    pub func: FuncId,
    /// Instruction ids, in program order.
    pub insts: Vec<InstId>,
    /// Control-flow successor description.
    pub term: Terminator,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let v = |i| ValueId::new(i);
        let store = InstKind::Store { addr: v(1), val: v(2) };
        assert_eq!(store.def(), None);
        assert_eq!(store.uses(), vec![v(2), v(1)]);
        assert!(store.is_store());

        let load = InstKind::Load { dst: v(3), addr: v(1) };
        assert_eq!(load.def(), Some(v(3)));
        assert_eq!(load.uses(), vec![v(1)]);
        assert!(!load.is_store());

        let call = InstKind::Call {
            dst: Some(v(5)),
            callee: Callee::Indirect(v(4)),
            args: vec![v(1), v(2)],
        };
        assert_eq!(call.def(), Some(v(5)));
        assert_eq!(call.uses(), vec![v(4), v(1), v(2)]);

        let entry = InstKind::FunEntry { func: FuncId::new(0) };
        assert_eq!(entry.def(), None);
        assert!(entry.uses().is_empty());

        let exit = InstKind::FunExit { func: FuncId::new(0), ret: Some(v(9)) };
        assert_eq!(exit.uses(), vec![v(9)]);
    }

    #[test]
    fn terminator_successors() {
        let b = |i| BlockId::new(i);
        assert_eq!(Terminator::Goto(b(1)).successors(), &[b(1)]);
        assert_eq!(Terminator::Branch(vec![b(1), b(2)]).successors(), &[b(1), b(2)]);
        assert!(Terminator::Return.successors().is_empty());
    }
}

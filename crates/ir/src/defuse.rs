//! Def-use information for top-level values.
//!
//! Because top-level variables are in SSA form, their def-use chains are
//! trivial to compute (Section II-B: "direct edges ... can be determined
//! trivially"); this module materialises them once for reuse by the SVFG
//! builder and the verifier.

use crate::ids::{InstId, ValueId};
use crate::program::{Program, ValueDef};
use vsfs_adt::IndexVec;

/// Def and use sites of every top-level value.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// Instructions using each value, in program order of discovery.
    uses: IndexVec<ValueId, Vec<InstId>>,
}

impl DefUse {
    /// Computes def-use information for `prog`.
    pub fn compute(prog: &Program) -> Self {
        let mut uses: IndexVec<ValueId, Vec<InstId>> =
            (0..prog.values.len()).map(|_| Vec::new()).collect();
        for (id, inst) in prog.insts.iter_enumerated() {
            for v in inst.kind.uses() {
                uses[v].push(id);
            }
        }
        DefUse { uses }
    }

    /// The instructions that use `value`.
    pub fn uses(&self, value: ValueId) -> &[InstId] {
        &self.uses[value]
    }

    /// The instruction defining `value`, if it is instruction-defined.
    ///
    /// Parameters are defined by their function's `FUNENTRY` (returned
    /// here); global pointers have no defining instruction.
    pub fn def_inst(prog: &Program, value: ValueId) -> Option<InstId> {
        match prog.values[value].def {
            ValueDef::Inst(i) => Some(i),
            ValueDef::Param(f, _) => Some(prog.functions[f].entry_inst),
            ValueDef::GlobalPtr(_) | ValueDef::Undefined => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn uses_and_defs() {
        let prog = parse_program(
            r#"
            global @g
            func @main(%a) {
            entry:
              %p = alloc stack A
              store %a, %p
              store @g, %p
              %x = load %p
              ret %x
            }
            "#,
        )
        .unwrap();
        let du = DefUse::compute(&prog);
        let main = prog.entry_function();
        let p =
            prog.values.iter_enumerated().find(|(_, v)| v.name == "p").map(|(id, _)| id).unwrap();
        // p used by two stores and one load
        assert_eq!(du.uses(p).len(), 3);
        let a = prog.functions[main].params[0];
        assert_eq!(du.uses(a).len(), 1);
        assert_eq!(DefUse::def_inst(&prog, a), Some(prog.functions[main].entry_inst));
        let g = prog.globals[0].0;
        assert_eq!(DefUse::def_inst(&prog, g), None);
        assert_eq!(du.uses(g).len(), 1);
        let x =
            prog.values.iter_enumerated().find(|(_, v)| v.name == "x").map(|(id, _)| id).unwrap();
        // x used by funexit
        assert_eq!(du.uses(x).len(), 1);
        assert!(DefUse::def_inst(&prog, x).is_some());
    }
}

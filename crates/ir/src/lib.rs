//! An LLVM-like partial-SSA intermediate representation for pointer
//! analysis, following Table I of *Object Versioning for Flow-Sensitive
//! Pointer Analysis* (CGO 2021).
//!
//! # The analysis domain
//!
//! Variables split into two kinds (Table I):
//!
//! * **Top-level variables** (`P = S ∪ G`): stack and global pointers.
//!   They are explicit, in SSA form (each has exactly one definition), and
//!   are accessed directly by name. Their points-to sets are global — one
//!   per variable, not one per program point.
//! * **Address-taken objects** (`A = O ∪ F`): abstract objects and their
//!   fields. They are implicit and accessed only indirectly through
//!   `LOAD`/`STORE` via top-level pointers.
//!
//! # The instruction set
//!
//! Functions bodies use eight instruction kinds — `ALLOC`, `PHI`, `CAST`
//! (modelled by [`InstKind::Copy`]), `FIELD`, `LOAD`, `STORE`, `CALL`, plus
//! the function-boundary pseudo-instructions `FUNENTRY`/`FUNEXIT`. `MEMPHI`
//! instructions are *not* part of the input IR: they are introduced by
//! memory-SSA construction (the `vsfs-mssa` crate), exactly as in the
//! paper's pipeline.
//!
//! # In-memory form, text form, builder
//!
//! * [`Program`] is the arena-style in-memory module: dense id spaces for
//!   functions, blocks, instructions, top-level values and abstract
//!   objects.
//! * [`parse_program`] reads the textual form (see the module docs of
//!   [`parse`] for the grammar); [`Program`]'s `Display` prints it back.
//! * [`build::ProgramBuilder`] constructs programs programmatically (used
//!   by the synthetic workload generator and by tests).
//! * [`verify::verify`] checks partial-SSA well-formedness.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q = alloc heap H
//!   store %q, %p        // *p = q
//!   %r = load %p
//!   ret
//! }
//! "#;
//! let prog = vsfs_ir::parse_program(src)?;
//! assert_eq!(prog.functions.len(), 1);
//! vsfs_ir::verify::verify(&prog)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod build;
pub mod cfg;
pub mod defuse;
pub mod icfg;
pub mod ids;
pub mod inst;
pub mod parse;
pub mod print;
pub mod program;
pub mod verify;

pub use build::ProgramBuilder;
pub use cfg::Cfg;
pub use defuse::DefUse;
pub use icfg::Icfg;
pub use ids::{BlockId, FuncId, InstId, ObjId, ValueId};
pub use inst::{Callee, Inst, InstKind, Terminator};
pub use parse::{parse_program, parse_program_all, ParseProgramError};
pub use program::{Function, ObjKind, Object, Program, Value, ValueDef};

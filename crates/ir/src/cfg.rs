//! Per-function control-flow graphs over basic blocks.
//!
//! Memory-SSA construction needs dominator trees and dominance frontiers
//! per function; [`Cfg`] maps a function's (program-wide) block ids onto a
//! dense local index space and exposes a [`DiGraph`] plus a [`DomTree`].

use crate::ids::{BlockId, FuncId};
use crate::program::Program;
use std::collections::HashMap;
use vsfs_graph::{DiGraph, DomTree};

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    func: FuncId,
    /// Local index -> program-wide block id.
    blocks: Vec<BlockId>,
    /// Program-wide block id -> local index.
    local: HashMap<BlockId, u32>,
    graph: DiGraph<u32>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn build(prog: &Program, func: FuncId) -> Self {
        let blocks = prog.functions[func].blocks.clone();
        let local: HashMap<BlockId, u32> =
            blocks.iter().enumerate().map(|(i, &b)| (b, i as u32)).collect();
        let mut graph: DiGraph<u32> = DiGraph::with_nodes(blocks.len());
        for (i, &b) in blocks.iter().enumerate() {
            for &succ in prog.blocks[b].term.successors() {
                graph.add_edge_dedup(i as u32, local[&succ]);
            }
        }
        Cfg { func, blocks, local, graph }
    }

    /// The function this CFG describes.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The local index of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not in this function.
    pub fn local(&self, block: BlockId) -> u32 {
        self.local[&block]
    }

    /// The program-wide block id at local index `i`.
    pub fn block(&self, i: u32) -> BlockId {
        self.blocks[i as usize]
    }

    /// Successor blocks of `block`.
    pub fn successors(&self, block: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.graph.successors(self.local[&block]).iter().map(|&i| self.blocks[i as usize])
    }

    /// Predecessor blocks of `block`.
    pub fn predecessors(&self, block: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.graph.predecessors(self.local[&block]).iter().map(|&i| self.blocks[i as usize])
    }

    /// The underlying local-index graph.
    pub fn graph(&self) -> &DiGraph<u32> {
        &self.graph
    }

    /// Computes the dominator tree (entry = block 0).
    pub fn dominator_tree(&self) -> DomTree<u32> {
        DomTree::compute(&self.graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn diamond_cfg() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              br a, b
            a:
              goto join
            b:
              goto join
            join:
              ret
            }
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&prog, prog.entry_function());
        assert_eq!(cfg.block_count(), 4);
        let entry = cfg.block(0);
        assert_eq!(cfg.successors(entry).count(), 2);
        let join = cfg.block(3);
        assert_eq!(cfg.predecessors(join).count(), 2);
        let dt = cfg.dominator_tree();
        assert_eq!(dt.idom(3), Some(0));
    }

    #[test]
    fn loop_cfg() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              goto head
            head:
              br body, out
            body:
              goto head
            out:
              ret
            }
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&prog, prog.entry_function());
        let head = cfg.block(1);
        assert_eq!(cfg.predecessors(head).count(), 2);
        let dt = cfg.dominator_tree();
        assert!(dt.dominates(cfg.local(head), 3));
    }
}

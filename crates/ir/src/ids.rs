//! Id spaces of the IR.
//!
//! All ids are program-wide dense `u32` newtypes; every entity lives in an
//! arena on [`crate::Program`].

use vsfs_adt::define_index;

define_index!(
    /// A function.
    FuncId,
    "fn"
);

define_index!(
    /// A basic block (program-wide id; each block belongs to one function).
    BlockId,
    "bb"
);

define_index!(
    /// An instruction (program-wide id) — the paper's instruction label `ℓ`.
    InstId,
    "l"
);

define_index!(
    /// A top-level variable (`p, q, r ∈ P`): a stack or global pointer in
    /// SSA form.
    ValueId,
    "v"
);

define_index!(
    /// An address-taken abstract object (`o, a, b ∈ A = O ∪ F`): an
    /// allocation site, global, function, or field thereof.
    ObjId,
    "o"
);

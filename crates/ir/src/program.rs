//! The in-memory program: arenas for functions, blocks, instructions,
//! top-level values, and abstract objects.

use crate::ids::{BlockId, FuncId, InstId, ObjId, ValueId};
use crate::inst::{Block, Inst};
use std::collections::HashMap;
use vsfs_adt::IndexVec;

/// What kind of memory an abstract object models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A stack allocation site within `FuncId`.
    Stack(FuncId),
    /// A heap allocation site within `FuncId` (`malloc` and friends).
    Heap(FuncId),
    /// A global variable's storage.
    Global,
    /// A function, as the target of function pointers.
    Function(FuncId),
    /// Field `offset` of base object `base` (`f_k ∈ F`, Table I).
    Field { base: ObjId, offset: u32 },
    /// The singleton null pseudo-object. `p = null` is modelled as an
    /// allocation of this object, so "may be null" is an ordinary
    /// points-to fact and strong updates kill it like any other target.
    Null,
}

/// An abstract address-taken object (`o ∈ A`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Diagnostic name (e.g. the alloc-site name from the textual form).
    pub name: String,
    /// What the object models.
    pub kind: ObjKind,
    /// Number of modelled fields for aggregates; `0` or `1` means scalar
    /// (field accesses collapse to the object itself).
    pub num_fields: u32,
    /// Arrays (and other summarised collections) can never be strongly
    /// updated.
    pub is_array: bool,
}

impl Object {
    /// Returns `true` if this object models heap memory.
    pub fn is_heap(&self) -> bool {
        matches!(self.kind, ObjKind::Heap(_))
    }

    /// Returns `true` if this object is a function address.
    pub fn is_function(&self) -> bool {
        matches!(self.kind, ObjKind::Function(_))
    }

    /// Returns `true` if this object is a field of another object.
    pub fn is_field(&self) -> bool {
        matches!(self.kind, ObjKind::Field { .. })
    }

    /// Returns `true` if this object is the null pseudo-object.
    pub fn is_null(&self) -> bool {
        matches!(self.kind, ObjKind::Null)
    }
}

/// How a top-level value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// Defined by an instruction (filled in when the instruction is added).
    Inst(InstId),
    /// The `i`-th parameter of a function (defined by its `FUNENTRY`).
    Param(FuncId, u32),
    /// A global pointer: always points to exactly its global object.
    GlobalPtr(ObjId),
    /// Declared but not yet defined (transient during construction; the
    /// verifier rejects programs that still contain this).
    Undefined,
}

/// A top-level variable (`p ∈ P`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// Name as written in the textual form (unique within its function, or
    /// program-wide for globals).
    pub name: String,
    /// The function the value belongs to; `None` for globals.
    pub func: Option<FuncId>,
    /// The single definition of the value (partial SSA).
    pub def: ValueDef,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (without the `@`).
    pub name: String,
    /// Parameter values, defined by the `FUNENTRY` instruction.
    pub params: Vec<ValueId>,
    /// Blocks in layout order; `blocks[0]` is the entry block.
    pub blocks: Vec<BlockId>,
    /// The unique `FUNENTRY` instruction.
    pub entry_inst: InstId,
    /// The unique `FUNEXIT` instruction.
    pub exit_inst: InstId,
    /// The block holding `exit_inst`.
    pub exit_block: BlockId,
}

impl Function {
    /// The entry block.
    pub fn entry_block(&self) -> BlockId {
        self.blocks[0]
    }
}

/// A whole program.
///
/// Construct with [`crate::ProgramBuilder`] or [`crate::parse_program`];
/// all arenas are public for read access by the analyses.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All functions.
    pub functions: IndexVec<FuncId, Function>,
    /// All basic blocks.
    pub blocks: IndexVec<BlockId, Block>,
    /// All instructions.
    pub insts: IndexVec<InstId, Inst>,
    /// All top-level values.
    pub values: IndexVec<ValueId, Value>,
    /// All abstract objects (bases first, then materialised fields).
    pub objects: IndexVec<ObjId, Object>,
    /// Global variables as `(pointer value, storage object)` pairs.
    pub globals: Vec<(ValueId, ObjId)>,
    /// The program entry function (`main`).
    pub entry: Option<FuncId>,
    /// Field-object lookup: `(base, offset) -> field object`.
    pub(crate) field_map: HashMap<(ObjId, u32), ObjId>,
    /// Function-address object per function (for functions whose address
    /// is taken).
    pub(crate) func_obj: HashMap<FuncId, ObjId>,
    /// The singleton null pseudo-object, if any `null` occurs.
    pub(crate) null_obj: Option<ObjId>,
    /// Source spans (`line`, `column`), 1-based, for instructions that
    /// came from the textual form. Builder-made programs leave this empty.
    pub(crate) inst_spans: HashMap<InstId, (u32, u32)>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter_enumerated().find(|(_, f)| f.name == name).map(|(id, _)| id)
    }

    /// The entry function, panicking with a clear message if absent.
    ///
    /// # Panics
    ///
    /// Panics if the program has no entry function.
    pub fn entry_function(&self) -> FuncId {
        self.entry.expect("program has no entry function (expected `@main`)")
    }

    /// The abstract field object for `(base, offset)`.
    ///
    /// Follows the paper's `[FIELD-ADDR]` normalisation: fields of fields
    /// collapse onto the base (`o.f_i.f_j == o.f_{i+j}`), offsets are
    /// clamped to the object's declared field count, and scalar objects
    /// absorb field accesses.
    pub fn field_object(&self, base: ObjId, offset: u32) -> ObjId {
        let (root, total) = match self.objects[base].kind {
            ObjKind::Field { base: root, offset: prior } => (root, prior.saturating_add(offset)),
            _ => (base, offset),
        };
        let nf = self.objects[root].num_fields;
        if nf <= 1 || total == 0 {
            return if total == 0 { base } else { root };
        }
        let clamped = total.min(nf - 1);
        if clamped == 0 {
            return root;
        }
        *self
            .field_map
            .get(&(root, clamped))
            .expect("field objects are materialised for every declared offset")
    }

    /// The function-address object of `func`, if its address is taken
    /// anywhere in the program.
    pub fn function_object(&self, func: FuncId) -> Option<ObjId> {
        self.func_obj.get(&func).copied()
    }

    /// If `obj` is a function-address object, the function it denotes.
    pub fn object_as_function(&self, obj: ObjId) -> Option<FuncId> {
        match self.objects[obj].kind {
            ObjKind::Function(f) => Some(f),
            _ => None,
        }
    }

    /// The singleton null pseudo-object, if the program contains `null`.
    pub fn null_object(&self) -> Option<ObjId> {
        self.null_obj
    }

    /// The source span (`line`, `column`) of `inst`, if it came from the
    /// textual form.
    pub fn inst_span(&self, inst: InstId) -> Option<(u32, u32)> {
        self.inst_spans.get(&inst).copied()
    }

    /// Records the source span of `inst` (used by the parser).
    pub fn set_inst_span(&mut self, inst: InstId, line: u32, col: u32) {
        self.inst_spans.insert(inst, (line, col));
    }

    /// The base object of `obj` (itself unless it is a field).
    pub fn base_object(&self, obj: ObjId) -> ObjId {
        match self.objects[obj].kind {
            ObjKind::Field { base, .. } => base,
            _ => obj,
        }
    }

    /// Iterates the instruction ids of `func` in block layout order.
    pub fn func_insts(&self, func: FuncId) -> impl Iterator<Item = InstId> + '_ {
        self.functions[func].blocks.iter().flat_map(move |&b| self.blocks[b].insts.iter().copied())
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// A human-readable location string for diagnostics.
    pub fn inst_location(&self, inst: InstId) -> String {
        let i = &self.insts[inst];
        format!("{} in @{}:{}", inst, self.functions[i.func].name, self.blocks[i.block].name)
    }
}

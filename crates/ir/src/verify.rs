//! Partial-SSA well-formedness verification.
//!
//! Checks the structural invariants the analyses rely on:
//!
//! 1. every function has a `FUNENTRY` as the first instruction of its
//!    entry block and exactly one `FUNEXIT`, last in its (return) block;
//! 2. every block's terminator targets blocks of the same function, and
//!    only the exit block returns;
//! 3. every top-level value has exactly one definition (SSA), and the
//!    definition dominates each (non-phi) use;
//! 4. direct calls pass the number of arguments the callee declares;
//! 5. `PHI` instructions appear only at the start of a block (after any
//!    other phis).

use crate::cfg::Cfg;
use crate::defuse::DefUse;
use crate::ids::{FuncId, InstId};
use crate::inst::{Callee, InstKind, Terminator};
use crate::program::{Program, ValueDef};
use std::fmt;

/// A structural error in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description including locations.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn fail<T>(message: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError { message: message.into() })
}

/// Verifies `prog`, returning the first violated invariant.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the violated invariant and its
/// location.
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    for (func, f) in prog.functions.iter_enumerated() {
        verify_function(prog, func)?;
        let _ = f;
    }
    verify_values(prog)?;
    Ok(())
}

fn verify_function(prog: &Program, func: FuncId) -> Result<(), VerifyError> {
    let f = &prog.functions[func];
    if f.blocks.is_empty() {
        return fail(format!("@{}: function has no blocks", f.name));
    }
    // FUNENTRY first in entry block.
    let entry = f.entry_block();
    match prog.blocks[entry].insts.first() {
        Some(&i) if i == f.entry_inst => {}
        _ => return fail(format!("@{}: entry block does not start with FUNENTRY", f.name)),
    }
    if !matches!(prog.insts[f.entry_inst].kind, InstKind::FunEntry { func: ef } if ef == func) {
        return fail(format!("@{}: entry_inst is not this function's FUNENTRY", f.name));
    }
    // Exactly one FUNEXIT, last in its block, which must be the Return block.
    let mut exits = 0;
    for b in &f.blocks {
        for (pos, &i) in prog.blocks[*b].insts.iter().enumerate() {
            match prog.insts[i].kind {
                InstKind::FunExit { func: ef, .. } => {
                    exits += 1;
                    if ef != func {
                        return fail(format!("@{}: FUNEXIT of another function", f.name));
                    }
                    if i != f.exit_inst {
                        return fail(format!("@{}: multiple FUNEXIT instructions", f.name));
                    }
                    if pos + 1 != prog.blocks[*b].insts.len() {
                        return fail(format!("@{}: FUNEXIT not last in its block", f.name));
                    }
                    if !matches!(prog.blocks[*b].term, Terminator::Return) {
                        return fail(format!("@{}: FUNEXIT block does not return", f.name));
                    }
                }
                InstKind::FunEntry { .. } if i != f.entry_inst => {
                    return fail(format!("@{}: stray FUNENTRY", f.name));
                }
                _ => {}
            }
        }
        // Return terminator only in the exit block.
        if matches!(prog.blocks[*b].term, Terminator::Return) && *b != f.exit_block {
            return fail(format!(
                "@{}:{}: block returns but is not the FUNEXIT block",
                f.name, prog.blocks[*b].name
            ));
        }
        // Targets within the same function.
        for &t in prog.blocks[*b].term.successors() {
            if prog.blocks[t].func != func {
                return fail(format!(
                    "@{}:{}: branch target in another function",
                    f.name, prog.blocks[*b].name
                ));
            }
        }
        // Phis only in a leading run (after FUNENTRY if present).
        let mut seen_non_phi = false;
        for &i in &prog.blocks[*b].insts {
            match prog.insts[i].kind {
                InstKind::Phi { .. } => {
                    if seen_non_phi {
                        return fail(format!(
                            "@{}:{}: PHI after non-PHI instruction",
                            f.name, prog.blocks[*b].name
                        ));
                    }
                }
                InstKind::FunEntry { .. } => {}
                _ => seen_non_phi = true,
            }
        }
    }
    if exits != 1 {
        return fail(format!("@{}: expected exactly 1 FUNEXIT, found {exits}", f.name));
    }
    // Direct-call arity.
    for i in prog.func_insts(func) {
        if let InstKind::Call { callee: Callee::Direct(target), ref args, .. } = prog.insts[i].kind
        {
            let want = prog.functions[target].params.len();
            if args.len() != want {
                return fail(format!(
                    "{}: call to @{} passes {} args, callee declares {}",
                    prog.inst_location(i),
                    prog.functions[target].name,
                    args.len(),
                    want
                ));
            }
        }
    }
    verify_dominance(prog, func)
}

/// Checks each non-phi use is dominated by its definition.
fn verify_dominance(prog: &Program, func: FuncId) -> Result<(), VerifyError> {
    let cfg = Cfg::build(prog, func);
    let dt = cfg.dominator_tree();
    let f = &prog.functions[func];

    // Position of each instruction within its block for same-block checks.
    let pos_in_block = |inst: InstId| -> usize {
        let b = prog.insts[inst].block;
        prog.blocks[b]
            .insts
            .iter()
            .position(|&i| i == inst)
            .expect("instruction listed in its block")
    };

    for b in &f.blocks {
        for &i in &prog.blocks[*b].insts {
            if matches!(prog.insts[i].kind, InstKind::Phi { .. }) {
                // Phi operands only need *a* definition; path-sensitivity
                // of incoming edges is not modelled (branches carry no
                // condition), so dominance is not required.
                for v in prog.insts[i].kind.uses() {
                    if matches!(prog.values[v].def, ValueDef::Undefined) {
                        return fail(format!(
                            "{}: phi uses undefined value %{}",
                            prog.inst_location(i),
                            prog.values[v].name
                        ));
                    }
                }
                continue;
            }
            for v in prog.insts[i].kind.uses() {
                match prog.values[v].def {
                    ValueDef::GlobalPtr(_) => {}
                    ValueDef::Param(pf, _) => {
                        if pf != func {
                            return fail(format!(
                                "{}: uses parameter of another function (%{})",
                                prog.inst_location(i),
                                prog.values[v].name
                            ));
                        }
                    }
                    ValueDef::Undefined => {
                        return fail(format!(
                            "{}: uses undefined value %{}",
                            prog.inst_location(i),
                            prog.values[v].name
                        ));
                    }
                    ValueDef::Inst(def) => {
                        if prog.insts[def].func != func {
                            return fail(format!(
                                "{}: uses value %{} defined in another function",
                                prog.inst_location(i),
                                prog.values[v].name
                            ));
                        }
                        let db = prog.insts[def].block;
                        if db == *b {
                            if pos_in_block(def) >= pos_in_block(i) {
                                return fail(format!(
                                    "{}: use of %{} before its definition",
                                    prog.inst_location(i),
                                    prog.values[v].name
                                ));
                            }
                        } else if !dt.dominates(cfg.local(db), cfg.local(*b)) {
                            return fail(format!(
                                "{}: definition of %{} does not dominate this use",
                                prog.inst_location(i),
                                prog.values[v].name
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn verify_values(prog: &Program) -> Result<(), VerifyError> {
    // Single assignment is structural (ValueDef holds one definition); we
    // additionally check that no instruction claims to define a value whose
    // recorded def is a different instruction.
    for (id, inst) in prog.insts.iter_enumerated() {
        if let Some(d) = inst.kind.def() {
            match prog.values[d].def {
                ValueDef::Inst(rec) if rec == id => {}
                _ => {
                    return fail(format!(
                        "{}: defines %{} but the value records a different definition",
                        prog.inst_location(id),
                        prog.values[d].name
                    ));
                }
            }
        }
    }
    // Every instruction-defined value's recorded def actually defines it.
    for (v, val) in prog.values.iter_enumerated() {
        if let ValueDef::Inst(i) = val.def {
            if prog.insts[i].kind.def() != Some(v) {
                return fail(format!(
                    "%{}: recorded definition {} does not define it",
                    val.name,
                    prog.inst_location(i)
                ));
            }
        }
    }
    let _ = DefUse::compute(prog); // exercise; cheap sanity
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn ok(src: &str) {
        let prog = parse_program(src).unwrap();
        verify(&prog).unwrap();
    }

    #[test]
    fn accepts_well_formed_programs() {
        ok(r#"
        global @g
        func @helper(%x, %y) {
        entry:
          %s = alloc stack S fields 2
          store %x, %s
          ret %s
        }
        func @main() {
        entry:
          %a = alloc heap A
          %r = call @helper(%a, @g)
          br l, r
        l:
          %u = load %r
          goto done
        r:
          goto done
        done:
          ret
        }
        "#);
    }

    #[test]
    fn accepts_loops_with_phis() {
        ok(r#"
        func @main() {
        entry:
          %init = alloc stack I
          goto head
        head:
          %cur = phi %init, %next
          br body, out
        body:
          %next = copy %cur
          goto head
        out:
          ret
        }
        "#);
    }

    #[test]
    fn rejects_use_not_dominated() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              br a, b
            a:
              %x = alloc stack X
              goto join
            b:
              goto join
            join:
              %y = copy %x
              ret
            }
            "#,
        )
        .unwrap();
        let e = verify(&prog).unwrap_err();
        assert!(e.message.contains("does not dominate"), "{e}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let prog = parse_program(
            r#"
            func @f(%a) {
            entry:
              ret
            }
            func @main() {
            entry:
              call @f()
              ret
            }
            "#,
        )
        .unwrap();
        let e = verify(&prog).unwrap_err();
        assert!(e.message.contains("args"), "{e}");
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %a = alloc stack A
              goto next
            next:
              %b = copy %a
              %c = phi %a, %b
              ret
            }
            "#,
        )
        .unwrap();
        let e = verify(&prog).unwrap_err();
        assert!(e.message.contains("PHI after non-PHI"), "{e}");
    }
}

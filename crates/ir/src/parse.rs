//! Parser for the textual IR.
//!
//! # Grammar (line oriented; `//` starts a comment)
//!
//! ```text
//! program    := (global | ginit | func)*
//! global     := "global" "@" NAME ["fields" INT] ["array"]
//! ginit      := "ginit" "@" NAME "," "@" NAME      // *g = h  (h: global or function)
//! func       := "func" "@" NAME "(" ["%"NAME ("," "%"NAME)*] ")" "{" body "}"
//! body       := (LABEL ":" | inst | term)*
//! inst       := "%" NAME "=" "alloc" ("stack"|"heap") NAME ["fields" INT] ["array"]
//!             | "%" NAME "=" "funaddr" "@" NAME
//!             | "%" NAME "=" "phi" operand ("," operand)*
//!             | "%" NAME "=" "copy" operand
//!             | "%" NAME "=" "gep" operand "," INT
//!             | "%" NAME "=" "load" operand
//!             | "%" NAME "=" "null"                // p may be null (allocates the null pseudo-object)
//!             | "store" operand "," operand        // store VALUE, POINTER (LLVM order: *ptr = value)
//!             | "free" operand                     // deallocate what the operand points to
//!             | ["%" NAME "="] "call" "@" NAME "(" [operand ("," operand)*] ")"
//!             | ["%" NAME "="] "icall" operand "(" [operand ("," operand)*] ")"
//! term       := "goto" LABEL
//!             | "br" LABEL ("," LABEL)+
//!             | "ret" [operand]
//! operand    := "%" NAME     // function-local value
//!             | "@" NAME     // global pointer
//! ```
//!
//! # Error recovery
//!
//! [`parse_program_all`] collects *every* diagnostic instead of stopping
//! at the first: a bad top-level line is skipped, a bad function header
//! skips that function's body, and an error inside a body abandons the
//! rest of that body and resumes at the next function. Diagnostics carry
//! 1-based line and column positions and are sorted by source position.
//! [`parse_program`] is the single-error convenience wrapper returning
//! the first diagnostic.
//!
//! # Examples
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! global @g
//! func @main() {
//! entry:
//!   %p = alloc stack A fields 2
//!   %f1 = gep %p, 1
//!   store @g, %f1
//!   ret
//! }
//! "#)?;
//! assert_eq!(prog.globals.len(), 1);
//! # Ok::<(), vsfs_ir::ParseProgramError>(())
//! ```

use crate::build::{GInitVal, ProgramBuilder};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::program::Program;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An error produced while parsing the textual IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based source line of the error.
    pub line: usize,
    /// 1-based column (character position) of the offending token;
    /// column 1 for errors that concern the whole line (name resolution,
    /// SSA violations, structural errors).
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseProgramError {}

type PResult<T> = Result<T, ParseProgramError>;

fn perr(line: usize, message: impl Into<String>) -> ParseProgramError {
    ParseProgramError { line, column: 1, message: message.into() }
}

fn perr_at(line: usize, column: usize, message: impl Into<String>) -> ParseProgramError {
    ParseProgramError { line, column, message: message.into() }
}

fn err<T>(line: usize, message: impl Into<String>) -> PResult<T> {
    Err(perr(line, message))
}

fn err_at<T>(line: usize, column: usize, message: impl Into<String>) -> PResult<T> {
    Err(perr_at(line, column, message))
}

/// Parses a textual IR program, stopping at the first diagnostic.
///
/// # Errors
///
/// Returns the source-position-wise first syntax or name-resolution
/// error. Use [`parse_program_all`] to collect every diagnostic. The
/// result is *not* verified; run [`crate::verify::verify`] for SSA
/// well-formedness checks.
pub fn parse_program(src: &str) -> PResult<Program> {
    parse_program_all(src).map_err(|mut diags| diags.remove(0))
}

/// Parses a textual IR program, collecting **all** diagnostics.
///
/// # Errors
///
/// Returns every syntax and name-resolution error found, sorted by
/// `(line, column)` and guaranteed non-empty. The parser recovers at
/// item granularity: a malformed top-level line is skipped, a malformed
/// function header skips that function, and the first error inside a
/// body abandons the rest of that body and resumes at the next
/// function.
pub fn parse_program_all(src: &str) -> Result<Program, Vec<ParseProgramError>> {
    Parser::new(src).run()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Local(String),  // %name
    Global(String), // @name
    Int(u32),
    Punct(char),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Local(s) => write!(f, "%{s}"),
            Tok::Global(s) => write!(f, "@{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// Tokenizes one line, tracking the 1-based start column of each token.
/// Returns `(tokens, columns, end_col)` where `end_col` is one past the
/// last token (used to anchor "end of line" diagnostics).
fn tokenize(line: &str, lineno: usize) -> PResult<(Vec<Tok>, Vec<usize>, usize)> {
    let line = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    let chars: Vec<char> = line.chars().collect();
    let mut toks = Vec::new();
    let mut cols = Vec::new();
    let mut end_col = 1;
    let ident_char = |c: char| c.is_alphanumeric() || c == '_' || c == '.' || c == '$';
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i + 1; // 1-based column
        if c == '%' || c == '@' {
            i += 1;
            let mut s = String::new();
            while i < chars.len() && ident_char(chars[i]) {
                s.push(chars[i]);
                i += 1;
            }
            if s.is_empty() {
                return err_at(lineno, start, format!("expected a name after `{c}`"));
            }
            cols.push(start);
            toks.push(if c == '%' { Tok::Local(s) } else { Tok::Global(s) });
        } else if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while i < chars.len() {
                if let Some(v) = chars[i].to_digit(10) {
                    n = n * 10 + v as u64;
                    if n > u32::MAX as u64 {
                        return err_at(lineno, start, "integer literal too large");
                    }
                    i += 1;
                } else {
                    break;
                }
            }
            cols.push(start);
            toks.push(Tok::Int(n as u32));
        } else if ident_char(c) {
            let mut s = String::new();
            while i < chars.len() && ident_char(chars[i]) {
                s.push(chars[i]);
                i += 1;
            }
            cols.push(start);
            toks.push(Tok::Ident(s));
        } else if "(){},=:".contains(c) {
            i += 1;
            cols.push(start);
            toks.push(Tok::Punct(c));
        } else {
            return err_at(lineno, start, format!("unexpected character `{c}`"));
        }
        end_col = i + 1;
    }
    Ok((toks, cols, end_col))
}

/// One tokenized source line.
struct Line {
    no: usize,
    toks: Vec<Tok>,
    cols: Vec<usize>,
    end_col: usize,
}

struct Parser {
    lines: Vec<Line>,
    last_line: usize,
    pb: ProgramBuilder,
    func_ids: HashMap<String, FuncId>,
    global_vals: HashMap<String, ValueId>,
    /// Collected diagnostics; non-empty means the parse failed.
    diags: Vec<ParseProgramError>,
    /// Header line numbers of functions whose declaration failed — their
    /// bodies must be skipped in pass 2 (the function was never declared,
    /// or is a duplicate whose body slot is already taken).
    skip_bodies: HashSet<usize>,
}

/// Cursor over one line's tokens.
struct Cur<'a> {
    toks: &'a [Tok],
    cols: &'a [usize],
    end_col: usize,
    pos: usize,
    line: usize,
}

impl<'a> Cur<'a> {
    fn new(l: &'a Line) -> Self {
        Cur { toks: &l.toks, cols: &l.cols, end_col: l.end_col, pos: 0, line: l.no }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    /// Column of the token at the cursor (or just past the line's end).
    fn col_here(&self) -> usize {
        self.cols.get(self.pos).copied().unwrap_or(self.end_col)
    }

    /// Column of the most recently consumed token.
    fn col_prev(&self) -> usize {
        self.cols.get(self.pos.saturating_sub(1)).copied().unwrap_or(self.end_col)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            err_at(
                self.line,
                self.col_here(),
                format!("expected `{c}`, found {}", self.describe_here()),
            )
        }
    }

    fn expect_ident(&mut self) -> PResult<&'a str> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => err_at(
                self.line,
                self.col_prev(),
                format!("expected an identifier, found {}", self.describe_prev()),
            ),
        }
    }

    fn expect_local(&mut self) -> PResult<&'a str> {
        match self.next() {
            Some(Tok::Local(s)) => Ok(s),
            _ => err_at(
                self.line,
                self.col_prev(),
                format!("expected `%name`, found {}", self.describe_prev()),
            ),
        }
    }

    fn expect_global(&mut self) -> PResult<&'a str> {
        match self.next() {
            Some(Tok::Global(s)) => Ok(s),
            _ => err_at(
                self.line,
                self.col_prev(),
                format!("expected `@name`, found {}", self.describe_prev()),
            ),
        }
    }

    fn expect_int(&mut self) -> PResult<u32> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(*i),
            _ => err_at(
                self.line,
                self.col_prev(),
                format!("expected an integer, found {}", self.describe_prev()),
            ),
        }
    }

    fn expect_end(&self) -> PResult<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            err_at(
                self.line,
                self.col_here(),
                format!("trailing tokens starting at {}", self.describe_here()),
            )
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of line".to_string(),
        }
    }

    fn describe_prev(&self) -> String {
        match self.toks.get(self.pos.saturating_sub(1)) {
            Some(t) => format!("`{t}`"),
            None => "end of line".to_string(),
        }
    }
}

impl Parser {
    fn new(src: &str) -> Self {
        let mut lines = Vec::new();
        let mut diags = Vec::new();
        let mut last_line = 0;
        for (i, raw) in src.lines().enumerate() {
            last_line = i + 1;
            match tokenize(raw, i + 1) {
                Ok((toks, cols, end_col)) => {
                    if !toks.is_empty() {
                        lines.push(Line { no: i + 1, toks, cols, end_col });
                    }
                }
                // A lexically broken line is diagnosed and dropped; the
                // parse continues on the lines that did tokenize.
                Err(e) => diags.push(e),
            }
        }
        Parser {
            lines,
            last_line,
            pb: ProgramBuilder::new(),
            func_ids: HashMap::new(),
            global_vals: HashMap::new(),
            diags,
            skip_bodies: HashSet::new(),
        }
    }

    fn run(mut self) -> Result<Program, Vec<ParseProgramError>> {
        self.pass_declarations();
        self.pass_bodies();
        if !self.diags.is_empty() {
            let mut diags = self.diags;
            diags.sort_by_key(|d| (d.line, d.column));
            return Err(diags);
        }
        let last_line = self.last_line;
        self.pb.finish().map_err(|e| vec![perr(last_line, e.to_string())])
    }

    /// Pass 1: declare globals and function signatures so bodies can
    /// forward-reference them. Declaration errors are recorded and the
    /// parse moves on to the next top-level item.
    fn pass_declarations(&mut self) {
        let mut i = 0;
        while i < self.lines.len() {
            let first = self.lines[i].toks.first().cloned();
            match first {
                Some(Tok::Ident(k)) if k == "global" => {
                    if let Err(e) = self.decl_global(i) {
                        self.diags.push(e);
                    }
                    i += 1;
                }
                Some(Tok::Ident(k)) if k == "func" => {
                    let header = i;
                    if let Err(e) = self.decl_func(i) {
                        self.diags.push(e);
                        self.skip_bodies.insert(self.lines[header].no);
                    }
                    // Skip to the closing brace (whether or not the
                    // header declared cleanly).
                    i += 1;
                    while i < self.lines.len() {
                        if self.lines[i].toks == [Tok::Punct('}')] {
                            break;
                        }
                        i += 1;
                    }
                    if i >= self.lines.len() {
                        let name = match self.lines[header].toks.get(1) {
                            Some(Tok::Global(n)) => format!("@{n}"),
                            _ => "<anonymous>".to_string(),
                        };
                        self.diags.push(perr(
                            self.lines[header].no,
                            format!("function `{name}` missing closing `}}`"),
                        ));
                        self.skip_bodies.insert(self.lines[header].no);
                    } else {
                        i += 1;
                    }
                }
                _ => {
                    // ginit lines handled in pass 2; skip everything else.
                    i += 1;
                }
            }
        }
    }

    fn decl_global(&mut self, i: usize) -> PResult<()> {
        let line = &self.lines[i];
        let mut cur = Cur::new(line);
        cur.next(); // global
        let name = cur.expect_global()?.to_string();
        let mut fields = 1;
        let mut array = false;
        loop {
            match cur.peek() {
                Some(Tok::Ident(w)) if w == "fields" => {
                    cur.next();
                    fields = cur.expect_int()?;
                }
                Some(Tok::Ident(w)) if w == "array" => {
                    cur.next();
                    array = true;
                }
                _ => break,
            }
        }
        cur.expect_end()?;
        if self.global_vals.contains_key(&name) {
            return err(line.no, format!("duplicate global `@{name}`"));
        }
        let (v, _) = self.pb.add_global(&name, fields, array);
        self.global_vals.insert(name, v);
        Ok(())
    }

    fn decl_func(&mut self, i: usize) -> PResult<()> {
        let line = &self.lines[i];
        let mut cur = Cur::new(line);
        cur.next(); // func
        let name = cur.expect_global()?.to_string();
        cur.expect_punct('(')?;
        let mut params = Vec::new();
        if !cur.eat_punct(')') {
            loop {
                params.push(cur.expect_local()?.to_string());
                if cur.eat_punct(')') {
                    break;
                }
                cur.expect_punct(',')?;
            }
        }
        cur.expect_punct('{')?;
        cur.expect_end()?;
        if self.func_ids.contains_key(&name) {
            return err(line.no, format!("duplicate function `@{name}`"));
        }
        let f = self.pb.declare_function(&name, params.len());
        for (pi, pname) in params.iter().enumerate() {
            self.pb.rename_param(f, pi, pname);
        }
        self.func_ids.insert(name, f);
        Ok(())
    }

    /// Pass 2: parse ginits and function bodies. An error inside a body
    /// abandons the rest of that body; parsing resumes at the next
    /// top-level item.
    fn pass_bodies(&mut self) {
        let lines = std::mem::take(&mut self.lines);
        let mut i = 0;
        while i < lines.len() {
            let line = &lines[i];
            match line.toks.first() {
                Some(Tok::Ident(k)) if k == "ginit" => {
                    if let Err(e) = self.parse_ginit(line) {
                        self.diags.push(e);
                    }
                    i += 1;
                }
                Some(Tok::Ident(k)) if k == "global" => {
                    i += 1; // handled in pass 1
                }
                Some(Tok::Ident(k)) if k == "func" => {
                    // Find body extent.
                    let mut end = i + 1;
                    while end < lines.len() && lines[end].toks != [Tok::Punct('}')] {
                        end += 1;
                    }
                    if !self.skip_bodies.contains(&line.no) {
                        if let Err(e) = self.parse_body(line, &lines[i + 1..end]) {
                            self.diags.push(e);
                        }
                    }
                    i = end + 1;
                }
                _ => {
                    let cur = Cur::new(line);
                    self.diags.push(perr_at(
                        line.no,
                        cur.col_here(),
                        format!("unexpected top-level line starting with {}", cur.describe_here()),
                    ));
                    i += 1;
                }
            }
        }
    }

    fn parse_ginit(&mut self, line: &Line) -> PResult<()> {
        let mut cur = Cur::new(line);
        cur.next(); // ginit
        let g = cur.expect_global()?;
        let gv = *self
            .global_vals
            .get(g)
            .ok_or_else(|| perr(line.no, format!("unknown global `@{g}`")))?;
        cur.expect_punct(',')?;
        let src = cur.expect_global()?;
        cur.expect_end()?;
        let val = if let Some(&v) = self.global_vals.get(src) {
            GInitVal::Global(v)
        } else if let Some(&f) = self.func_ids.get(src) {
            GInitVal::Func(f)
        } else {
            return err(line.no, format!("unknown global or function `@{src}`"));
        };
        self.pb.ginit(gv, val);
        Ok(())
    }

    fn parse_body(&mut self, header: &Line, body: &[Line]) -> PResult<()> {
        let mut cur = Cur::new(header);
        cur.next(); // func
        let fname = cur.expect_global()?.to_string();
        let Some(&func) = self.func_ids.get(&fname) else {
            return Ok(()); // header never declared; already diagnosed
        };

        // Pre-scan labels.
        let is_label = |l: &Line| {
            l.toks.len() == 2 && matches!(&l.toks[0], Tok::Ident(_)) && l.toks[1] == Tok::Punct(':')
        };
        let mut fb = self.pb.build_function(func);
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        if body.is_empty() || !is_label(&body[0]) {
            return err(
                header.no,
                format!("function `@{fname}` body must start with a block label"),
            );
        }
        for l in body {
            if is_label(l) {
                let Tok::Ident(name) = &l.toks[0] else { unreachable!() };
                if block_ids.contains_key(name) {
                    return err(l.no, format!("duplicate block label `{name}`"));
                }
                block_ids.insert(name.clone(), fb.block(name));
            }
        }

        // Local value scope: params first.
        let mut locals: HashMap<String, ValueId> = HashMap::new();
        let nparams = {
            let mut c = Cur::new(header);
            c.next();
            c.next();
            c.expect_punct('(')?;
            let mut names = Vec::new();
            if !c.eat_punct(')') {
                loop {
                    names.push(c.expect_local()?.to_string());
                    if c.eat_punct(')') {
                        break;
                    }
                    c.expect_punct(',')?;
                }
            }
            names
        };
        for (pi, pname) in nparams.iter().enumerate() {
            if locals.insert(pname.clone(), fb.param(pi)).is_some() {
                return err(header.no, format!("duplicate parameter `%{pname}`"));
            }
        }

        let globals = &self.global_vals;
        let func_ids = &self.func_ids;
        let lookup =
            |locals: &HashMap<String, ValueId>, t: &Tok, lineno: usize| -> PResult<ValueId> {
                match t {
                    Tok::Local(n) => locals
                        .get(n)
                        .copied()
                        .ok_or_else(|| perr(lineno, format!("use of undefined value `%{n}`"))),
                    Tok::Global(n) => globals
                        .get(n)
                        .copied()
                        .ok_or_else(|| perr(lineno, format!("unknown global `@{n}`"))),
                    other => err(lineno, format!("expected an operand, found `{other}`")),
                }
            };

        let mut in_block = false;
        let mut pending_phis: Vec<(crate::ids::InstId, usize, String, usize)> = Vec::new();
        for l in body {
            let mut c = Cur::new(l);
            if is_label(l) {
                let Tok::Ident(name) = &l.toks[0] else { unreachable!() };
                fb.switch_to(block_ids[name]);
                in_block = true;
                continue;
            }
            if !in_block {
                return err(l.no, "instruction outside of a block (missing label?)");
            }
            let span_mark = fb.next_inst();
            let span_col = l.cols.first().copied().unwrap_or(1) as u32;
            let define = |fbv: &mut HashMap<String, ValueId>,
                          name: &str,
                          v: ValueId,
                          lineno: usize|
             -> PResult<()> {
                if fbv.insert(name.to_string(), v).is_some() {
                    return err(
                        lineno,
                        format!("value `%{name}` assigned twice (IR must be in SSA form)"),
                    );
                }
                Ok(())
            };
            match c.peek() {
                Some(Tok::Local(_)) => {
                    let dst = c.expect_local()?.to_string();
                    c.expect_punct('=')?;
                    let op = c.expect_ident()?;
                    match op {
                        "alloc" => {
                            let kind = c.expect_ident()?;
                            let obj = c.expect_ident()?.to_string();
                            let mut fields = 1;
                            let mut array = false;
                            loop {
                                match c.peek() {
                                    Some(Tok::Ident(w)) if w == "fields" => {
                                        c.next();
                                        fields = c.expect_int()?;
                                    }
                                    Some(Tok::Ident(w)) if w == "array" => {
                                        c.next();
                                        array = true;
                                    }
                                    _ => break,
                                }
                            }
                            c.expect_end()?;
                            let v = match kind {
                                "stack" => fb.alloc_stack(&dst, &obj, fields, array),
                                "heap" => fb.alloc_heap(&dst, &obj, fields, array),
                                other => {
                                    return err(
                                        l.no,
                                        format!(
                                        "unknown alloc kind `{other}` (expected `stack` or `heap`)"
                                    ),
                                    )
                                }
                            };
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "funaddr" => {
                            let fname = c.expect_global()?;
                            c.expect_end()?;
                            let target = *func_ids.get(fname).ok_or_else(|| {
                                perr(l.no, format!("unknown function `@{fname}`"))
                            })?;
                            let v = fb.funaddr(&dst, target);
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "phi" => {
                            // Phi operands may forward-reference values
                            // defined later (loop back-edges): collect
                            // names, emit with placeholders, patch after
                            // the whole body has been parsed.
                            let mut ops: Vec<Tok> = Vec::new();
                            loop {
                                let t = c
                                    .next()
                                    .cloned()
                                    .ok_or_else(|| perr(l.no, "phi needs at least one operand"))?;
                                ops.push(t);
                                if !c.eat_punct(',') {
                                    break;
                                }
                            }
                            c.expect_end()?;
                            let mut srcs = Vec::with_capacity(ops.len());
                            let mut unresolved: Vec<(usize, String)> = Vec::new();
                            for (idx, t) in ops.iter().enumerate() {
                                match t {
                                    Tok::Local(n) if !locals.contains_key(n) => {
                                        unresolved.push((idx, n.clone()));
                                        srcs.push(ValueId::new(u32::MAX)); // placeholder
                                    }
                                    _ => srcs.push(lookup(&locals, t, l.no)?),
                                }
                            }
                            let v = fb.phi(&dst, &srcs);
                            // Self-reference placeholders until patched.
                            let inst = fb.def_inst_of(v).expect("phi defines its dst");
                            for &(idx, _) in &unresolved {
                                fb.patch_phi_operand(inst, idx, v);
                            }
                            for (idx, name) in unresolved {
                                pending_phis.push((inst, idx, name, l.no));
                            }
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "copy" => {
                            let t = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "copy needs an operand"))?;
                            c.expect_end()?;
                            let src = lookup(&locals, &t, l.no)?;
                            let v = fb.copy(&dst, src);
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "gep" => {
                            let t = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "gep needs an operand"))?;
                            let base = lookup(&locals, &t, l.no)?;
                            c.expect_punct(',')?;
                            let off = c.expect_int()?;
                            c.expect_end()?;
                            let v = fb.gep(&dst, base, off);
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "load" => {
                            let t = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "load needs an operand"))?;
                            c.expect_end()?;
                            let addr = lookup(&locals, &t, l.no)?;
                            let v = fb.load(&dst, addr);
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "null" => {
                            c.expect_end()?;
                            let v = fb.null_ptr(&dst);
                            define(&mut locals, &dst, v, l.no)?;
                        }
                        "call" | "icall" => {
                            let v = self_parse_call(
                                &mut c,
                                op,
                                Some(&dst),
                                &mut fb,
                                &locals,
                                func_ids,
                                globals,
                                l.no,
                            )?;
                            define(
                                &mut locals,
                                &dst,
                                v.expect("call with dst returns a value"),
                                l.no,
                            )?;
                        }
                        other => return err(l.no, format!("unknown instruction `{other}`")),
                    }
                }
                Some(Tok::Ident(k)) => {
                    let k = k.clone();
                    c.next();
                    match k.as_str() {
                        "store" => {
                            let tv = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "store needs two operands"))?;
                            let val = lookup(&locals, &tv, l.no)?;
                            c.expect_punct(',')?;
                            let tp = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "store needs a pointer operand"))?;
                            let addr = lookup(&locals, &tp, l.no)?;
                            c.expect_end()?;
                            fb.store(val, addr);
                        }
                        "free" => {
                            let t = c
                                .next()
                                .cloned()
                                .ok_or_else(|| perr(l.no, "free needs an operand"))?;
                            let ptr = lookup(&locals, &t, l.no)?;
                            c.expect_end()?;
                            fb.free(ptr);
                        }
                        "call" | "icall" => {
                            self_parse_call(
                                &mut c, &k, None, &mut fb, &locals, func_ids, globals, l.no,
                            )?;
                        }
                        "goto" => {
                            let label = c.expect_ident()?;
                            c.expect_end()?;
                            let target = *block_ids.get(label).ok_or_else(|| {
                                perr(l.no, format!("unknown block label `{label}`"))
                            })?;
                            fb.goto(target);
                            in_block = false;
                        }
                        "br" => {
                            let mut targets = Vec::new();
                            loop {
                                let label = c.expect_ident()?;
                                targets.push(*block_ids.get(label).ok_or_else(|| {
                                    perr(l.no, format!("unknown block label `{label}`"))
                                })?);
                                if !c.eat_punct(',') {
                                    break;
                                }
                            }
                            c.expect_end()?;
                            if targets.len() < 2 {
                                return err(
                                    l.no,
                                    "br needs at least two targets; use goto for one",
                                );
                            }
                            fb.br(&targets);
                            in_block = false;
                        }
                        "ret" => {
                            let ret = match c.next() {
                                None => None,
                                Some(t) => {
                                    let t = t.clone();
                                    c.expect_end()?;
                                    Some(lookup(&locals, &t, l.no)?)
                                }
                            };
                            fb.ret(ret);
                            in_block = false;
                        }
                        other => return err(l.no, format!("unknown instruction `{other}`")),
                    }
                }
                _ => {
                    return err_at(
                        l.no,
                        c.col_here(),
                        format!("cannot parse line starting with {}", c.describe_here()),
                    )
                }
            }
            fb.set_spans_since(span_mark, l.no as u32, span_col);
        }
        for (inst, idx, name, lineno) in pending_phis {
            let v = *locals
                .get(&name)
                .ok_or_else(|| perr(lineno, format!("use of undefined value `%{name}` in phi")))?;
            fb.patch_phi_operand(inst, idx, v);
        }
        Ok(())
    }
}

/// Parses the tail of a `call`/`icall` after the mnemonic token.
#[allow(clippy::too_many_arguments)]
fn self_parse_call(
    c: &mut Cur<'_>,
    op: &str,
    dst: Option<&str>,
    fb: &mut crate::build::FunctionBuilder<'_>,
    locals: &HashMap<String, ValueId>,
    func_ids: &HashMap<String, FuncId>,
    globals: &HashMap<String, ValueId>,
    lineno: usize,
) -> PResult<Option<ValueId>> {
    let lookup = |t: &Tok| -> PResult<ValueId> {
        match t {
            Tok::Local(n) => locals
                .get(n)
                .copied()
                .ok_or_else(|| perr(lineno, format!("use of undefined value `%{n}`"))),
            Tok::Global(n) => globals
                .get(n)
                .copied()
                .ok_or_else(|| perr(lineno, format!("unknown global `@{n}`"))),
            other => err(lineno, format!("expected an operand, found `{other}`")),
        }
    };
    enum Target {
        Direct(FuncId),
        Indirect(ValueId),
    }
    let target = if op == "call" {
        let name = c.expect_global()?;
        Target::Direct(
            *func_ids
                .get(name)
                .ok_or_else(|| perr(lineno, format!("unknown function `@{name}`")))?,
        )
    } else {
        let t = c
            .next()
            .cloned()
            .ok_or_else(|| perr(lineno, "icall needs a function-pointer operand"))?;
        Target::Indirect(lookup(&t)?)
    };
    c.expect_punct('(')?;
    let mut args = Vec::new();
    if !c.eat_punct(')') {
        loop {
            let t = c.next().cloned().ok_or_else(|| perr(lineno, "unterminated argument list"))?;
            args.push(lookup(&t)?);
            if c.eat_punct(')') {
                break;
            }
            c.expect_punct(',')?;
        }
    }
    c.expect_end()?;
    Ok(match target {
        Target::Direct(f) => fb.call(dst, f, &args),
        Target::Indirect(v) => fb.icall(dst, v, &args),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Callee, InstKind};

    #[test]
    fn parses_figure1_style_program() {
        // The paper's Figure 1: p = &a; ...; *p = q; x = *p; style code.
        let prog = parse_program(
            r#"
            // Figure-1-like example
            func @main() {
            entry:
              %p = alloc stack a
              %q = alloc heap b
              store %q, %p          // *p = q
              %x = load %p          // x = *p
              br left, right
            left:
              %y = copy %x
              goto join
            right:
              %z = copy %x
              goto join
            join:
              %w = phi %y, %z
              ret %w
            }
            "#,
        )
        .unwrap();
        assert_eq!(prog.functions.len(), 1);
        let main = prog.entry_function();
        assert_eq!(prog.functions[main].blocks.len(), 4);
        // funentry, alloc, alloc, store, load in entry
        let entry = prog.functions[main].entry_block();
        assert_eq!(prog.blocks[entry].insts.len(), 5);
        assert_eq!(prog.objects.len(), 2);
    }

    #[test]
    fn parses_calls_and_globals() {
        let prog = parse_program(
            r#"
            global @g fields 2
            global @h array
            ginit @g, @h
            ginit @h, @callee

            func @callee(%x) {
            entry:
              ret %x
            }

            func @main() {
            entry:
              %fp = funaddr @callee
              %r1 = call @callee(@g)
              %r2 = icall %fp(%r1)
              ret
            }
            "#,
        )
        .unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.functions.len(), 2);
        let main = prog.entry_function();
        let callee = prog.function_by_name("callee").unwrap();
        let calls: Vec<&InstKind> = prog
            .func_insts(main)
            .map(|i| &prog.insts[i].kind)
            .filter(|k| matches!(k, InstKind::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(
            matches!(calls[0], InstKind::Call { callee: Callee::Direct(f), .. } if *f == callee)
        );
        assert!(matches!(calls[1], InstKind::Call { callee: Callee::Indirect(_), .. }));
        // ginit lowering put stores into main's entry.
        let entry = prog.functions[main].entry_block();
        let stores =
            prog.blocks[entry].insts.iter().filter(|&&i| prog.insts[i].kind.is_store()).count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn forward_function_references_work() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              call @later()
              ret
            }
            func @later() {
            entry:
              ret
            }
            "#,
        )
        .unwrap();
        assert_eq!(prog.functions.len(), 2);
    }

    #[test]
    fn rejects_double_assignment() {
        let e = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack a
              %p = alloc stack b
              ret
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("assigned twice"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn rejects_undefined_value() {
        let e = parse_program(
            r#"
            func @main() {
            entry:
              %x = load %nope
              ret
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("undefined value"), "{e}");
    }

    #[test]
    fn rejects_unknown_label() {
        let e = parse_program(
            r#"
            func @main() {
            entry:
              goto nowhere
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown block label"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee() {
        let e = parse_program(
            r#"
            func @main() {
            entry:
              call @ghost()
              ret
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn rejects_missing_brace() {
        let e = parse_program("func @main() {\nentry:\n  ret\n").unwrap_err();
        assert!(e.message.contains("missing closing"), "{e}");
    }

    #[test]
    fn gep_with_fields() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %s = alloc stack S fields 3
              %f2 = gep %s, 2
              store %s, %f2
              ret
            }
            "#,
        )
        .unwrap();
        // base S + 2 field objects
        assert_eq!(prog.objects.len(), 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::inst::InstKind;

    #[test]
    fn globals_usable_as_any_operand() {
        let prog = parse_program(
            r#"
            global @g
            global @h
            func @take(%a, %b) {
            entry:
              ret %a
            }
            func @main() {
            entry:
              store @g, @h
              %x = load @g
              %y = copy @h
              %f = gep @g, 1
              %r = call @take(@g, @h)
              ret
            }
            "#,
        )
        .unwrap();
        assert_eq!(prog.globals.len(), 2);
        crate::verify::verify(&prog).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let prog = parse_program(
            "\n// leading comment\nfunc @main() { // trailing\nentry:\n// mid\n  ret\n}\n// post\n",
        )
        .unwrap();
        assert_eq!(prog.functions.len(), 1);
    }

    #[test]
    fn rejects_duplicate_globals_and_functions() {
        let e =
            parse_program("global @g\nglobal @g\nfunc @main() {\nentry:\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("duplicate global"), "{e}");
        let e = parse_program("func @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate function"), "{e}");
    }

    #[test]
    fn rejects_duplicate_block_labels_and_params() {
        let e =
            parse_program("func @main() {\nentry:\n  goto entry\nentry:\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("duplicate block label"), "{e}");
        let e = parse_program("func @main(%a, %a) {\nentry:\n  ret %a\n}\n").unwrap_err();
        assert!(e.message.contains("duplicate parameter"), "{e}");
    }

    #[test]
    fn ginit_accepts_functions_and_globals_only() {
        let e = parse_program("global @g\nginit @g, @nothing\nfunc @main() {\nentry:\n  ret\n}\n")
            .unwrap_err();
        assert!(e.message.contains("unknown global or function"), "{e}");
    }

    #[test]
    fn multiway_branch_parses() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              br a, b, c
            a:
              goto done
            b:
              goto done
            c:
              goto done
            done:
              ret
            }
            "#,
        )
        .unwrap();
        let entry = prog.functions[prog.entry_function()].entry_block();
        assert_eq!(prog.blocks[entry].term.successors().len(), 3);
    }

    #[test]
    fn alloc_modifiers_parse_in_any_order() {
        let prog = parse_program(
            "func @main() {\nentry:\n  %a = alloc heap H array fields 4\n  %b = alloc stack S fields 2 array\n  ret\n}\n",
        )
        .unwrap();
        let h = prog.objects.iter().find(|o| o.name == "H").unwrap();
        assert!(h.is_array && h.num_fields == 4);
        let s = prog.objects.iter().find(|o| o.name == "S").unwrap();
        assert!(s.is_array && s.num_fields == 2);
        let _ = matches!(prog.insts.iter().next().unwrap().kind, InstKind::FunEntry { .. });
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    #[test]
    fn collects_one_diagnostic_per_broken_function() {
        // Three functions with one error each, plus a healthy one:
        // every error is reported, with ascending line numbers.
        let diags = parse_program_all(
            "func @a() {\nentry:\n  frobnicate\n  ret\n}\n\
             func @b() {\nentry:\n  %x = load %nope\n  ret\n}\n\
             func @c() {\nentry:\n  goto nowhere\n}\n\
             func @main() {\nentry:\n  ret\n}\n",
        )
        .unwrap_err();
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags[0].message.contains("unknown instruction"), "{}", diags[0]);
        assert!(diags[1].message.contains("undefined value"), "{}", diags[1]);
        assert!(diags[2].message.contains("unknown block label"), "{}", diags[2]);
        assert!(diags.windows(2).all(|w| w[0].line < w[1].line), "{diags:?}");
    }

    #[test]
    fn body_error_abandons_rest_of_that_body_only() {
        // Two errors inside @a: only the first is reported (the body is
        // abandoned); the error in @b is still found.
        let diags = parse_program_all(
            "func @a() {\nentry:\n  bogus_one\n  bogus_two\n  ret\n}\n\
             func @b() {\nentry:\n  %x = load %nope\n  ret\n}\n",
        )
        .unwrap_err();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[1].message.contains("undefined value"), "{}", diags[1]);
    }

    #[test]
    fn broken_header_skips_body_without_cascading() {
        // @a's header is malformed; its body must not be parsed against
        // a half-declared function, and @main still parses cleanly.
        let diags = parse_program_all(
            "func @a(%x {\nentry:\n  ret %x\n}\nfunc @main() {\nentry:\n  ret\n}\n",
        )
        .unwrap_err();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn duplicate_function_body_is_not_built_twice() {
        // The duplicate's body must be skipped (building it against the
        // first declaration would abort), leaving exactly one diagnostic.
        let diags =
            parse_program_all("func @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}\n")
                .unwrap_err();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("duplicate function"), "{}", diags[0]);
    }

    #[test]
    fn tokenizer_errors_are_collected_and_positioned() {
        // `?` at column 12 of line 3; the undefined value on line 8 of
        // the next function is still reported.
        let diags = parse_program_all(
            "func @a() {\nentry:\n  %x = load ?\n  ret\n}\n\
             func @b() {\nentry:\n  %y = load %nope\n  ret\n}\n",
        )
        .unwrap_err();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!((diags[0].line, diags[0].column), (3, 13), "{}", diags[0]);
        assert!(diags[0].message.contains("unexpected character"), "{}", diags[0]);
        assert!(diags[1].message.contains("undefined value"), "{}", diags[1]);
    }

    #[test]
    fn syntax_errors_carry_token_columns() {
        // Missing `=` after `%p`: the diagnostic points at the token
        // where `=` was expected.
        let diags = parse_program_all("func @main() {\nentry:\n  %p alloc stack A\n  ret\n}\n")
            .unwrap_err();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].column, 6, "{}", diags[0]);
        assert!(diags[0].message.contains("expected `=`"), "{}", diags[0]);
        // Display renders line:column.
        assert!(diags[0].to_string().contains("line 3:6"), "{}", diags[0]);
    }

    #[test]
    fn first_sorted_diagnostic_is_the_single_error() {
        // parse_program returns the position-wise first diagnostic even
        // when a later-line error is discovered first (declaration pass
        // runs before bodies).
        let e = parse_program(
            "func @a() {\nentry:\n  bogus\n  ret\n}\nfunc @a() {\nentry:\n  ret\n}\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("unknown instruction"), "{e}");
    }
}

//! The interprocedural control-flow graph (ICFG) at instruction
//! granularity.
//!
//! Traditional (non-staged) flow-sensitive pointer analysis runs directly
//! on this graph (Section IV-A of the paper, equations (4)–(5)); the
//! staged analyses only use it indirectly, via the SVFG. Nodes are
//! instructions; edges are:
//!
//! * consecutive instructions within a block;
//! * block terminator edges (last instruction → first of each successor);
//! * call edges (call instruction → callee `FUNENTRY`) and return edges
//!   (callee `FUNEXIT` → the instruction after the call), for every
//!   `(call, callee)` pair the provided call graph admits.
//!
//! A call instruction has **no** fall-through edge — control always
//! passes through a callee — unless the call graph knows no callee for
//! it (an unresolved indirect call), in which case a fall-through keeps
//! the rest of the caller reachable.

use crate::ids::{FuncId, InstId};
use crate::inst::InstKind;
use crate::program::Program;
use std::collections::HashMap;
use vsfs_adt::IndexVec;

/// The instruction-level interprocedural CFG.
#[derive(Debug, Clone)]
pub struct Icfg {
    succs: IndexVec<InstId, Vec<InstId>>,
    preds: IndexVec<InstId, Vec<InstId>>,
    /// The instruction control returns to after each call.
    return_site: HashMap<InstId, InstId>,
    edge_count: usize,
}

impl Icfg {
    /// Builds the ICFG of `prog` using `callees` to resolve call targets
    /// (pass the auxiliary call graph's resolution).
    pub fn build(prog: &Program, callees: impl Fn(InstId) -> Vec<FuncId>) -> Icfg {
        let n = prog.insts.len();
        let mut icfg = Icfg {
            succs: (0..n).map(|_| Vec::new()).collect(),
            preds: (0..n).map(|_| Vec::new()).collect(),
            return_site: HashMap::new(),
            edge_count: 0,
        };
        // First instruction(s) reached when control enters a block;
        // empty blocks (label + terminator only) are skipped through
        // transitively.
        fn block_starts(
            prog: &Program,
            b: crate::ids::BlockId,
            seen: &mut Vec<crate::ids::BlockId>,
            out: &mut Vec<InstId>,
        ) {
            if seen.contains(&b) {
                return;
            }
            seen.push(b);
            match prog.blocks[b].insts.first() {
                Some(&i) => {
                    if !out.contains(&i) {
                        out.push(i);
                    }
                }
                None => {
                    for &sb in prog.blocks[b].term.successors() {
                        block_starts(prog, sb, seen, out);
                    }
                }
            }
        }
        for (_f, fun) in prog.functions.iter_enumerated() {
            for &b in &fun.blocks {
                let insts = &prog.blocks[b].insts;
                for (i, &cur) in insts.iter().enumerate() {
                    // The node control flows to after `cur` completes
                    // within the function.
                    let local_next: Vec<InstId> = if i + 1 < insts.len() {
                        vec![insts[i + 1]]
                    } else {
                        let mut out = Vec::new();
                        for &sb in prog.blocks[b].term.successors() {
                            block_starts(prog, sb, &mut Vec::new(), &mut out);
                        }
                        out
                    };
                    if let InstKind::Call { .. } = prog.insts[cur].kind {
                        let targets = callees(cur);
                        // NOTE: partial-SSA blocks always have a next
                        // instruction after a call within the function
                        // (at minimum the FUNEXIT block's instruction),
                        // but a call could be last in a block with
                        // multiple successors; we then use each successor
                        // start as a return site. For simplicity the
                        // return edge targets every local successor.
                        if targets.is_empty() {
                            for &nx in &local_next {
                                icfg.add_edge(cur, nx);
                            }
                        } else {
                            if let Some(&first) = local_next.first() {
                                icfg.return_site.insert(cur, first);
                            }
                            for callee in targets {
                                let f = &prog.functions[callee];
                                icfg.add_edge(cur, f.entry_inst);
                                for &nx in &local_next {
                                    icfg.add_edge(f.exit_inst, nx);
                                }
                            }
                        }
                    } else {
                        for &nx in &local_next {
                            icfg.add_edge(cur, nx);
                        }
                    }
                }
            }
        }
        icfg
    }

    fn add_edge(&mut self, from: InstId, to: InstId) {
        if self.succs[from].contains(&to) {
            return;
        }
        self.succs[from].push(to);
        self.preds[to].push(from);
        self.edge_count += 1;
    }

    /// Successor instructions of `inst`.
    pub fn successors(&self, inst: InstId) -> &[InstId] {
        &self.succs[inst]
    }

    /// Predecessor instructions of `inst`.
    pub fn predecessors(&self, inst: InstId) -> &[InstId] {
        &self.preds[inst]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The (first) instruction control returns to after `call`.
    pub fn return_site(&self, call: InstId) -> Option<InstId> {
        self.return_site.get(&call).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn intraprocedural_edges() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              br l, r
            l:
              %x = copy %p
              goto join
            r:
              goto join
            join:
              ret
            }
            "#,
        )
        .unwrap();
        let icfg = Icfg::build(&prog, |_| Vec::new());
        let main = prog.entry_function();
        let entry = prog.functions[main].entry_inst;
        // funentry -> alloc
        assert_eq!(icfg.successors(entry).len(), 1);
        let alloc = icfg.successors(entry)[0];
        // alloc is last in entry block: two successors (l, r starts)
        assert_eq!(icfg.successors(alloc).len(), 2);
        // join's ret (funexit) has two preds
        let exit = prog.functions[main].exit_inst;
        assert_eq!(icfg.predecessors(exit).len(), 2);
        assert!(icfg.successors(exit).is_empty());
    }

    #[test]
    fn call_and_return_edges() {
        let prog = parse_program(
            r#"
            func @callee(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %a = alloc heap H
              %r = call @callee(%a)
              %c = copy %r
              ret
            }
            "#,
        )
        .unwrap();
        let callee = prog.function_by_name("callee").unwrap();
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let icfg = Icfg::build(&prog, |c| if c == call { vec![callee] } else { Vec::new() });
        let centry = prog.functions[callee].entry_inst;
        let cexit = prog.functions[callee].exit_inst;
        // call -> callee entry; no fall-through past the call.
        assert_eq!(icfg.successors(call), &[centry]);
        // callee exit -> the copy after the call.
        let ret_site = icfg.return_site(call).unwrap();
        assert!(matches!(prog.insts[ret_site].kind, InstKind::Copy { .. }));
        assert_eq!(icfg.successors(cexit), &[ret_site]);
    }

    #[test]
    fn unresolved_indirect_calls_fall_through() {
        let prog = parse_program(
            r#"
            func @main(%fp) {
            entry:
              icall %fp()
              %p = alloc stack A
              ret
            }
            "#,
        )
        .unwrap();
        let icfg = Icfg::build(&prog, |_| Vec::new());
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(icfg.successors(call).len(), 1, "fall-through keeps caller reachable");
    }
}

//! Concurrent Unix-socket serving (DESIGN.md §12): bounded admission
//! with typed shedding, bit-identical responses under concurrency, and
//! graceful drain on shutdown.
//!
//! The overload test is *deterministic*, not timing-tuned: a worker
//! owns a connection for the connection's lifetime, so with one worker
//! and a queue depth of one, a connected client plus one queued
//! connection provably saturates the server — the third connection
//! must be shed.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vsfs_server::json::{self, Json};
use vsfs_server::{Server, ServerConfig};

fn code_of(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("code")?.as_str()
}

/// A tiny program with a queryable value: `pts %p` → `{A}`.
const PROGRAM: &str = "func @f() {\nentry:\n  %p = alloc stack A\n  ret\n}\n";

fn sock_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vsfs-conc-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts `run_unix` on its own thread with the test program preloaded.
fn spawn_server(path: &Path, config: ServerConfig) -> std::thread::JoinHandle<std::io::Result<()>> {
    let path = path.to_path_buf();
    std::thread::spawn(move || {
        let mut server = Server::with_config(config);
        let load = format!(
            "{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}",
            Json::Str(PROGRAM.to_string()).to_line()
        );
        let (resp, _) = server.handle_line(&load);
        assert!(resp.contains("\"ok\":true"), "preload failed: {resp}");
        server.run_unix(&path)
    })
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects, retrying while the server thread is still binding.
    fn connect(path: &Path) -> Client {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .expect("set_read_timeout");
                    let writer = stream.try_clone().expect("clone stream");
                    return Client { writer, reader: BufReader::new(stream) };
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("connect {}: {e}", path.display()),
            }
        }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write request");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server hung up without a response");
        resp.trim_end().to_string()
    }
}

/// The read-only request mix every client replays. Includes an error
/// case (`unknown_value`) on purpose: failures must be just as
/// deterministic as successes.
const REQUESTS: &[&str] = &[
    r#"{"op":"ping"}"#,
    r#"{"op":"stats","id":"w"}"#,
    r#"{"op":"pts","id":"w","value":"%p"}"#,
    r#"{"op":"alias","id":"w","p":"%p","q":"%p"}"#,
    r#"{"op":"pts","id":"w","value":"%missing"}"#,
    r#"{"op":"check","id":"w"}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"pts","id":"ghost","value":"%p"}"#,
];

#[test]
fn concurrent_clients_are_bit_identical_to_sequential() {
    let path = sock_path("identical");
    let config = ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() };
    let handle = spawn_server(&path, config);

    // Sequential baseline over the real transport.
    let mut probe = Client::connect(&path);
    let baseline: Vec<String> = REQUESTS.iter().map(|r| probe.send(r)).collect();
    for (req, resp) in REQUESTS.iter().zip(&baseline) {
        assert!(resp.starts_with("{\"ok\":"), "{req} -> {resp}");
    }
    drop(probe);

    // Four clients replay the same mix concurrently, twice over.
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(&path);
                    let mut got = Vec::new();
                    for _ in 0..2 {
                        got.extend(REQUESTS.iter().map(|r| client.send(r)));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for (i, transcript) in transcripts.iter().enumerate() {
        assert_eq!(transcript.len(), baseline.len() * 2);
        for (j, resp) in transcript.iter().enumerate() {
            assert_eq!(
                resp,
                &baseline[j % baseline.len()],
                "client {i}, request {j}: concurrent response diverged from sequential"
            );
        }
    }

    let mut closer = Client::connect(&path);
    let bye = closer.send(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    handle.join().expect("server thread").expect("run_unix");
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

#[test]
fn overload_sheds_with_typed_error_and_drain_is_graceful() {
    let path = sock_path("overload");
    let config =
        ServerConfig { workers: 1, queue_depth: 1, retry_after_ms: 200, ..ServerConfig::default() };
    let handle = spawn_server(&path, config);

    // A occupies the only worker (response proves the worker took it)…
    let mut a = Client::connect(&path);
    let pong = a.send(r#"{"op":"ping"}"#);
    assert!(pong.contains("\"ok\":true"), "{pong}");

    // …B fills the only queue slot…
    let mut b = Client::connect(&path);
    std::thread::sleep(Duration::from_millis(200));

    // …so C must be shed with the typed refusal, then hung up on.
    let mut c = Client::connect(&path);
    let shed = c.read_line();
    let shed = json::parse(&shed).expect("shed response parses");
    assert_eq!(shed.get("ok"), Some(&Json::Bool(false)), "{shed:?}");
    assert_eq!(code_of(&shed), Some("overloaded"), "{shed:?}");
    assert!(
        matches!(shed.get("retry_after_ms"), Some(Json::Num(ms)) if *ms > 0.0),
        "shed response must carry a retry hint: {shed:?}"
    );
    let mut eof = String::new();
    assert_eq!(c.reader.read_line(&mut eof).expect("post-shed read"), 0, "shed closes the stream");

    // A is still live — shedding C never disturbed admitted clients.
    let again = a.send(r#"{"op":"pts","id":"w","value":"%p"}"#);
    assert!(again.contains("\"ok\":true"), "{again}");

    // Shutdown from A: queued-but-never-served B is told, not hung up on.
    let bye = a.send(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    let drained = b.read_line();
    let drained = json::parse(&drained).expect("drain response parses");
    assert_eq!(code_of(&drained), Some("shutting_down"), "{drained:?}");

    handle.join().expect("server thread").expect("run_unix");
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

//! Degradation policy of governed `edit` requests (mirrors the
//! workspace-level `tests/degradation.rs` for the server):
//!
//! 1. A flow-sensitive budget trip *applies* the edit but delivers the
//!    sound Andersen fallback — reported in the response (`degraded`,
//!    `fallback`), never silently.
//! 2. The resident degraded result is sound: every points-to set is a
//!    superset of the complete flow-sensitive answer.
//! 3. A degraded result is never cached as complete: the warm state is
//!    dropped (`stats.warm == false`) and the next unbudgeted edit
//!    re-solves cold to the exact complete fixpoint, fingerprint equal
//!    to a from-scratch solve of the same text.
//! 4. An auxiliary-stage trip *rejects* the edit with a typed error and
//!    leaves the resident state untouched — the previous complete state
//!    beats any fallback.
//! 5. An auxiliary-stage trip on a *load* has no previous state to keep,
//!    so it takes the next rung of the soundness ladder: the workspace
//!    degrades to the ungoverned unification tier
//!    (`"fallback": "unification-fallback"`), queries stay sound, and
//!    `check` is refused because no sound SVFG can be staged from the
//!    partial auxiliary result.

use vsfs_server::json::{self, Json};
use vsfs_server::Server;

const PROG: &str = "func @main() {\nentry:\n  %p = alloc stack P\n  %a = alloc heap First\n  %b = alloc heap Second\n  store %a, %p\n  store %b, %p\n  %v = load %p\n  ret\n}\n";

/// The same body with a different trailing load value name, to make a
/// real (non-noop) edit.
const EDITED: &str = "func @main() {\nentry:\n  %p = alloc stack P\n  %a = alloc heap First\n  %b = alloc heap Second\n  store %a, %p\n  store %b, %p\n  %w = load %p\n  ret\n}";

fn request(server: &mut Server, line: &str) -> Json {
    let (resp, _) = server.handle_line(line);
    json::parse(&resp).unwrap_or_else(|e| panic!("unparsable response {resp}: {e}"))
}

fn quote(text: &str) -> String {
    json::Json::Str(text.to_string()).to_line()
}

fn pts_objects(server: &mut Server, value: &str) -> Vec<String> {
    let resp = request(
        server,
        &format!("{{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"{value}\"}}"),
    );
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    resp.get("objects")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|o| o.as_str().unwrap().to_string())
        .collect()
}

#[test]
fn degraded_edit_reports_fallback_and_stays_sound() {
    let mut server = Server::new();
    let loaded = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)),
    );
    assert_eq!(loaded.get("degraded"), Some(&Json::Bool(false)));
    // Complete flow-sensitive: the second store strongly updates P.
    assert_eq!(pts_objects(&mut server, "%v"), vec!["Second"]);

    // Edit under an impossible step budget: applied, but degraded.
    let resp = request(
        &mut server,
        &format!(
            "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"main\",\"text\":{}}}],\"step_budget\":1}}",
            quote(EDITED)
        ),
    );
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(
        resp.get("fallback").and_then(Json::as_str),
        Some("flow-insensitive-fallback"),
        "{resp:?}"
    );
    assert_eq!(resp.get("mode").and_then(Json::as_str), Some("flow-insensitive-fallback"));

    // Sound but imprecise: the fallback over-approximates — the load
    // sees both heap objects, a strict superset of the complete {Second}.
    let objs = pts_objects(&mut server, "%w");
    assert_eq!(objs, vec!["First", "Second"], "fallback must over-approximate");
    let q =
        request(&mut server, "{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%w\"}");
    assert_eq!(q.get("degraded"), Some(&Json::Bool(true)), "queries must flag degradation");

    // Never cached as complete: the warm state is gone.
    let stats = request(&mut server, "{\"op\":\"stats\",\"id\":\"p\"}");
    assert_eq!(stats.get("warm"), Some(&Json::Bool(false)), "{stats:?}");
    assert_eq!(stats.get("degraded"), Some(&Json::Bool(true)));

    // An unbudgeted follow-up (no-op delta) re-solves cold to the exact
    // complete fixpoint.
    let resp = request(&mut server, "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[]}");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("incremental"),
        Some(&Json::Bool(false)),
        "no warm state survives a degraded solve, so this must be cold"
    );
    assert_eq!(pts_objects(&mut server, "%w"), vec!["Second"]);

    // Fingerprint equals a from-scratch load of the same text elsewhere.
    let mut fresh = Server::new();
    let report = fresh.load_source("q", &format!("{EDITED}\n")).expect("edited text solves");
    assert_eq!(
        resp.get("fingerprint").and_then(Json::as_str),
        Some(format!("{:016x}", report.fingerprint).as_str()),
        "recovered state must equal a from-scratch solve"
    );
}

#[test]
fn aux_budget_trip_rejects_the_edit_and_keeps_state() {
    let mut server = Server::new();
    let loaded = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)),
    );
    let fp0 = loaded.get("fingerprint").and_then(Json::as_str).unwrap().to_string();

    // A zero deadline cancels the auxiliary stage at its first
    // checkpoint: typed error, no fallback, nothing applied.
    let resp = request(
        &mut server,
        &format!(
            "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"main\",\"text\":{}}}],\"time_budget\":0.0}}",
            quote(EDITED)
        ),
    );
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("aux_budget"),
        "{resp:?}"
    );

    // Resident state untouched: old fingerprint, still warm, still the
    // pre-edit (complete) answer.
    let stats = request(&mut server, "{\"op\":\"stats\",\"id\":\"p\"}");
    assert_eq!(stats.get("fingerprint").and_then(Json::as_str), Some(fp0.as_str()));
    assert_eq!(stats.get("warm"), Some(&Json::Bool(true)));
    assert_eq!(stats.get("degraded"), Some(&Json::Bool(false)));
    assert_eq!(pts_objects(&mut server, "%v"), vec!["Second"]);
}

#[test]
fn aux_budget_trip_on_load_degrades_to_the_unification_tier() {
    let mut server = Server::new();
    // A zero deadline cancels the auxiliary stage at its first
    // checkpoint. A load has no previous state to keep, so instead of
    // rejecting, the workspace degrades to the ungoverned unification
    // tier — the last sound rung of the ladder.
    let resp = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{},\"time_budget\":0.0}}", quote(PROG)),
    );
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(
        resp.get("fallback").and_then(Json::as_str),
        Some("unification-fallback"),
        "{resp:?}"
    );
    assert_eq!(resp.get("mode").and_then(Json::as_str), Some("unification-fallback"));

    // Queries answer soundly from the unification tier: a superset of
    // the complete flow-sensitive {Second}, flagged as degraded.
    let objs = pts_objects(&mut server, "%v");
    assert_eq!(objs, vec!["First", "Second"], "unify tier must over-approximate");
    let q =
        request(&mut server, "{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%v\"}");
    assert_eq!(q.get("degraded"), Some(&Json::Bool(true)), "queries must flag degradation");

    // The partial auxiliary result must never back checker staging: an
    // SVFG built from it could silently drop findings.
    let check = request(&mut server, "{\"op\":\"check\",\"id\":\"p\"}");
    assert_eq!(check.get("ok"), Some(&Json::Bool(false)), "{check:?}");
    assert_eq!(
        check.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("aux_budget"),
        "{check:?}"
    );

    // Never treated as a completed fixpoint: no warm state, flagged in
    // stats, and a fresh in-budget load replaces it with the complete
    // answer.
    let stats = request(&mut server, "{\"op\":\"stats\",\"id\":\"p\"}");
    assert_eq!(stats.get("warm"), Some(&Json::Bool(false)), "{stats:?}");
    assert_eq!(stats.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(stats.get("mode").and_then(Json::as_str), Some("unification-fallback"));
    let reload = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)),
    );
    assert_eq!(reload.get("ok"), Some(&Json::Bool(true)), "{reload:?}");
    assert_eq!(reload.get("degraded"), Some(&Json::Bool(false)), "{reload:?}");
    assert_eq!(pts_objects(&mut server, "%v"), vec!["Second"]);
}

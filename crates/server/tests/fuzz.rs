//! In-process protocol fuzzing (DESIGN.md §12): seeded
//! [`ProtocolFuzzer`] sessions driven through `Server::serve` over byte
//! buffers. The invariants under test:
//!
//! * the server survives every session — no panics, no early exit;
//! * every non-blank request line gets exactly one response line;
//! * every failure response uses a code from the closed taxonomy
//!   ([`vsfs_server::ERROR_CODES`]);
//! * transcripts are deterministic per seed (modulo wall-clock timing
//!   fields).
//!
//! The CLI's e2e tests replay the same seeds against a spawned process
//! on both transports; this suite is the fast in-proc gate.

use std::io::Cursor;

use vsfs_server::json::{self, Json};
use vsfs_server::{Server, ServerConfig, ERROR_CODES};
use vsfs_testkit::ProtocolFuzzer;

const MAX_LINE: usize = 4096;
const SESSION_LEN: usize = 200;

fn fuzz_config() -> ServerConfig {
    ServerConfig { max_request_bytes: MAX_LINE, ..ServerConfig::default() }
}

/// Feeds one full seeded session through `serve` and returns the
/// response transcript (one entry per response line).
fn run_session(seed: u64) -> Vec<String> {
    let mut server = Server::with_config(fuzz_config());
    let session = ProtocolFuzzer::new(seed, MAX_LINE).session(SESSION_LEN);

    let mut input = Vec::new();
    let mut expected = 0usize;
    for case in &session {
        input.extend_from_slice(&case.line);
        input.push(b'\n');
        // `serve` answers every line except blank ones under the cap;
        // over-cap lines always earn a `request_too_large` response.
        if case.line.len() > MAX_LINE || !String::from_utf8_lossy(&case.line).trim().is_empty() {
            expected += 1;
        }
    }

    let mut output = Vec::new();
    let shutdown = server
        .serve(Cursor::new(input), &mut output)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: serve died: {e}"));
    assert!(!shutdown, "seed {seed:#x}: fuzz session must never shut the server down");

    let transcript: Vec<String> =
        String::from_utf8(output).expect("responses are UTF-8").lines().map(String::from).collect();
    assert_eq!(
        transcript.len(),
        expected,
        "seed {seed:#x}: one response per non-blank request line"
    );

    for (i, line) in transcript.iter().enumerate() {
        let resp = json::parse(line)
            .unwrap_or_else(|e| panic!("seed {seed:#x} response {i} unparsable ({e}): {line}"));
        match resp.get("ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                let code = resp
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| {
                        panic!("seed {seed:#x} response {i} has no error code: {line}")
                    });
                assert!(
                    ERROR_CODES.contains(&code),
                    "seed {seed:#x} response {i}: code {code:?} outside the closed taxonomy"
                );
            }
            other => panic!("seed {seed:#x} response {i}: bad ok field {other:?} in {line}"),
        }
    }

    // The engine is still healthy after the barrage.
    let (pong, _) = server.handle_line(r#"{"op":"ping"}"#);
    let pong = json::parse(&pong).unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)), "seed {seed:#x}: ping after session");

    transcript
}

/// Blanks out the one wall-clock field so transcripts compare stably.
fn normalize(line: &str) -> String {
    let key = "\"solve_seconds\":";
    let mut out = String::new();
    let mut rest = line;
    while let Some(at) = rest.find(key) {
        let val_start = at + key.len();
        out.push_str(&rest[..val_start]);
        out.push('0');
        let tail = &rest[val_start..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn fuzz_sessions_never_kill_the_server() {
    for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
        run_session(seed);
    }
}

#[test]
fn fuzz_transcripts_are_deterministic_per_seed() {
    let a: Vec<String> = run_session(0x00d3_7e12).iter().map(|l| normalize(l)).collect();
    let b: Vec<String> = run_session(0x00d3_7e12).iter().map(|l| normalize(l)).collect();
    assert_eq!(a, b, "same seed, same transcript");
    let c: Vec<String> = run_session(0x00d3_7e13).iter().map(|l| normalize(l)).collect();
    assert_ne!(a, c, "different seeds should exercise different sessions");
}

#[test]
fn normalize_strips_only_timing() {
    assert_eq!(
        normalize(r#"{"ok":true,"solve_seconds":0.1234,"waves":3}"#),
        r#"{"ok":true,"solve_seconds":0,"waves":3}"#
    );
    assert_eq!(
        normalize(r#"{"ok":true,"solve_seconds":2e-05}"#),
        r#"{"ok":true,"solve_seconds":0}"#
    );
    let untouched = r#"{"ok":false,"code":"bad_json"}"#;
    assert_eq!(normalize(untouched), untouched);
}

//! Differential snapshot round-trip suite (DESIGN.md §12): restoring a
//! warm-state snapshot must be *fingerprint-identical* to a cold solve
//! of the same text — on random workloads, across edit sequences, and
//! never worse than a cold solve when the file is truncated, corrupted,
//! or stale.

use vsfs_core::{export_warm, restore_program, solve_program, IncrementalOptions};
use vsfs_server::json::{self, Json};
use vsfs_server::{snapshot, Server, ServerConfig};
use vsfs_testkit::Rng;
use vsfs_workloads::{edit_script, WorkloadConfig};

fn random_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(4usize..9),
        segments: rng.gen_range(1usize..4),
        loads_per_block: rng.gen_range(0usize..3),
        stores_per_block: rng.gen_range(1usize..3),
        load_chain: rng.gen_range(0usize..3),
        heap_fraction: rng.gen_f64(),
        indirect_call_fraction: rng.gen_range(0.0f64..0.5),
        backward_call_fraction: rng.gen_range(0.0f64..0.4),
        edit_fraction: rng.gen_range(0.3f64..0.8),
        ..WorkloadConfig::small()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vsfs-snaptest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(server: &mut Server, line: &str) -> Json {
    let (resp, _) = server.handle_line(line);
    json::parse(&resp).unwrap_or_else(|e| panic!("unparsable response {resp}: {e}"))
}

fn quote(text: &str) -> String {
    Json::Str(text.to_string()).to_line()
}

fn fp_of(resp: &Json) -> String {
    resp.get("fingerprint").and_then(Json::as_str).unwrap_or_else(|| panic!("{resp:?}")).to_string()
}

#[test]
fn restore_is_fingerprint_identical_to_cold_solve_on_random_workloads() {
    let mut rng = Rng::seed_from_u64(0x534e_4150);
    let opts = IncrementalOptions::default();
    let dir = temp_dir("random");
    for case in 0..6 {
        let config = random_config(&mut rng);
        let source = vsfs_workloads::generate(&config).to_string();
        let (cold, cold_report) = solve_program(&source, opts, None, None).unwrap();
        let export = export_warm(&cold).expect("complete solve exports");

        // Through the real file format, not just in memory.
        let id = format!("case{case}");
        let snap = snapshot::Snapshot { id: id.clone(), source: source.clone(), export };
        let path = snapshot::save(&dir, &snap).unwrap();
        let reread = snapshot::load(&path).unwrap();
        assert_eq!(reread, snap, "case {case}: file round trip");

        let (restored, report) =
            restore_program(&reread.source, &reread.export, opts, None, None).unwrap();
        assert!(report.restored, "case {case}: clean snapshot must restore");
        assert_eq!(report.dirty_nodes, 0, "case {case}");
        assert_eq!(
            restored.fingerprint, cold.fingerprint,
            "case {case} (config seed {:#x}): restore ≠ cold solve",
            config.seed
        );
        assert_eq!(report.fingerprint, cold_report.fingerprint, "case {case}");
        assert!(restored.has_warm_state(), "case {case}: restore must re-arm incrementality");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_stay_fingerprint_identical_across_edit_sequences() {
    let mut rng = Rng::seed_from_u64(0xed17);
    let opts = IncrementalOptions::default();
    let dir = temp_dir("edits");
    let config = random_config(&mut rng);
    let script = edit_script(&config, 0xfeed, 4);

    let cfg = ServerConfig { snapshot_dir: Some(dir.clone()), ..ServerConfig::default() };
    let mut live = Server::with_config(cfg.clone());
    let loaded = request(
        &mut live,
        &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&script.base.to_string())),
    );
    assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)), "{loaded:?}");

    for (i, step) in script.steps.iter().enumerate() {
        let edited = request(
            &mut live,
            &format!(
                "{{\"op\":\"edit\",\"id\":\"w\",\"delta\":[{{\"action\":\"replace\",\"name\":\"{}\",\"text\":{}}}]}}",
                step.name,
                quote(&step.text)
            ),
        );
        assert_eq!(edited.get("ok"), Some(&Json::Bool(true)), "step {i}: {edited:?}");
        let live_fp = fp_of(&edited);

        // A cold solve of the post-edit text agrees...
        let (cold, _) = solve_program(&step.program.to_string(), opts, None, None).unwrap();
        assert_eq!(format!("{:016x}", cold.fingerprint), live_fp, "step {i}: live ≠ cold");

        // ...and so does a fresh server restarted from the snapshot dir
        // (the snapshot tracked the edit).
        let mut revived = Server::with_config(cfg.clone());
        let log = revived.restore_snapshots();
        assert_eq!(log.len(), 1, "step {i}: {log:?}");
        assert!(log[0].contains("restored"), "step {i}: {log:?}");
        let stats = request(&mut revived, "{\"op\":\"stats\",\"id\":\"w\"}");
        assert_eq!(fp_of(&stats), live_fp, "step {i}: restored ≠ live");
        assert_eq!(stats.get("warm"), Some(&Json::Bool(true)), "step {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_corrupted_snapshots_degrade_to_cold_solves() {
    let mut rng = Rng::seed_from_u64(0xbad);
    let dir = temp_dir("corrupt");
    let config = random_config(&mut rng);
    let source = vsfs_workloads::generate(&config).to_string();

    let cfg = ServerConfig { snapshot_dir: Some(dir.clone()), ..ServerConfig::default() };
    let mut first = Server::with_config(cfg.clone());
    let loaded = request(
        &mut first,
        &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&source)),
    );
    let fp = fp_of(&loaded);
    drop(first);
    let path = snapshot::path_for(&dir, "w");
    let pristine = std::fs::read(&path).unwrap();

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("truncated-header", pristine[..10].to_vec()),
        ("truncated-half", pristine[..pristine.len() / 2].to_vec()),
        ("truncated-by-one", pristine[..pristine.len() - 1].to_vec()),
        ("bit-flip-payload", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
            b
        }),
        ("wrong-version", {
            let mut b = pristine.clone();
            b[8] = 0xEE;
            b
        }),
        ("empty", Vec::new()),
        ("not-a-snapshot", b"once upon a time".to_vec()),
    ];
    for (tag, bytes) in corruptions {
        std::fs::write(&path, &bytes).unwrap();
        let mut revived = Server::with_config(cfg.clone());
        let log = revived.restore_snapshots();
        assert!(
            log.iter().all(|l| l.contains("skipped")),
            "{tag}: corrupt snapshot must be skipped, got {log:?}"
        );
        assert!(revived.program_ids().is_empty(), "{tag}");

        // The same id still loads — cold — to the right answer.
        let reloaded = request(
            &mut revived,
            &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&source)),
        );
        assert_eq!(reloaded.get("ok"), Some(&Json::Bool(true)), "{tag}: {reloaded:?}");
        assert_eq!(reloaded.get("restored"), Some(&Json::Bool(false)), "{tag}");
        assert_eq!(fp_of(&reloaded), fp, "{tag}: cold solve after corruption diverged");
        // Loading rewrote a good snapshot; restore the corruption target
        // for the next case.
        std::fs::write(&path, &bytes).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_is_ignored_then_replaced() {
    let mut rng = Rng::seed_from_u64(0x57a1e);
    let dir = temp_dir("stale");
    let config = random_config(&mut rng);
    let script = edit_script(&config, 0xabc, 1);
    let old_text = script.base.to_string();
    let new_text = script.steps[0].program.to_string();
    assert_ne!(old_text, new_text);

    let cfg = ServerConfig { snapshot_dir: Some(dir.clone()), ..ServerConfig::default() };
    let mut server = Server::with_config(cfg.clone());
    request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&old_text)),
    );
    drop(server);

    // Loading *different* text under the same id must ignore the stale
    // snapshot (cold solve), then overwrite it with the new state.
    let mut server = Server::with_config(cfg.clone());
    let loaded = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&new_text)),
    );
    assert_eq!(loaded.get("restored"), Some(&Json::Bool(false)), "{loaded:?}");
    let fp_new = fp_of(&loaded);
    let (cold, _) = solve_program(&new_text, IncrementalOptions::default(), None, None).unwrap();
    assert_eq!(format!("{:016x}", cold.fingerprint), fp_new);
    drop(server);

    // And now the snapshot holds the new text: identical reload restores.
    let mut server = Server::with_config(cfg);
    let reloaded = request(
        &mut server,
        &format!("{{\"op\":\"load\",\"id\":\"w\",\"source\":{}}}", quote(&new_text)),
    );
    assert_eq!(reloaded.get("restored"), Some(&Json::Bool(true)), "{reloaded:?}");
    assert_eq!(fp_of(&reloaded), fp_new);
    let _ = std::fs::remove_dir_all(&dir);
}

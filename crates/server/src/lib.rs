//! The incremental analysis server (`vsfs serve`, DESIGN.md §9).
//!
//! A [`Server`] keeps any number of programs resident — each as a
//! [`vsfs_core::ProgramState`]: source, IR, auxiliary result, SVFG, the
//! solved flow-sensitive analysis, and the warm per-node state the next
//! edit seeds from — and answers line-delimited JSON requests over stdin/
//! stdout ([`Server::run_stdio`]) or a Unix socket ([`Server::run_unix`]).
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Every request has an
//! `"op"`; program-addressed ops take `"id"`. Success responses carry
//! `"ok": true` plus op-specific fields and always a `"fingerprint"` —
//! the ID-independent result hash ([`vsfs_core::result_fingerprint`]),
//! equal across incremental and from-scratch solves of the same text.
//! Failures are `{"ok": false, "error": {"code", "message"}}`; a
//! failed request never changes resident state.
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `ping` | | liveness check |
//! | `load` | `id`, `source` | parse + solve, keep resident |
//! | `edit` | `id`, `delta` | apply function deltas, re-solve incrementally |
//! | `pts` | `id`, `value`, [`func`] | points-to set of a value |
//! | `alias` | `id`, `p`, `q`, [`func`] | may-alias query |
//! | `check` | `id` | run the memory-safety checkers |
//! | `stats` | [`id`] | server or per-program statistics |
//! | `unload` | `id` | drop a resident program |
//! | `shutdown` | | stop serving |
//!
//! `delta` is an array of `{"action": "replace"|"add"|"remove",
//! "name": fn, ["text": body]}` applied in order ([`source::SourceMap`]).
//!
//! `load` and `edit` accept optional budgets (`time_budget` seconds,
//! `step_budget`, `mem_budget_mib`) mirroring the CLI's governed mode:
//! the auxiliary stage has no sound fallback, so its trip *rejects* the
//! request (`aux_budget`, resident state untouched); a flow-sensitive
//! trip *applies* the edit but delivers the sound Andersen fallback,
//! reported via `"degraded": true` and `"fallback"`, and drops the warm
//! state so nothing degraded is ever treated as a completed fixpoint.

pub mod json;
pub mod source;

use json::{n, obj, s, Json};
use source::{SourceError, SourceMap};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::{Duration, Instant};
use vsfs_adt::govern::{Budget, CancelToken, Governor};
use vsfs_checkers::{render_finding, run_checkers, FlowView};
use vsfs_core::queries::AliasQueries;
use vsfs_core::schedule::SolveOrder;
use vsfs_core::{
    resolve_edit, solve_program, IncrementalOptions, ProgramState, SolveError, SolveReport,
};
use vsfs_ir::ValueId;

/// One resident program: its editable source plus the solved state.
struct Workspace {
    sources: SourceMap,
    state: ProgramState,
}

/// The analysis server. See the module docs for the protocol.
pub struct Server {
    programs: BTreeMap<String, Workspace>,
    /// Default solve options for requests that don't override them.
    opts: IncrementalOptions,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

/// A request-scoped budget triple, mirroring the CLI's governed mode.
struct Budgets {
    time: Option<f64>,
    steps: Option<u64>,
    mem_mib: Option<u64>,
}

impl Budgets {
    fn from_request(req: &Json) -> Budgets {
        Budgets {
            time: req.get("time_budget").and_then(Json::as_f64),
            steps: req.get("step_budget").and_then(Json::as_u64),
            mem_mib: req.get("mem_budget_mib").and_then(Json::as_u64),
        }
    }

    /// Builds the (auxiliary, flow-sensitive) governors, or `None` when
    /// the request set no budget (ungoverned mode). Step budgets apply
    /// only to the flow-sensitive stage — they are not schedule-portable
    /// across Andersen's wave modes.
    fn governors(&self) -> Option<(Governor, Governor)> {
        if self.time.is_none() && self.steps.is_none() && self.mem_mib.is_none() {
            return None;
        }
        let cancel = match self.time {
            Some(secs) => {
                CancelToken::with_deadline(Instant::now() + Duration::from_secs_f64(secs))
            }
            None => CancelToken::new(),
        };
        let mem_bytes = self.mem_mib.map(|mib| (mib as usize) << 20);
        let mut aux = Budget::unlimited();
        let mut fs = Budget::unlimited();
        if let Some(bytes) = mem_bytes {
            aux = aux.with_mem_bytes(bytes);
            fs = fs.with_mem_bytes(bytes);
        }
        if let Some(steps) = self.steps {
            fs = fs.with_steps(steps);
        }
        Some((
            Governor::with_cancel(aux, cancel.clone()),
            Governor::with_cancel(fs, cancel),
        ))
    }
}

fn err(code: &str, message: impl Into<String>) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![("code", s(code)), ("message", s(message.into()))]),
        ),
    ])
}

fn solve_error(e: &SolveError) -> Json {
    match e {
        SolveError::Parse(errs) => {
            let mut pairs = vec![
                ("code", s("parse_error")),
                ("message", s(format!("{} parse error(s)", errs.len()))),
                (
                    "diagnostics",
                    Json::Arr(errs.iter().map(|m| s(m.clone())).collect()),
                ),
            ];
            pairs.truncate(3);
            obj(vec![("ok", Json::Bool(false)), ("error", obj(pairs))])
        }
        SolveError::Verify(m) => err("verify_error", m.clone()),
        SolveError::AuxBudget(r) => err(
            "aux_budget",
            format!(
                "auxiliary stage degraded ({r:?}); no sound fallback exists, request rejected"
            ),
        ),
    }
}

fn hex(fp: u64) -> Json {
    s(format!("{fp:016x}"))
}

/// The common tail of `load`/`edit` responses.
fn solve_fields(state: &ProgramState, report: &SolveReport) -> Vec<(&'static str, Json)> {
    let degraded = !state.analysis.is_complete();
    vec![
        ("fingerprint", hex(report.fingerprint)),
        ("mode", s(state.analysis.mode)),
        ("degraded", Json::Bool(degraded)),
        (
            "fallback",
            if degraded { s(state.analysis.mode) } else { Json::Null },
        ),
        ("incremental", Json::Bool(report.incremental)),
        ("total_nodes", n(report.total_nodes as f64)),
        ("dirty_nodes", n(report.dirty_nodes as f64)),
        ("carried_sets", n(report.carried_sets as f64)),
        ("solve_seconds", n(report.solve_seconds)),
        ("store_epoch", n(state.analysis.result.store_epoch() as f64)),
    ]
}

impl Server {
    /// A server with default solve options (FIFO order, one job).
    pub fn new() -> Server {
        Server::with_options(IncrementalOptions::default())
    }

    /// A server with explicit default solve options.
    pub fn with_options(opts: IncrementalOptions) -> Server {
        Server { programs: BTreeMap::new(), opts }
    }

    /// Loads `source` as resident program `id` (programmatic equivalent
    /// of the `load` request, used by the CLI's `--corpus` preload).
    pub fn load_source(&mut self, id: &str, source: &str) -> Result<SolveReport, SolveError> {
        let (state, report) = solve_program(source, self.opts, None, None)?;
        self.programs
            .insert(id.to_string(), Workspace { sources: SourceMap::parse(source), state });
        Ok(report)
    }

    /// The ids of the resident programs.
    pub fn program_ids(&self) -> Vec<&str> {
        self.programs.keys().map(String::as_str).collect()
    }

    /// Handles one request line; returns the response line and whether
    /// the server should stop.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(m) => return (err("bad_json", m).to_line(), false),
        };
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return (err("bad_request", "missing string field 'op'").to_line(), false);
        };
        let op = op.to_string();
        let shutdown = op == "shutdown";
        let resp = match op.as_str() {
            "ping" => obj(vec![("ok", Json::Bool(true)), ("op", s("ping"))]),
            "shutdown" => obj(vec![("ok", Json::Bool(true)), ("op", s("shutdown"))]),
            "load" => self.op_load(&req),
            "edit" => self.op_edit(&req),
            "pts" => self.op_pts(&req),
            "alias" => self.op_alias(&req),
            "check" => self.op_check(&req),
            "stats" => self.op_stats(&req),
            "unload" => self.op_unload(&req),
            other => err("unknown_op", format!("unknown op '{other}'")),
        };
        (resp.to_line(), shutdown)
    }

    fn request_opts(&self, req: &Json) -> Result<IncrementalOptions, Json> {
        let mut opts = self.opts;
        if let Some(order) = req.get("order").and_then(Json::as_str) {
            opts.order = match order {
                "fifo" => SolveOrder::Fifo,
                "topo" => SolveOrder::Topo,
                other => {
                    return Err(err("bad_request", format!("unknown order '{other}'")))
                }
            };
        }
        if let Some(jobs) = req.get("jobs").and_then(Json::as_u64) {
            opts.jobs = (jobs as usize).max(1);
        }
        Ok(opts)
    }

    fn require_id<'a>(&self, req: &'a Json) -> Result<&'a str, Json> {
        req.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| err("bad_request", "missing string field 'id'"))
    }

    fn workspace(&self, id: &str) -> Result<&Workspace, Json> {
        self.programs
            .get(id)
            .ok_or_else(|| err("unknown_program", format!("no program loaded as '{id}'")))
    }

    fn op_load(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        let Some(source) = req.get("source").and_then(Json::as_str) else {
            return err("bad_request", "missing string field 'source'");
        };
        let opts = match self.request_opts(req) {
            Ok(o) => o,
            Err(e) => return e,
        };
        let govs = Budgets::from_request(req).governors();
        let (aux_gov, fs_gov) = match &govs {
            Some((a, f)) => (Some(a), Some(f)),
            None => (None, None),
        };
        match solve_program(source, opts, aux_gov, fs_gov) {
            Ok((state, report)) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("load")),
                    ("id", s(id.clone())),
                    ("functions", n(state.prog.functions.len() as f64)),
                    ("values", n(state.prog.values.len() as f64)),
                ];
                pairs.extend(solve_fields(&state, &report));
                self.programs
                    .insert(id, Workspace { sources: SourceMap::parse(source), state });
                obj(pairs)
            }
            Err(e) => solve_error(&e),
        }
    }

    fn op_edit(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        if !self.programs.contains_key(&id) {
            return err("unknown_program", format!("no program loaded as '{id}'"));
        }
        let Some(delta) = req.get("delta").and_then(Json::as_arr) else {
            return err("bad_request", "missing array field 'delta'");
        };
        let opts = match self.request_opts(req) {
            Ok(o) => o,
            Err(e) => return e,
        };

        // Apply the deltas to a copy of the source map: a rejected edit
        // must leave the resident program untouched.
        let mut sources = self.programs[&id].sources.clone();
        for (i, item) in delta.iter().enumerate() {
            let action = item.get("action").and_then(Json::as_str).unwrap_or("");
            let Some(name) = item.get("name").and_then(Json::as_str) else {
                return err("bad_request", format!("delta[{i}] missing 'name'"));
            };
            let text = item.get("text").and_then(Json::as_str);
            let applied = match (action, text) {
                ("replace", Some(t)) => sources.replace(name, t),
                ("add", Some(t)) => sources.add(name, t),
                ("remove", _) => sources.remove(name),
                ("replace" | "add", None) => {
                    return err("bad_request", format!("delta[{i}] missing 'text'"))
                }
                (other, _) => {
                    return err(
                        "bad_request",
                        format!("delta[{i}] has unknown action '{other}'"),
                    )
                }
            };
            match applied {
                Ok(()) => {}
                Err(SourceError::UnknownFunction(f)) => {
                    return err("unknown_function", format!("delta[{i}]: no function '{f}'"))
                }
                Err(e) => return err("bad_request", format!("delta[{i}]: {e}")),
            }
        }
        let source = sources.compose();

        let govs = Budgets::from_request(req).governors();
        let (aux_gov, fs_gov) = match &govs {
            Some((a, f)) => (Some(a), Some(f)),
            None => (None, None),
        };
        let prev = &self.programs[&id].state;
        match resolve_edit(prev, &source, opts, aux_gov, fs_gov) {
            Ok((state, report)) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("edit")),
                    ("id", s(id.clone())),
                    ("functions", n(state.prog.functions.len() as f64)),
                ];
                pairs.extend(solve_fields(&state, &report));
                self.programs.insert(id, Workspace { sources, state });
                obj(pairs)
            }
            // Parse/verify/aux failures reject the edit: the previous
            // state (and its warm tables) stay authoritative.
            Err(e) => solve_error(&e),
        }
    }

    fn find_value(&self, ws: &Workspace, req: &Json, field: &str) -> Result<ValueId, Json> {
        let Some(raw) = req.get(field).and_then(Json::as_str) else {
            return Err(err("bad_request", format!("missing string field '{field}'")));
        };
        let name = raw.trim_start_matches(['%', '@']);
        let prog = &ws.state.prog;
        let func = match req.get("func").and_then(Json::as_str) {
            Some(fname) => match prog.function_by_name(fname) {
                Some(f) => Some(f),
                None => {
                    return Err(err(
                        "unknown_function",
                        format!("no function named '{fname}'"),
                    ))
                }
            },
            None => None,
        };
        for (v, val) in prog.values.iter_enumerated() {
            if val.name == name && (func.is_none() || val.func == func) {
                return Ok(v);
            }
        }
        Err(err(
            "unknown_value",
            match req.get("func").and_then(Json::as_str) {
                Some(f) => format!("no value '%{name}' in function '{f}'"),
                None => format!("no value named '%{name}'"),
            },
        ))
    }

    fn op_pts(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let v = match self.find_value(ws, req, "value") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let prog = &ws.state.prog;
        let mut names: Vec<&str> = ws
            .state
            .analysis
            .result
            .value_pts(v)
            .iter()
            .map(|o| prog.objects[o].name.as_str())
            .collect();
        names.sort_unstable();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("pts")),
            ("value", s(format!("%{}", prog.values[v].name))),
            ("objects", Json::Arr(names.into_iter().map(s).collect())),
            ("degraded", Json::Bool(!ws.state.analysis.is_complete())),
            ("fingerprint", hex(ws.state.fingerprint)),
        ])
    }

    fn op_alias(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let p = match self.find_value(ws, req, "p") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let q = match self.find_value(ws, req, "q") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let queries = AliasQueries::new(&ws.state.prog, &ws.state.analysis.result);
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("alias")),
            ("may_alias", Json::Bool(queries.may_alias(p, q))),
            ("degraded", Json::Bool(!ws.state.analysis.is_complete())),
            ("fingerprint", hex(ws.state.fingerprint)),
        ])
    }

    fn op_check(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let state = &ws.state;
        let findings = run_checkers(&state.prog, &state.svfg, &FlowView(&state.analysis.result));
        let rendered: Vec<Json> = findings
            .iter()
            .map(|f| {
                obj(vec![
                    ("checker", s(f.checker.name())),
                    ("message", s(render_finding(&state.prog, f))),
                ])
            })
            .collect();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("check")),
            ("count", n(rendered.len() as f64)),
            ("findings", Json::Arr(rendered)),
            ("degraded", Json::Bool(!state.analysis.is_complete())),
            ("fingerprint", hex(state.fingerprint)),
        ])
    }

    fn op_stats(&self, req: &Json) -> Json {
        match req.get("id").and_then(Json::as_str) {
            None => obj(vec![
                ("ok", Json::Bool(true)),
                ("op", s("stats")),
                ("programs", n(self.programs.len() as f64)),
                (
                    "ids",
                    Json::Arr(self.programs.keys().map(|k| s(k.clone())).collect()),
                ),
            ]),
            Some(id) => {
                let ws = match self.workspace(id) {
                    Ok(ws) => ws,
                    Err(e) => return e,
                };
                let state = &ws.state;
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("stats")),
                    ("id", s(id)),
                    ("functions", n(state.prog.functions.len() as f64)),
                    ("values", n(state.prog.values.len() as f64)),
                    ("objects", n(state.prog.objects.len() as f64)),
                    ("nodes", n(state.svfg.node_count() as f64)),
                    ("direct_edges", n(state.svfg.direct_edge_count() as f64)),
                    ("indirect_edges", n(state.svfg.indirect_edge_count() as f64)),
                    ("mode", s(state.analysis.mode)),
                    ("degraded", Json::Bool(!state.analysis.is_complete())),
                    ("warm", Json::Bool(state.has_warm_state())),
                    ("store_epoch", n(state.analysis.result.store_epoch() as f64)),
                    ("fingerprint", hex(state.fingerprint)),
                ])
            }
        }
    }

    fn op_unload(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        if self.programs.remove(&id).is_none() {
            return err("unknown_program", format!("no program loaded as '{id}'"));
        }
        obj(vec![("ok", Json::Bool(true)), ("op", s("unload")), ("id", s(id))])
    }

    /// Serves requests from `reader`, writing one response line per
    /// request to `writer`. Returns `true` if a `shutdown` was handled.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = self.handle_line(&line);
            writer.write_all(resp.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serves on stdin/stdout until EOF or `shutdown`.
    pub fn run_stdio(&mut self) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve(stdin.lock(), stdout.lock())?;
        Ok(())
    }

    /// Serves on a Unix socket, one connection at a time, until a
    /// connection issues `shutdown`.
    pub fn run_unix(&mut self, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let reader = BufReader::new(stream.try_clone()?);
            match self.serve(reader, &stream) {
                Ok(true) => break,
                Ok(false) => continue,     // client hung up; keep serving
                Err(_) => continue,        // broken pipe mid-response
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "global @g\n\nfunc @make() {\nentry:\n  %h = alloc heap H\n  ret %h\n}\n\nfunc @main() {\nentry:\n  %a = call @make()\n  store %a, @g\n  ret\n}\n";

    fn load(server: &mut Server, id: &str) -> Json {
        let req = obj(vec![("op", s("load")), ("id", s(id)), ("source", s(PROG))]);
        let (resp, _) = server.handle_line(&req.to_line());
        json::parse(&resp).unwrap()
    }

    #[test]
    fn load_query_edit_flow() {
        let mut server = Server::new();
        let loaded = load(&mut server, "p");
        assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));
        let fp0 = loaded.get("fingerprint").unwrap().as_str().unwrap().to_string();

        let (resp, _) = server.handle_line(
            &obj(vec![
                ("op", s("pts")),
                ("id", s("p")),
                ("func", s("main")),
                ("value", s("%a")),
            ])
            .to_line(),
        );
        let pts = json::parse(&resp).unwrap();
        assert_eq!(pts.get("objects"), Some(&Json::Arr(vec![s("H")])));

        // A no-op edit keeps the fingerprint and dirties nothing.
        let (resp, _) = server.handle_line(
            &obj(vec![
                ("op", s("edit")),
                ("id", s("p")),
                ("delta", Json::Arr(vec![])),
            ])
            .to_line(),
        );
        let edited = json::parse(&resp).unwrap();
        assert_eq!(edited.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(edited.get("incremental"), Some(&Json::Bool(true)));
        assert_eq!(edited.get("dirty_nodes").unwrap().as_u64(), Some(0));
        assert_eq!(edited.get("fingerprint").unwrap().as_str().unwrap(), fp0);
    }

    #[test]
    fn typed_errors_never_panic() {
        let mut server = Server::new();
        let mut code = |line: &str| {
            let (resp, _) = server.handle_line(line);
            json::parse(&resp)
                .unwrap()
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .map(String::from)
                .unwrap()
        };
        assert_eq!(code("not json"), "bad_json");
        assert_eq!(code("{\"no\":\"op\"}"), "bad_request");
        assert_eq!(code("{\"op\":\"frobnicate\"}"), "unknown_op");
        assert_eq!(code("{\"op\":\"pts\",\"id\":\"nope\",\"value\":\"x\"}"), "unknown_program");
    }

    #[test]
    fn rejected_edit_leaves_state_untouched() {
        let mut server = Server::new();
        load(&mut server, "p");
        let (resp, _) = server.handle_line(
            &obj(vec![
                ("op", s("edit")),
                ("id", s("p")),
                (
                    "delta",
                    Json::Arr(vec![obj(vec![
                        ("action", s("replace")),
                        ("name", s("make")),
                        ("text", s("func @make() {\nentry:\n  %h = alloc heap\n")),
                    ])]),
                ),
            ])
            .to_line(),
        );
        let e = json::parse(&resp).unwrap();
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            e.get("error").and_then(|x| x.get("code")).and_then(Json::as_str),
            Some("parse_error")
        );
        // The resident program still answers queries.
        let (resp, _) = server.handle_line(
            &obj(vec![("op", s("stats")), ("id", s("p"))]).to_line(),
        );
        let stats = json::parse(&resp).unwrap();
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("warm"), Some(&Json::Bool(true)));
    }
}

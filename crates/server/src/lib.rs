//! The incremental analysis server (`vsfs serve`, DESIGN.md §9, §12).
//!
//! A [`Server`] keeps any number of programs resident — each as a
//! [`vsfs_core::ProgramState`]: source, IR, auxiliary result, SVFG, the
//! solved flow-sensitive analysis, and the warm per-node state the next
//! edit seeds from — and answers line-delimited JSON requests over stdin/
//! stdout ([`Server::run_stdio`]) or a Unix socket ([`Server::run_unix`]).
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Every request has an
//! `"op"`; program-addressed ops take `"id"`. Success responses carry
//! `"ok": true` plus op-specific fields and always a `"fingerprint"` —
//! the ID-independent result hash ([`vsfs_core::result_fingerprint`]),
//! equal across incremental, from-scratch, and snapshot-restored solves
//! of the same text. Failures are `{"ok": false, "error": {"code",
//! "message"}}`; a failed request never changes resident state.
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `ping` | | liveness check |
//! | `load` | `id`, `source`, [`solver`] | parse + solve (or snapshot-restore), keep resident |
//! | `edit` | `id`, `delta`, [`solver`] | apply function deltas, re-solve incrementally |
//! | `pts` | `id`, `value`, [`func`] | points-to set of a value |
//! | `alias` | `id`, `p`, `q`, [`func`] | may-alias query |
//! | `check` | `id` | run the memory-safety checkers |
//! | `stats` | [`id`] | server or per-program statistics |
//! | `unload` | `id` | drop a resident program (and its snapshot) |
//! | `debug_panic` | `id` | fault drill: panic inside the handler |
//! | `shutdown` | | stop serving (drains in-flight requests) |
//!
//! `delta` is an array of `{"action": "replace"|"add"|"remove",
//! "name": fn, ["text": body]}` applied in order ([`source::SourceMap`]).
//!
//! `load` and `edit` accept an optional `"solver"` (`dense`, `sfs`,
//! `vsfs`, `cfgfree`, or `unify`; unknown names are `bad_request`)
//! selecting the resident engine for the workspace. An `edit` that omits it
//! keeps the workspace's resident solver; naming a different one
//! switches the workspace by an exact cold re-solve. Staged solvers (`sfs`,
//! `vsfs`) re-solve edits incrementally and persist warm snapshots;
//! cold-only solvers (`dense`, `cfgfree`) build no SVFG and serve every
//! edit by an exact cold re-solve (`"incremental": false`). Per-program
//! `stats` report the workspace's `solver` and whether warm state is
//! resident; the SVFG counters are `null` for cold-only solvers.
//!
//! `load` and `edit` accept optional budgets (`time_budget` seconds,
//! `step_budget`, `mem_budget_mib`) mirroring the CLI's governed mode:
//! a flow-sensitive trip delivers the sound Andersen fallback, reported
//! via `"degraded": true` and `"fallback"`, and drops the warm state so
//! nothing degraded is ever treated as a completed fixpoint. An
//! auxiliary-stage trip takes the next rung of the soundness ladder: on
//! a *load* the workspace degrades to the ungoverned unification tier
//! (`"fallback": "unification-fallback"`; `check` is refused on such a
//! state because no sound SVFG exists); on an *edit* the previous
//! resident state beats any fallback, so the request is rejected
//! (`aux_budget`, resident state untouched).
//! [`ServerConfig::default_time_budget`] gives every request that sets
//! no budget of its own a server-wide deadline.
//!
//! # Robustness (DESIGN.md §12)
//!
//! Every error the server can emit carries a code from [`ERROR_CODES`];
//! the taxonomy is closed so clients (and the fuzz harness) can match on
//! it exhaustively.
//!
//! * **Panic quarantine** — each request is dispatched under
//!   `catch_unwind`. A panicking request returns `internal_fault` and
//!   quarantines only the workspace it addressed: the (possibly
//!   inconsistent) state is discarded, later requests on that id get
//!   `workspace_quarantined`, and a successful `load` re-admits it. The
//!   process never dies; other programs stay servable.
//! * **Warm-state snapshots** — with [`ServerConfig::snapshot_dir`] set,
//!   every completed solve is exported ([`vsfs_core::export_warm`]) and
//!   written atomically to a checksummed file ([`snapshot`]). On startup
//!   ([`Server::restore_snapshots`]) and on `load` of identical text the
//!   solve is skipped entirely ([`vsfs_core::restore_program`]),
//!   validated by fingerprint; corrupt, stale, or version-mismatched
//!   snapshots are logged cold-solves, never crashes.
//! * **Admission control** — [`Server::run_unix`] accepts concurrently:
//!   a bounded queue feeds [`ServerConfig::workers`] scoped worker
//!   threads; requests execute serially against the engine (responses
//!   are bit-identical to sequential serving), and when the queue is
//!   full new connections are shed with `overloaded` plus a
//!   `retry_after_ms` hint. `shutdown` stops admission, answers queued
//!   connections with `shutting_down`, and drains in-flight work.
//! * **Bounded reads** — request lines longer than
//!   [`ServerConfig::max_request_bytes`] are discarded incrementally
//!   ([`lineio`]) and answered with `request_too_large`.
//! * **Socket hygiene** — binding probes an existing socket file and
//!   refuses to displace a live server (`AddrInUse`); stale files are
//!   reclaimed, and the file is removed on every exit path, panics
//!   included.

pub mod json;
pub mod lineio;
pub mod snapshot;
pub mod source;

use json::{n, obj, s, Json};
use lineio::{LineEvent, LineReader};
use snapshot::Snapshot;
use source::{SourceError, SourceMap};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TrySendError};
use std::sync::{mpsc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vsfs_adt::govern::{panic_message, Budget, CancelToken, Governor};
use vsfs_checkers::{render_finding, run_checkers, FlowView};
use vsfs_core::queries::AliasQueries;
use vsfs_core::schedule::SolveOrder;
use vsfs_core::{
    export_warm, resolve_edit, restore_program, solve_program, IncrementalOptions, ProgramState,
    SolveError, SolveReport, SolverKind,
};
use vsfs_ir::ValueId;

/// Every `error.code` the server can emit. The taxonomy is closed: the
/// fuzz harness asserts responses never step outside it.
pub const ERROR_CODES: &[&str] = &[
    "bad_json",
    "bad_request",
    "unknown_op",
    "unknown_program",
    "unknown_function",
    "unknown_value",
    "parse_error",
    "verify_error",
    "aux_budget",
    "request_too_large",
    "internal_fault",
    "workspace_quarantined",
    "overloaded",
    "shutting_down",
];

/// Server-wide configuration (transport and engine).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default solve options for requests that don't override them.
    pub opts: IncrementalOptions,
    /// Directory for warm-state snapshots; `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Per-line request cap; longer lines get `request_too_large`.
    pub max_request_bytes: usize,
    /// Deadline (seconds) applied to `load`/`edit` requests that set no
    /// `time_budget` of their own; `None` leaves them ungoverned.
    pub default_time_budget: Option<f64>,
    /// Worker threads serving socket connections.
    pub workers: usize,
    /// Bounded admission queue depth; a full queue sheds connections.
    pub queue_depth: usize,
    /// The retry hint carried by `overloaded` responses.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            opts: IncrementalOptions::default(),
            snapshot_dir: None,
            max_request_bytes: 16 << 20,
            default_time_budget: None,
            workers: 4,
            queue_depth: 64,
            retry_after_ms: 200,
        }
    }
}

/// One resident program: its editable source plus the solved state.
struct Workspace {
    sources: SourceMap,
    state: ProgramState,
}

/// The analysis server. See the module docs for the protocol.
pub struct Server {
    programs: BTreeMap<String, Workspace>,
    /// Workspaces discarded after a panicking request, keyed by id with
    /// the rendered panic message. Cleared by a successful `load`.
    quarantined: BTreeMap<String, String>,
    config: ServerConfig,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

/// A request-scoped budget triple, mirroring the CLI's governed mode.
struct Budgets {
    time: Option<f64>,
    steps: Option<u64>,
    mem_mib: Option<u64>,
}

impl Budgets {
    /// `default_time` is the server-wide deadline applied when the
    /// request carries no `time_budget` of its own.
    fn from_request(req: &Json, default_time: Option<f64>) -> Budgets {
        Budgets {
            time: req.get("time_budget").and_then(Json::as_f64).or(default_time),
            steps: req.get("step_budget").and_then(Json::as_u64),
            mem_mib: req.get("mem_budget_mib").and_then(Json::as_u64),
        }
    }

    /// Builds the (auxiliary, flow-sensitive) governors, or `None` when
    /// the request set no budget (ungoverned mode). Step budgets apply
    /// only to the flow-sensitive stage — they are not schedule-portable
    /// across Andersen's wave modes.
    fn governors(&self) -> Option<(Governor, Governor)> {
        if self.time.is_none() && self.steps.is_none() && self.mem_mib.is_none() {
            return None;
        }
        let cancel = match self.time {
            Some(secs) => {
                CancelToken::with_deadline(Instant::now() + Duration::from_secs_f64(secs))
            }
            None => CancelToken::new(),
        };
        let mem_bytes = self.mem_mib.map(|mib| (mib as usize) << 20);
        let mut aux = Budget::unlimited();
        let mut fs = Budget::unlimited();
        if let Some(bytes) = mem_bytes {
            aux = aux.with_mem_bytes(bytes);
            fs = fs.with_mem_bytes(bytes);
        }
        if let Some(steps) = self.steps {
            fs = fs.with_steps(steps);
        }
        Some((Governor::with_cancel(aux, cancel.clone()), Governor::with_cancel(fs, cancel)))
    }
}

fn err(code: &str, message: impl Into<String>) -> Json {
    err_with(code, message, Vec::new())
}

/// A structured error with extra top-level fields (e.g. the
/// `retry_after_ms` hint on `overloaded`).
fn err_with(code: &str, message: impl Into<String>, extra: Vec<(&'static str, Json)>) -> Json {
    debug_assert!(ERROR_CODES.contains(&code), "error code '{code}' not in taxonomy");
    let mut pairs = vec![
        ("ok", Json::Bool(false)),
        ("error", obj(vec![("code", s(code)), ("message", s(message.into()))])),
    ];
    pairs.extend(extra);
    obj(pairs)
}

fn solve_error(e: &SolveError) -> Json {
    match e {
        SolveError::Parse(errs) => {
            let mut pairs = vec![
                ("code", s("parse_error")),
                ("message", s(format!("{} parse error(s)", errs.len()))),
                ("diagnostics", Json::Arr(errs.iter().map(|m| s(m.clone())).collect())),
            ];
            pairs.truncate(3);
            obj(vec![("ok", Json::Bool(false)), ("error", obj(pairs))])
        }
        SolveError::Verify(m) => err("verify_error", m.clone()),
        SolveError::AuxBudget(r) => err(
            "aux_budget",
            format!(
                "auxiliary stage degraded ({r:?}); previous resident state beats any \
                 fallback, edit rejected"
            ),
        ),
    }
}

fn hex(fp: u64) -> Json {
    s(format!("{fp:016x}"))
}

/// The common tail of `load`/`edit` responses.
fn solve_fields(state: &ProgramState, report: &SolveReport) -> Vec<(&'static str, Json)> {
    let degraded = !state.analysis.is_complete();
    vec![
        ("fingerprint", hex(report.fingerprint)),
        ("mode", s(state.analysis.mode)),
        ("degraded", Json::Bool(degraded)),
        ("fallback", if degraded { s(state.analysis.mode) } else { Json::Null }),
        ("incremental", Json::Bool(report.incremental)),
        ("restored", Json::Bool(report.restored)),
        ("total_nodes", n(report.total_nodes as f64)),
        ("dirty_nodes", n(report.dirty_nodes as f64)),
        ("carried_sets", n(report.carried_sets as f64)),
        ("solve_seconds", n(report.solve_seconds)),
        ("store_epoch", n(state.analysis.result.store_epoch() as f64)),
    ]
}

impl Server {
    /// A server with default configuration (FIFO order, one job, no
    /// snapshots).
    pub fn new() -> Server {
        Server::with_config(ServerConfig::default())
    }

    /// A server with explicit default solve options.
    pub fn with_options(opts: IncrementalOptions) -> Server {
        Server::with_config(ServerConfig { opts, ..ServerConfig::default() })
    }

    /// A server with explicit configuration.
    pub fn with_config(config: ServerConfig) -> Server {
        Server { programs: BTreeMap::new(), quarantined: BTreeMap::new(), config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Loads `source` as resident program `id` (programmatic equivalent
    /// of the `load` request, used by the CLI's `--corpus` preload).
    /// Snapshot-restores instead of cold-solving when a matching
    /// snapshot exists.
    pub fn load_source(&mut self, id: &str, source: &str) -> Result<SolveReport, SolveError> {
        let (state, report) = self.solve_or_restore(id, source, self.config.opts, None, None)?;
        self.persist(id, &state);
        self.quarantined.remove(id);
        self.programs
            .insert(id.to_string(), Workspace { sources: SourceMap::parse(source), state });
        Ok(report)
    }

    /// The ids of the resident programs.
    pub fn program_ids(&self) -> Vec<&str> {
        self.programs.keys().map(String::as_str).collect()
    }

    /// Restores every readable snapshot in `snapshot_dir` into resident
    /// programs. Returns one human-readable log line per file —
    /// restored, cold-solved (stale), or skipped (corrupt) — for the
    /// CLI to print; nothing in the directory can make this fail.
    pub fn restore_snapshots(&mut self) -> Vec<String> {
        let Some(dir) = self.config.snapshot_dir.clone() else {
            return Vec::new();
        };
        let mut log = Vec::new();
        for (path, loaded) in snapshot::scan(&dir) {
            match loaded {
                Ok(snap) => {
                    match restore_program(&snap.source, &snap.export, self.config.opts, None, None)
                    {
                        Ok((state, report)) => {
                            log.push(format!(
                                "{}: {} in {:.3}s (fingerprint {:016x})",
                                snap.id,
                                if report.restored { "restored" } else { "cold-solved (stale)" },
                                report.solve_seconds,
                                report.fingerprint,
                            ));
                            self.programs.insert(
                                snap.id,
                                Workspace { sources: SourceMap::parse(&snap.source), state },
                            );
                        }
                        Err(e) => log.push(format!("{}: unusable ({e}); skipped", snap.id)),
                    }
                }
                Err(e) => log.push(format!("{}: {e}; skipped", path.display())),
            }
        }
        log
    }

    /// Cold solve, or restore from this id's snapshot when it holds the
    /// identical source text.
    fn solve_or_restore(
        &self,
        id: &str,
        source: &str,
        opts: IncrementalOptions,
        aux_gov: Option<&Governor>,
        fs_gov: Option<&Governor>,
    ) -> Result<(ProgramState, SolveReport), SolveError> {
        if let Some(dir) = &self.config.snapshot_dir {
            if let Ok(snap) = snapshot::load(&snapshot::path_for(dir, id)) {
                if snap.id == id && snap.source == source {
                    return restore_program(source, &snap.export, opts, aux_gov, fs_gov);
                }
            }
        }
        solve_program(source, opts, aux_gov, fs_gov)
    }

    /// Writes (or clears) `id`'s snapshot after a solve. Persistence is
    /// best-effort: an unwritable snapshot dir degrades durability, not
    /// the request.
    fn persist(&self, id: &str, state: &ProgramState) {
        let Some(dir) = &self.config.snapshot_dir else { return };
        match export_warm(state) {
            Some(export) => {
                let snap = Snapshot { id: id.to_string(), source: state.source.clone(), export };
                if let Err(e) = snapshot::save(dir, &snap) {
                    eprintln!("vsfs serve: snapshot save failed for '{id}': {e}");
                }
            }
            // Degraded solves export nothing; drop any snapshot of the
            // pre-edit text so a restart cannot resurrect stale results.
            None => {
                let _ = snapshot::remove(dir, id);
            }
        }
    }

    /// Handles one request line; returns the response line and whether
    /// the server should stop.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let max = self.config.max_request_bytes;
        if line.len() > max {
            // Transports cap lines before they get here; this guards
            // direct callers.
            return (too_large_response(max).to_line(), false);
        }
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(m) => return (err("bad_json", m).to_line(), false),
        };
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return (err("bad_request", "missing string field 'op'").to_line(), false);
        };
        let op = op.to_string();
        match op.as_str() {
            "ping" => {
                return (obj(vec![("ok", Json::Bool(true)), ("op", s("ping"))]).to_line(), false)
            }
            "shutdown" => {
                return (obj(vec![("ok", Json::Bool(true)), ("op", s("shutdown"))]).to_line(), true)
            }
            _ => {}
        }

        let id = req.get("id").and_then(Json::as_str).map(String::from);
        // `load` re-admits a quarantined workspace, `unload` discards
        // it, `stats` reports on it; everything else is refused until
        // one of those happens.
        if !matches!(op.as_str(), "load" | "unload" | "stats") {
            if let Some(msg) = id.as_deref().and_then(|i| self.quarantined.get(i)) {
                let id = id.unwrap();
                return (
                    err_with(
                        "workspace_quarantined",
                        format!(
                            "'{id}' is quarantined after an internal fault ({msg}); \
                             'load' it again to recover"
                        ),
                        vec![("id", s(id))],
                    )
                    .to_line(),
                    false,
                );
            }
        }

        // AssertUnwindSafe: on panic the addressed workspace — the only
        // state the handler mutates — is discarded wholesale below, so
        // no broken invariant survives.
        let resp = match catch_unwind(AssertUnwindSafe(|| self.dispatch(&op, &req))) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = panic_message(&*payload);
                match id {
                    Some(id) => {
                        self.programs.remove(&id);
                        self.quarantined.insert(id.clone(), msg.clone());
                        err_with(
                            "internal_fault",
                            format!("request panicked: {msg}; workspace '{id}' quarantined"),
                            vec![("id", s(id)), ("quarantined", Json::Bool(true))],
                        )
                    }
                    None => err_with(
                        "internal_fault",
                        format!("request panicked: {msg}"),
                        vec![("quarantined", Json::Bool(false))],
                    ),
                }
            }
        };
        (resp.to_line(), false)
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> Json {
        match op {
            "load" => self.op_load(req),
            "edit" => self.op_edit(req),
            "pts" => self.op_pts(req),
            "alias" => self.op_alias(req),
            "check" => self.op_check(req),
            "stats" => self.op_stats(req),
            "unload" => self.op_unload(req),
            "debug_panic" => self.op_debug_panic(req),
            other => err("unknown_op", format!("unknown op '{other}'")),
        }
    }

    fn request_opts(&self, req: &Json) -> Result<IncrementalOptions, Json> {
        let mut opts = self.config.opts;
        if let Some(name) = req.get("solver").and_then(Json::as_str) {
            opts.solver = match SolverKind::parse(name) {
                Some(kind) => kind,
                None => {
                    return Err(err(
                        "bad_request",
                        format!(
                            "unknown solver '{name}' (expected dense, sfs, vsfs, cfgfree, or unify)"
                        ),
                    ))
                }
            };
        }
        if let Some(order) = req.get("order").and_then(Json::as_str) {
            opts.order = match order {
                "fifo" => SolveOrder::Fifo,
                "topo" => SolveOrder::Topo,
                other => return Err(err("bad_request", format!("unknown order '{other}'"))),
            };
        }
        if let Some(jobs) = req.get("jobs").and_then(Json::as_u64) {
            opts.jobs = (jobs as usize).max(1);
        }
        Ok(opts)
    }

    fn require_id<'a>(&self, req: &'a Json) -> Result<&'a str, Json> {
        req.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| err("bad_request", "missing string field 'id'"))
    }

    fn workspace(&self, id: &str) -> Result<&Workspace, Json> {
        self.programs
            .get(id)
            .ok_or_else(|| err("unknown_program", format!("no program loaded as '{id}'")))
    }

    fn op_load(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        let Some(source) = req.get("source").and_then(Json::as_str) else {
            return err("bad_request", "missing string field 'source'");
        };
        let opts = match self.request_opts(req) {
            Ok(o) => o,
            Err(e) => return e,
        };
        let govs = Budgets::from_request(req, self.config.default_time_budget).governors();
        let (aux_gov, fs_gov) = match &govs {
            Some((a, f)) => (Some(a), Some(f)),
            None => (None, None),
        };
        match self.solve_or_restore(&id, source, opts, aux_gov, fs_gov) {
            Ok((state, report)) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("load")),
                    ("id", s(id.clone())),
                    ("functions", n(state.prog.functions.len() as f64)),
                    ("values", n(state.prog.values.len() as f64)),
                ];
                pairs.extend(solve_fields(&state, &report));
                self.persist(&id, &state);
                self.quarantined.remove(&id);
                self.programs.insert(id, Workspace { sources: SourceMap::parse(source), state });
                obj(pairs)
            }
            Err(e) => solve_error(&e),
        }
    }

    fn op_edit(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        if !self.programs.contains_key(&id) {
            return err("unknown_program", format!("no program loaded as '{id}'"));
        }
        let Some(delta) = req.get("delta").and_then(Json::as_arr) else {
            return err("bad_request", "missing array field 'delta'");
        };
        let mut opts = match self.request_opts(req) {
            Ok(o) => o,
            Err(e) => return e,
        };
        // An edit that names no solver keeps the workspace's resident
        // one (naming a different solver switches it, by a cold
        // re-solve); only `load` falls back to the server default.
        if req.get("solver").and_then(Json::as_str).is_none() {
            opts.solver = self.programs[&id].state.solver;
        }

        // Apply the deltas to a copy of the source map: a rejected edit
        // must leave the resident program untouched.
        let mut sources = self.programs[&id].sources.clone();
        for (i, item) in delta.iter().enumerate() {
            let action = item.get("action").and_then(Json::as_str).unwrap_or("");
            let Some(name) = item.get("name").and_then(Json::as_str) else {
                return err("bad_request", format!("delta[{i}] missing 'name'"));
            };
            let text = item.get("text").and_then(Json::as_str);
            let applied = match (action, text) {
                ("replace", Some(t)) => sources.replace(name, t),
                ("add", Some(t)) => sources.add(name, t),
                ("remove", _) => sources.remove(name),
                ("replace" | "add", None) => {
                    return err("bad_request", format!("delta[{i}] missing 'text'"))
                }
                (other, _) => {
                    return err("bad_request", format!("delta[{i}] has unknown action '{other}'"))
                }
            };
            match applied {
                Ok(()) => {}
                Err(SourceError::UnknownFunction(f)) => {
                    return err("unknown_function", format!("delta[{i}]: no function '{f}'"))
                }
                Err(e) => return err("bad_request", format!("delta[{i}]: {e}")),
            }
        }
        let source = sources.compose();

        let govs = Budgets::from_request(req, self.config.default_time_budget).governors();
        let (aux_gov, fs_gov) = match &govs {
            Some((a, f)) => (Some(a), Some(f)),
            None => (None, None),
        };
        let prev = &self.programs[&id].state;
        match resolve_edit(prev, &source, opts, aux_gov, fs_gov) {
            Ok((state, report)) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("edit")),
                    ("id", s(id.clone())),
                    ("functions", n(state.prog.functions.len() as f64)),
                ];
                pairs.extend(solve_fields(&state, &report));
                self.persist(&id, &state);
                self.programs.insert(id, Workspace { sources, state });
                obj(pairs)
            }
            // Parse/verify/aux failures reject the edit: the previous
            // state (and its warm tables) stay authoritative.
            Err(e) => solve_error(&e),
        }
    }

    fn find_value(&self, ws: &Workspace, req: &Json, field: &str) -> Result<ValueId, Json> {
        let Some(raw) = req.get(field).and_then(Json::as_str) else {
            return Err(err("bad_request", format!("missing string field '{field}'")));
        };
        let name = raw.trim_start_matches(['%', '@']);
        let prog = &ws.state.prog;
        let func = match req.get("func").and_then(Json::as_str) {
            Some(fname) => match prog.function_by_name(fname) {
                Some(f) => Some(f),
                None => {
                    return Err(err("unknown_function", format!("no function named '{fname}'")))
                }
            },
            None => None,
        };
        for (v, val) in prog.values.iter_enumerated() {
            if val.name == name && (func.is_none() || val.func == func) {
                return Ok(v);
            }
        }
        Err(err(
            "unknown_value",
            match req.get("func").and_then(Json::as_str) {
                Some(f) => format!("no value '%{name}' in function '{f}'"),
                None => format!("no value named '%{name}'"),
            },
        ))
    }

    fn op_pts(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let v = match self.find_value(ws, req, "value") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let prog = &ws.state.prog;
        let mut names: Vec<&str> = ws
            .state
            .analysis
            .result
            .value_pts(v)
            .iter()
            .map(|o| prog.objects[o].name.as_str())
            .collect();
        names.sort_unstable();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("pts")),
            ("value", s(format!("%{}", prog.values[v].name))),
            ("objects", Json::Arr(names.into_iter().map(s).collect())),
            ("degraded", Json::Bool(!ws.state.analysis.is_complete())),
            ("fingerprint", hex(ws.state.fingerprint)),
        ])
    }

    fn op_alias(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let p = match self.find_value(ws, req, "p") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let q = match self.find_value(ws, req, "q") {
            Ok(v) => v,
            Err(e) => return e,
        };
        let queries = AliasQueries::new(&ws.state.prog, &ws.state.analysis.result);
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("alias")),
            ("may_alias", Json::Bool(queries.may_alias(p, q))),
            ("degraded", Json::Bool(!ws.state.analysis.is_complete())),
            ("fingerprint", hex(ws.state.fingerprint)),
        ])
    }

    fn op_check(&self, req: &Json) -> Json {
        let ws = match self.require_id(req).and_then(|id| self.workspace(id)) {
            Ok(ws) => ws,
            Err(e) => return e,
        };
        let state = &ws.state;
        // A unification-fallback state holds only the *partial* Andersen
        // result its load budget cut short; an SVFG staged from it could
        // miss value-flow edges and silently drop findings. Refuse
        // rather than under-report.
        if state.analysis.mode == "unification-fallback" {
            return err(
                "aux_budget",
                "cannot stage checkers: the auxiliary stage degraded to the \
                 unification tier; reload within budget first",
            );
        }
        // Checkers walk the SVFG for witness paths. Cold-only solvers
        // never build one, so stage it on demand — the points-to view
        // under scrutiny is still the resident solver's result.
        let findings = match state.svfg() {
            Some(svfg) => run_checkers(&state.prog, svfg, &FlowView(&state.analysis.result)),
            None => {
                let mssa = vsfs_mssa::MemorySsa::build(&state.prog, &state.aux);
                let svfg = vsfs_svfg::Svfg::build(&state.prog, &state.aux, &mssa);
                run_checkers(&state.prog, &svfg, &FlowView(&state.analysis.result))
            }
        };
        let rendered: Vec<Json> = findings
            .iter()
            .map(|f| {
                obj(vec![
                    ("checker", s(f.checker.name())),
                    ("message", s(render_finding(&state.prog, f))),
                ])
            })
            .collect();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("op", s("check")),
            ("count", n(rendered.len() as f64)),
            ("findings", Json::Arr(rendered)),
            ("degraded", Json::Bool(!state.analysis.is_complete())),
            ("fingerprint", hex(state.fingerprint)),
        ])
    }

    fn op_stats(&self, req: &Json) -> Json {
        match req.get("id").and_then(Json::as_str) {
            None => obj(vec![
                ("ok", Json::Bool(true)),
                ("op", s("stats")),
                ("programs", n(self.programs.len() as f64)),
                ("ids", Json::Arr(self.programs.keys().map(|k| s(k.clone())).collect())),
                ("quarantined", Json::Arr(self.quarantined.keys().map(|k| s(k.clone())).collect())),
            ]),
            Some(id) => {
                if let Some(msg) = self.quarantined.get(id) {
                    return obj(vec![
                        ("ok", Json::Bool(true)),
                        ("op", s("stats")),
                        ("id", s(id)),
                        ("quarantined", Json::Bool(true)),
                        ("fault", s(msg.clone())),
                    ]);
                }
                let ws = match self.workspace(id) {
                    Ok(ws) => ws,
                    Err(e) => return e,
                };
                let state = &ws.state;
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", s("stats")),
                    ("id", s(id)),
                    ("quarantined", Json::Bool(false)),
                    ("functions", n(state.prog.functions.len() as f64)),
                    ("values", n(state.prog.values.len() as f64)),
                    ("objects", n(state.prog.objects.len() as f64)),
                    ("solver", s(state.solver.name())),
                    ("nodes", state.svfg().map_or(Json::Null, |g| n(g.node_count() as f64))),
                    (
                        "direct_edges",
                        state.svfg().map_or(Json::Null, |g| n(g.direct_edge_count() as f64)),
                    ),
                    (
                        "indirect_edges",
                        state.svfg().map_or(Json::Null, |g| n(g.indirect_edge_count() as f64)),
                    ),
                    ("mode", s(state.analysis.mode)),
                    ("degraded", Json::Bool(!state.analysis.is_complete())),
                    ("warm", Json::Bool(state.has_warm_state())),
                    ("store_epoch", n(state.analysis.result.store_epoch() as f64)),
                    ("fingerprint", hex(state.fingerprint)),
                ])
            }
        }
    }

    fn op_unload(&mut self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id.to_string(),
            Err(e) => return e,
        };
        let was_resident = self.programs.remove(&id).is_some();
        let was_quarantined = self.quarantined.remove(&id).is_some();
        if !was_resident && !was_quarantined {
            return err("unknown_program", format!("no program loaded as '{id}'"));
        }
        if let Some(dir) = &self.config.snapshot_dir {
            let _ = snapshot::remove(dir, &id);
        }
        obj(vec![("ok", Json::Bool(true)), ("op", s("unload")), ("id", s(id))])
    }

    /// Fault drill: panics inside the dispatch path so operators (and
    /// the e2e suite) can exercise the quarantine machinery on demand.
    /// The addressed workspace must exist; it is quarantined by the
    /// unwind.
    fn op_debug_panic(&self, req: &Json) -> Json {
        let id = match self.require_id(req) {
            Ok(id) => id,
            Err(e) => return e,
        };
        if let Err(e) = self.workspace(id) {
            return e;
        }
        panic!("debug_panic requested for workspace '{id}'");
    }

    /// Serves requests from `reader`, writing one response line per
    /// request to `writer`. Returns `true` if a `shutdown` was handled.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<bool> {
        let max = self.config.max_request_bytes;
        let mut lines = LineReader::new(reader);
        loop {
            match lines.next_line(max) {
                LineEvent::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (resp, shutdown) = self.handle_line(&line);
                    write_line(&mut writer, &resp)?;
                    if shutdown {
                        return Ok(true);
                    }
                }
                LineEvent::TooLarge => write_line(&mut writer, &too_large_response(max).to_line())?,
                LineEvent::Timeout => continue,
                LineEvent::Eof => return Ok(false),
                LineEvent::Err(e) => return Err(e),
            }
        }
    }

    /// Serves on stdin/stdout until EOF or `shutdown`.
    pub fn run_stdio(&mut self) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve(stdin.lock(), stdout.lock())?;
        Ok(())
    }

    /// Serves on a Unix socket until a connection issues `shutdown`.
    ///
    /// Connections are accepted into a bounded queue
    /// ([`ServerConfig::queue_depth`]) served by
    /// [`ServerConfig::workers`] scoped threads; requests themselves
    /// execute serially against the engine, so responses are
    /// bit-identical however connections interleave. A full queue sheds
    /// the connection with `overloaded` + `retry_after_ms`. Binding
    /// refuses to displace a live server; the socket file is removed on
    /// every exit path, panics included.
    pub fn run_unix(&mut self, path: &Path) -> std::io::Result<()> {
        let listener = bind_guarded(path)?;
        listener.set_nonblocking(true)?;
        let _guard = SocketGuard(path.to_path_buf());
        let max = self.config.max_request_bytes;
        let workers = self.config.workers.max(1);
        let queue_depth = self.config.queue_depth.max(1);
        let retry_after_ms = self.config.retry_after_ms;
        let shutdown = AtomicBool::new(false);
        let engine: Mutex<&mut Server> = Mutex::new(self);
        let (tx, rx) = mpsc::sync_channel::<UnixStream>(queue_depth);
        let rx = Mutex::new(rx);

        std::thread::scope(|scope| -> std::io::Result<()> {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&engine, &rx, &shutdown, max));
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            refuse(
                                stream,
                                err_with(
                                    "overloaded",
                                    "admission queue full; retry later",
                                    vec![("retry_after_ms", n(retry_after_ms as f64))],
                                ),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        shutdown.store(true, Ordering::SeqCst);
                        drop(tx);
                        return Err(e);
                    }
                }
            }
            // Stop admitting; workers drain the queue (answering
            // `shutting_down`), finish in-flight connections, and exit
            // when the channel disconnects. The scope joins them.
            drop(tx);
            Ok(())
        })
        // `_guard` drops here — socket file removed even if a worker
        // panicked and the scope is propagating the unwind.
    }
}

/// The response for an over-limit request line.
fn too_large_response(max: usize) -> Json {
    err_with(
        "request_too_large",
        format!("request line exceeds {max} bytes"),
        vec![("limit_bytes", n(max as f64))],
    )
}

fn write_line<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Locks ignoring poisoning: `handle_line` contains every panic, so a
/// poisoned engine mutex can only mean a panic *outside* the dispatch
/// path; the quarantine discipline still applies, so keep serving
/// (matching the no-poisoned-mutex posture of `vsfs_adt::par`).
fn lock_engine<'a, 'b>(engine: &'a Mutex<&'b mut Server>) -> MutexGuard<'a, &'b mut Server> {
    match engine.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_loop(
    engine: &Mutex<&mut Server>,
    rx: &Mutex<mpsc::Receiver<UnixStream>>,
    shutdown: &AtomicBool,
    max: usize,
) {
    loop {
        let next = {
            let rx = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            rx.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => {
                if shutdown.load(Ordering::SeqCst) {
                    // Admitted before shutdown, never started: typed
                    // refusal instead of a silent hangup.
                    refuse(stream, err("shutting_down", "server is shutting down"));
                    continue;
                }
                let _ = serve_connection(engine, stream, shutdown, max);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Serves one socket connection. Short read timeouts let the loop poll
/// the shutdown flag between requests (partial lines survive, see
/// [`lineio`]); once shutdown is set the connection is told and closed.
fn serve_connection(
    engine: &Mutex<&mut Server>,
    stream: UnixStream,
    shutdown: &AtomicBool,
    max: usize,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut lines = LineReader::new(BufReader::new(stream));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ =
                write_line(&mut writer, &err("shutting_down", "server is shutting down").to_line());
            return Ok(());
        }
        match lines.next_line(max) {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                // Lock only for the dispatch; responses are written
                // outside the critical section.
                let (resp, stop) = lock_engine(engine).handle_line(&line);
                write_line(&mut writer, &resp)?;
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
            LineEvent::TooLarge => write_line(&mut writer, &too_large_response(max).to_line())?,
            LineEvent::Timeout => continue,
            LineEvent::Eof => return Ok(()),
            LineEvent::Err(e) => return Err(e),
        }
    }
}

/// Writes one refusal line to a connection we will not serve (shed or
/// shutting down) and drops it. Best-effort: a peer that already hung
/// up is fine.
fn refuse(stream: UnixStream, resp: Json) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut w = &stream;
    let _ = write_line(&mut w, &resp.to_line());
}

/// Binds `path`, refusing to displace a live server: an existing socket
/// file is connect-probed first — reachable means `AddrInUse`, refused
/// means a stale file from a dead process and is reclaimed. A non-socket
/// file at the path is never deleted.
fn bind_guarded(path: &Path) -> std::io::Result<UnixListener> {
    match std::fs::symlink_metadata(path) {
        Ok(meta) => {
            use std::os::unix::fs::FileTypeExt;
            if !meta.file_type().is_socket() {
                return Err(std::io::Error::new(
                    ErrorKind::AlreadyExists,
                    format!(
                        "{} exists and is not a socket; refusing to replace it",
                        path.display()
                    ),
                ));
            }
            match UnixStream::connect(path) {
                Ok(_) => Err(std::io::Error::new(
                    ErrorKind::AddrInUse,
                    format!("a live server is already listening on {}", path.display()),
                )),
                Err(_) => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)
                }
            }
        }
        Err(e) if e.kind() == ErrorKind::NotFound => UnixListener::bind(path),
        Err(e) => Err(e),
    }
}

/// Removes the socket file when serving ends — normal return, error
/// return, or unwind.
struct SocketGuard(PathBuf);

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "global @g\n\nfunc @make() {\nentry:\n  %h = alloc heap H\n  ret %h\n}\n\nfunc @main() {\nentry:\n  %a = call @make()\n  store %a, @g\n  ret\n}\n";

    fn load(server: &mut Server, id: &str) -> Json {
        let req = obj(vec![("op", s("load")), ("id", s(id)), ("source", s(PROG))]);
        let (resp, _) = server.handle_line(&req.to_line());
        json::parse(&resp).unwrap()
    }

    fn error_code(resp: &Json) -> Option<String> {
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str).map(String::from)
    }

    #[test]
    fn load_query_edit_flow() {
        let mut server = Server::new();
        let loaded = load(&mut server, "p");
        assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));
        let fp0 = loaded.get("fingerprint").unwrap().as_str().unwrap().to_string();

        let (resp, _) = server.handle_line(
            &obj(vec![("op", s("pts")), ("id", s("p")), ("func", s("main")), ("value", s("%a"))])
                .to_line(),
        );
        let pts = json::parse(&resp).unwrap();
        assert_eq!(pts.get("objects"), Some(&Json::Arr(vec![s("H")])));

        // A no-op edit keeps the fingerprint and dirties nothing.
        let (resp, _) = server.handle_line(
            &obj(vec![("op", s("edit")), ("id", s("p")), ("delta", Json::Arr(vec![]))]).to_line(),
        );
        let edited = json::parse(&resp).unwrap();
        assert_eq!(edited.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(edited.get("incremental"), Some(&Json::Bool(true)));
        assert_eq!(edited.get("dirty_nodes").unwrap().as_u64(), Some(0));
        assert_eq!(edited.get("fingerprint").unwrap().as_str().unwrap(), fp0);
    }

    #[test]
    fn typed_errors_never_panic() {
        let mut server = Server::new();
        let mut code = |line: &str| {
            let (resp, _) = server.handle_line(line);
            error_code(&json::parse(&resp).unwrap()).unwrap()
        };
        assert_eq!(code("not json"), "bad_json");
        assert_eq!(code("{\"no\":\"op\"}"), "bad_request");
        assert_eq!(code("{\"op\":\"frobnicate\"}"), "unknown_op");
        assert_eq!(code("{\"op\":\"pts\",\"id\":\"nope\",\"value\":\"x\"}"), "unknown_program");
    }

    #[test]
    fn rejected_edit_leaves_state_untouched() {
        let mut server = Server::new();
        load(&mut server, "p");
        let (resp, _) = server.handle_line(
            &obj(vec![
                ("op", s("edit")),
                ("id", s("p")),
                (
                    "delta",
                    Json::Arr(vec![obj(vec![
                        ("action", s("replace")),
                        ("name", s("make")),
                        ("text", s("func @make() {\nentry:\n  %h = alloc heap\n")),
                    ])]),
                ),
            ])
            .to_line(),
        );
        let e = json::parse(&resp).unwrap();
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(error_code(&e).as_deref(), Some("parse_error"));
        // The resident program still answers queries.
        let (resp, _) =
            server.handle_line(&obj(vec![("op", s("stats")), ("id", s("p"))]).to_line());
        let stats = json::parse(&resp).unwrap();
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("warm"), Some(&Json::Bool(true)));
    }

    #[test]
    fn panic_quarantines_only_the_addressed_workspace() {
        let mut server = Server::new();
        load(&mut server, "a");
        load(&mut server, "b");

        let (resp, stop) =
            server.handle_line(&obj(vec![("op", s("debug_panic")), ("id", s("a"))]).to_line());
        assert!(!stop, "a panicking request must not stop the server");
        let fault = json::parse(&resp).unwrap();
        assert_eq!(error_code(&fault).as_deref(), Some("internal_fault"));
        assert_eq!(fault.get("quarantined"), Some(&Json::Bool(true)));

        // 'a' is quarantined with a typed error...
        let (resp, _) = server.handle_line(
            &obj(vec![("op", s("pts")), ("id", s("a")), ("value", s("%a"))]).to_line(),
        );
        let q = json::parse(&resp).unwrap();
        assert_eq!(error_code(&q).as_deref(), Some("workspace_quarantined"));

        // ...while 'b' still serves normally.
        let (resp, _) =
            server.handle_line(&obj(vec![("op", s("stats")), ("id", s("b"))]).to_line());
        let stats = json::parse(&resp).unwrap();
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("quarantined"), Some(&Json::Bool(false)));

        // stats observes the quarantine; load clears it.
        let (resp, _) =
            server.handle_line(&obj(vec![("op", s("stats")), ("id", s("a"))]).to_line());
        let stats = json::parse(&resp).unwrap();
        assert_eq!(stats.get("quarantined"), Some(&Json::Bool(true)));
        let reloaded = load(&mut server, "a");
        assert_eq!(reloaded.get("ok"), Some(&Json::Bool(true)));
        let (resp, _) = server.handle_line(
            &obj(vec![("op", s("pts")), ("id", s("a")), ("func", s("main")), ("value", s("%a"))])
                .to_line(),
        );
        assert_eq!(json::parse(&resp).unwrap().get("objects"), Some(&Json::Arr(vec![s("H")])));
    }

    #[test]
    fn oversized_requests_get_a_typed_error_and_the_stream_recovers() {
        let mut server =
            Server::with_config(ServerConfig { max_request_bytes: 256, ..ServerConfig::default() });
        // Direct handle_line guard.
        let big = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(400));
        let (resp, _) = server.handle_line(&big);
        let e = json::parse(&resp).unwrap();
        assert_eq!(error_code(&e).as_deref(), Some("request_too_large"));

        // Transport path: oversized line is skipped, next line works.
        let input = format!("{big}\n{{\"op\":\"ping\"}}\n");
        let mut out = Vec::new();
        let finished = server.serve(input.as_bytes(), &mut out).unwrap();
        assert!(!finished);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(error_code(&first).as_deref(), Some("request_too_large"));
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn snapshots_restore_across_server_instances() {
        let dir = std::env::temp_dir().join(format!("vsfs-snap-lib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig { snapshot_dir: Some(dir.clone()), ..ServerConfig::default() };

        let mut first = Server::with_config(cfg.clone());
        let loaded = load(&mut first, "p");
        assert_eq!(loaded.get("restored"), Some(&Json::Bool(false)));
        let fp = loaded.get("fingerprint").unwrap().as_str().unwrap().to_string();
        drop(first);

        // A fresh process restores from disk at startup...
        let mut second = Server::with_config(cfg.clone());
        let log = second.restore_snapshots();
        assert_eq!(log.len(), 1, "{log:?}");
        assert!(log[0].contains("restored"), "{log:?}");
        assert_eq!(second.program_ids(), vec!["p"]);
        let (resp, _) =
            second.handle_line(&obj(vec![("op", s("stats")), ("id", s("p"))]).to_line());
        let stats = json::parse(&resp).unwrap();
        assert_eq!(stats.get("fingerprint").unwrap().as_str().unwrap(), fp);
        assert_eq!(stats.get("warm"), Some(&Json::Bool(true)));

        // ...and a `load` of identical text restores instead of solving.
        let mut third = Server::with_config(cfg);
        let reloaded = load(&mut third, "p");
        assert_eq!(reloaded.get("restored"), Some(&Json::Bool(true)));
        assert_eq!(reloaded.get("fingerprint").unwrap().as_str().unwrap(), fp);

        // unload drops the snapshot too.
        let (_, _) = third.handle_line(&obj(vec![("op", s("unload")), ("id", s("p"))]).to_line());
        assert!(snapshot::scan(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_logged_cold_solve() {
        let dir = std::env::temp_dir().join(format!("vsfs-snap-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig { snapshot_dir: Some(dir.clone()), ..ServerConfig::default() };
        let mut first = Server::with_config(cfg.clone());
        load(&mut first, "p");
        drop(first);

        // Truncate the snapshot file on disk.
        let path = snapshot::path_for(&dir, "p");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let mut second = Server::with_config(cfg.clone());
        let log = second.restore_snapshots();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("skipped"), "{log:?}");
        assert!(second.program_ids().is_empty());

        // And a load of the same id cold-solves without complaint.
        let loaded = load(&mut second, "p");
        assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(loaded.get("restored"), Some(&Json::Bool(false)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Function-granularity source composition.
//!
//! The server's `edit` request carries deltas against *functions*, not
//! raw text ranges. A [`SourceMap`] splits one program source into a
//! preamble (globals, comments before the first function) plus an
//! ordered list of function bodies, applies add/replace/remove deltas,
//! and recomposes the full text deterministically. Re-solving always
//! goes through the composed text and a full re-parse (the recovering
//! `parse_program_all`), so the parser stays the single source of truth
//! for program structure; the map is only an editing surface.
//!
//! Splitting rule: a function starts at a line whose first non-space
//! characters are `func @` and ends at the next line that starts with
//! `}`. This matches the textual IR the parser accepts and the
//! generator emits.

/// One source file split into editable function-granularity pieces.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Everything before the first function (globals, leading comments).
    preamble: String,
    /// `(name, text)` per function, in source order. `text` includes the
    /// `func @name(...)` header and the closing `}` line.
    functions: Vec<(String, String)>,
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// `replace`/`remove` named a function the program does not have.
    UnknownFunction(String),
    /// `add` named a function the program already has.
    DuplicateFunction(String),
    /// The delta text does not contain exactly one `func @...` body, or
    /// its name disagrees with the delta's `name`.
    BadBody(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::UnknownFunction(n) => write!(f, "no function named '{n}'"),
            SourceError::DuplicateFunction(n) => write!(f, "function '{n}' already exists"),
            SourceError::BadBody(m) => write!(f, "{m}"),
        }
    }
}

/// The name in a `func @name(...)` header line, if this is one.
fn header_name(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("func @")?;
    let end = rest.find(|c: char| c == '(' || c.is_whitespace()).unwrap_or(rest.len());
    Some(&rest[..end])
}

impl SourceMap {
    /// Splits `source` into preamble and functions.
    pub fn parse(source: &str) -> SourceMap {
        let mut preamble = String::new();
        let mut functions: Vec<(String, String)> = Vec::new();
        let mut current: Option<(String, String)> = None;
        for line in source.lines() {
            if let Some(name) = header_name(line) {
                if let Some(f) = current.take() {
                    functions.push(f);
                }
                current = Some((name.to_string(), format!("{line}\n")));
            } else if let Some((_, text)) = current.as_mut() {
                text.push_str(line);
                text.push('\n');
                if line.starts_with('}') {
                    functions.push(current.take().unwrap());
                }
            } else {
                preamble.push_str(line);
                preamble.push('\n');
            }
        }
        if let Some(f) = current.take() {
            functions.push(f);
        }
        SourceMap { preamble, functions }
    }

    /// The function names, in source order.
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The text of function `name`, if present.
    pub fn function_text(&self, name: &str) -> Option<&str> {
        self.functions.iter().find(|(n, _)| n == name).map(|(_, t)| t.as_str())
    }

    /// Recomposes the full source.
    pub fn compose(&self) -> String {
        let mut out = self.preamble.clone();
        for (_, text) in &self.functions {
            if !out.is_empty() && !out.ends_with("\n\n") {
                out.push('\n');
            }
            out.push_str(text);
        }
        out
    }

    /// Validates that `text` is exactly one function body named `name`
    /// and returns it normalised (trailing newline, surrounding blank
    /// lines trimmed).
    fn check_body(name: &str, text: &str) -> Result<String, SourceError> {
        let trimmed = text.trim_matches('\n');
        let mut headers = trimmed.lines().filter_map(header_name);
        let Some(found) = headers.next() else {
            return Err(SourceError::BadBody(format!(
                "delta for '{name}' contains no 'func @...' header"
            )));
        };
        if headers.next().is_some() {
            return Err(SourceError::BadBody(format!(
                "delta for '{name}' contains more than one function"
            )));
        }
        if found != name {
            return Err(SourceError::BadBody(format!(
                "delta named '{name}' but its body defines '@{found}'"
            )));
        }
        Ok(format!("{trimmed}\n"))
    }

    /// Replaces the body of an existing function.
    pub fn replace(&mut self, name: &str, text: &str) -> Result<(), SourceError> {
        let body = Self::check_body(name, text)?;
        match self.functions.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => {
                *slot = body;
                Ok(())
            }
            None => Err(SourceError::UnknownFunction(name.to_string())),
        }
    }

    /// Appends a new function.
    pub fn add(&mut self, name: &str, text: &str) -> Result<(), SourceError> {
        let body = Self::check_body(name, text)?;
        if self.functions.iter().any(|(n, _)| n == name) {
            return Err(SourceError::DuplicateFunction(name.to_string()));
        }
        self.functions.push((name.to_string(), body));
        Ok(())
    }

    /// Removes a function.
    pub fn remove(&mut self, name: &str) -> Result<(), SourceError> {
        let before = self.functions.len();
        self.functions.retain(|(n, _)| n != name);
        if self.functions.len() == before {
            return Err(SourceError::UnknownFunction(name.to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str =
        "global @g\n\nfunc @a() {\nentry:\n  ret\n}\n\nfunc @b(%x) {\nentry:\n  ret %x\n}\n";

    #[test]
    fn split_and_compose_round_trip_parses_identically() {
        let map = SourceMap::parse(SRC);
        assert_eq!(map.function_names(), vec!["a", "b"]);
        let composed = map.compose();
        let p1 = vsfs_ir::parse_program(SRC).unwrap();
        let p2 = vsfs_ir::parse_program(&composed).unwrap();
        assert_eq!(p1.functions.len(), p2.functions.len());
        assert_eq!(p1.insts.len(), p2.insts.len());
    }

    #[test]
    fn replace_add_remove() {
        let mut map = SourceMap::parse(SRC);
        map.replace("a", "func @a() {\nentry:\n  %p = alloc stack P\n  ret\n}").unwrap();
        assert!(map.function_text("a").unwrap().contains("alloc stack P"));
        map.add("c", "func @c() {\nentry:\n  ret\n}").unwrap();
        assert_eq!(map.function_names(), vec!["a", "b", "c"]);
        map.remove("b").unwrap();
        assert_eq!(map.function_names(), vec!["a", "c"]);
        assert!(vsfs_ir::parse_program(&map.compose()).is_ok());
    }

    #[test]
    fn rejects_bad_deltas() {
        let mut map = SourceMap::parse(SRC);
        assert!(matches!(
            map.replace("zz", "func @zz() {\n}"),
            Err(SourceError::UnknownFunction(_))
        ));
        assert!(matches!(map.add("a", "func @a() {\n}"), Err(SourceError::DuplicateFunction(_))));
        assert!(matches!(map.replace("a", "no header"), Err(SourceError::BadBody(_))));
        assert!(matches!(map.replace("a", "func @other() {\n}"), Err(SourceError::BadBody(_))));
        assert!(matches!(map.remove("zz"), Err(SourceError::UnknownFunction(_))));
    }
}

//! Bounded line reading for the request transports.
//!
//! `BufRead::lines` allocates as much as the peer sends; a hostile
//! client could grow one "line" without limit. [`LineReader`] reads
//! line-by-line under a caller-supplied byte cap: an oversized line is
//! discarded *incrementally* (never buffered whole) and surfaces as
//! [`LineEvent::TooLarge`], which the server answers with a structured
//! `request_too_large` error — the connection stays usable and the next
//! line parses normally.
//!
//! The reader also tolerates read timeouts (`WouldBlock`/`TimedOut`
//! surface as [`LineEvent::Timeout`] with all partial input preserved),
//! which is how the socket connection loops poll the shutdown flag
//! between requests without dropping half-received data.

use std::io::{self, BufRead, ErrorKind};

/// One read step. See [`LineReader::next_line`].
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (terminator stripped, `\r\n` tolerated).
    Line(String),
    /// A line exceeded the cap. It has been fully discarded; the stream
    /// is positioned at the start of the next line.
    TooLarge,
    /// The underlying reader hit its read timeout; call again. Partial
    /// input received so far is preserved.
    Timeout,
    /// End of stream (any final unterminated line is returned as
    /// [`LineEvent::Line`] first).
    Eof,
    /// An unrecoverable I/O error.
    Err(io::Error),
}

/// An incremental, capped line reader over any [`BufRead`].
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// `true` while discarding the remainder of an oversized line.
    skipping: bool,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps `inner`; no bytes are read until [`next_line`](Self::next_line).
    pub fn new(inner: R) -> LineReader<R> {
        LineReader { inner, buf: Vec::new(), skipping: false }
    }

    /// Reads until a newline, EOF, timeout, or `max` buffered bytes.
    /// `max` bounds the *content* length (terminator excluded); at most
    /// `max` bytes of the current line are ever resident.
    pub fn next_line(&mut self, max: usize) -> LineEvent {
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(c) => c,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return LineEvent::Timeout;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return LineEvent::Err(e),
            };
            if chunk.is_empty() {
                // EOF. Flush any unterminated tail, then report.
                if self.skipping {
                    self.skipping = false;
                    return LineEvent::TooLarge;
                }
                if self.buf.is_empty() {
                    return LineEvent::Eof;
                }
                return LineEvent::Line(self.take_line());
            }
            let nl = chunk.iter().position(|&b| b == b'\n');
            let (content, consumed) = match nl {
                Some(i) => (i, i + 1),
                None => (chunk.len(), chunk.len()),
            };
            if self.skipping {
                self.inner.consume(consumed);
                if nl.is_some() {
                    self.skipping = false;
                    return LineEvent::TooLarge;
                }
                continue;
            }
            if self.buf.len() + content > max {
                // Over the cap: drop what we have and discard to the
                // newline without ever holding more than one buffer's
                // worth.
                self.buf.clear();
                self.skipping = true;
                self.inner.consume(consumed);
                if nl.is_some() {
                    self.skipping = false;
                    return LineEvent::TooLarge;
                }
                continue;
            }
            self.buf.extend_from_slice(&chunk[..content]);
            self.inner.consume(consumed);
            if nl.is_some() {
                return LineEvent::Line(self.take_line());
            }
        }
    }

    fn take_line(&mut self) -> String {
        let mut line = std::mem::take(&mut self.buf);
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        // Invalid UTF-8 still yields a line; it then fails JSON parsing
        // and gets a structured `bad_json` — not a dropped connection.
        String::from_utf8_lossy(&line).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    fn collect(input: &[u8], max: usize, cap: usize) -> Vec<String> {
        let mut r = LineReader::new(BufReader::with_capacity(cap, input));
        let mut out = Vec::new();
        loop {
            match r.next_line(max) {
                LineEvent::Line(l) => out.push(l),
                LineEvent::TooLarge => out.push("<too-large>".into()),
                LineEvent::Eof => return out,
                LineEvent::Timeout => panic!("timeout on in-memory reader"),
                LineEvent::Err(e) => panic!("{e}"),
            }
        }
    }

    #[test]
    fn plain_lines_crlf_and_final_unterminated() {
        assert_eq!(collect(b"a\nbb\r\nccc", 10, 4), vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn oversized_line_is_skipped_and_stream_recovers() {
        // Tiny 4-byte BufReader capacity forces the discard to span many
        // fills — the oversized line is never resident.
        let input = b"ok\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\nafter\n";
        assert_eq!(collect(input, 8, 4), vec!["ok", "<too-large>", "after"]);
    }

    #[test]
    fn oversized_final_line_without_newline() {
        assert_eq!(collect(b"yyyyyyyyyyyy", 4, 4), vec!["<too-large>"]);
    }

    #[test]
    fn exact_cap_is_allowed() {
        assert_eq!(collect(b"1234\n12345\n", 4, 16), vec!["1234", "<too-large>"]);
    }

    /// A reader that interleaves `WouldBlock` between data chunks, like
    /// a socket with a read timeout.
    struct Stutter {
        chunks: Vec<Vec<u8>>,
        block_next: bool,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(ErrorKind::WouldBlock, "stutter"));
            }
            self.block_next = true;
            match self.chunks.is_empty() {
                true => Ok(0),
                false => {
                    let c = self.chunks.remove(0);
                    buf[..c.len()].copy_from_slice(&c);
                    Ok(c.len())
                }
            }
        }
    }

    #[test]
    fn timeouts_preserve_partial_lines() {
        let stutter =
            Stutter { chunks: vec![b"par".to_vec(), b"tial\n".to_vec()], block_next: true };
        let mut r = LineReader::new(BufReader::with_capacity(8, stutter));
        let mut timeouts = 0;
        loop {
            match r.next_line(64) {
                LineEvent::Timeout => timeouts += 1,
                LineEvent::Line(l) => {
                    assert_eq!(l, "partial");
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
            assert!(timeouts < 10, "no progress");
        }
        assert!(timeouts > 0, "stutter reader must have timed out at least once");
    }
}

//! A minimal line-oriented JSON reader/writer.
//!
//! The workspace deliberately has no third-party dependencies, so the
//! server's wire format is handled here: a recursive-descent parser into
//! [`Json`] and a writer with full string escaping. Only what the
//! protocol needs — no comments, no trailing commas, numbers as `f64`
//! (the protocol never carries integers that lose `f64` precision;
//! 64-bit fingerprints travel as hex *strings*).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (duplicates keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value on one line.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Builds an object from key/value pairs — the writer-side helper the
/// server composes responses with.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A string value.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// A numeric value.
pub fn n(value: f64) -> Json {
    Json::Num(value)
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => {
            if x.fract() == 0.0 && x.abs() < (1u64 << 53) as f64 {
                let _ = write!(out, "{}", *x as i64);
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Json::Str(text) => write_string(out, text),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed by the
                            // protocol; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !pairs.iter().any(|(k, _)| *k == key) {
                pairs.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"op":"edit","id":"p1","delta":[{"action":"replace","name":"f","text":"func @f() {\nentry:\n  ret\n}"}],"step_budget":100}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("edit"));
        assert_eq!(v.get("step_budget").and_then(Json::as_u64), Some(100));
        let delta = v.get("delta").and_then(Json::as_arr).unwrap();
        assert!(delta[0].get("text").and_then(Json::as_str).unwrap().contains('\n'));
        // Serialise and re-parse: fixpoint.
        let again = parse(&v.to_line()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let line = v.to_line();
        assert_eq!(line, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&line).unwrap(), v);
    }
}

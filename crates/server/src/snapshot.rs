//! Versioned, checksummed on-disk snapshots of solved warm state
//! (DESIGN.md §12).
//!
//! A snapshot file holds one program: its id, the exact source text it
//! was solved from, and the stable-keyed warm fixpoint
//! ([`vsfs_core::WarmExport`]). The encoding is a fixed-layout
//! little-endian binary format — the same no-third-party-deps posture as
//! the protocol's hand-written JSON:
//!
//! ```text
//! magic   8 bytes  b"VSFSNAP1"
//! version u32      SNAPSHOT_VERSION
//! length  u64      payload byte count
//! check   u64      FNV-1a 64 of the payload
//! payload length bytes
//! ```
//!
//! Every field of the payload is length-prefixed and bounds-checked on
//! read, so a truncated, bit-flipped, or hand-edited file decodes to a
//! typed [`SnapshotError`] — never a panic and never an unbounded
//! allocation. Writes are atomic (unique temp file in the same
//! directory, then `rename`), so a crash mid-write leaves either the
//! old snapshot or none, and readers never observe a half-written file.
//!
//! Corruption defense is layered: this module's checksum and structural
//! checks catch file-level damage; [`vsfs_core::restore_program`]'s key
//! remapping and fingerprint validation catch anything semantically
//! stale that still parses. Every failure at every layer degrades to a
//! cold solve.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vsfs_core::WarmExport;

/// Bumped whenever the payload layout changes; readers refuse other
/// versions (a typed error, which the server treats as a cold solve).
/// v2 added the export's solver name after the fingerprint.
pub const SNAPSHOT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"VSFSNAP1";
const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// File extension for snapshot files inside `--snapshot-dir`.
pub const SNAPSHOT_EXT: &str = "vsnap";

/// One program's persisted warm state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The server-side program id (`load`'s `id` field).
    pub id: String,
    /// The exact source text the export was solved from. A restore only
    /// applies when the incoming text is identical; embedding it also
    /// lets `--snapshot-dir` repopulate the server at startup with no
    /// corpus.
    pub source: String,
    /// The stable-keyed warm fixpoint.
    pub export: WarmExport,
}

/// Why a snapshot file could not be read. Every variant is recoverable:
/// the server logs it and cold-solves.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem-level failure (missing file, permissions, short read).
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
    },
    /// The file ends before the structure it declares.
    Truncated,
    /// The payload does not hash to the recorded checksum.
    ChecksumMismatch,
    /// The payload decoded but violated a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot version {found} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The file a program id maps to inside `dir`. The name keeps a
/// readable sanitized prefix and appends the id's hash so distinct ids
/// never collide.
pub fn path_for(dir: &Path, id: &str) -> PathBuf {
    let safe: String = id
        .chars()
        .take(48)
        .map(
            |c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' },
        )
        .collect();
    let safe = if safe.is_empty() { "program".to_string() } else { safe };
    dir.join(format!("{safe}-{:016x}.{SNAPSHOT_EXT}", fnv1a(id.as_bytes())))
}

/// Writes `snap` atomically into `dir` (created if absent): encode to a
/// unique temp file in the same directory, flush, then rename over the
/// final path. Returns the final path.
pub fn save(dir: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let bytes = encode(snap);
    let path = path_for(dir, &snap.id);
    let temp = dir.join(format!(
        ".{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("snap"),
        // Unique per write even when two threads snapshot the same id.
        (std::process::id() as u64) << 32 | TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = fs::File::create(&temp)?;
    let write = f.write_all(&bytes).and_then(|_| f.sync_all());
    drop(f);
    if let Err(e) = write {
        let _ = fs::remove_file(&temp);
        return Err(e);
    }
    match fs::rename(&temp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = fs::remove_file(&temp);
            Err(e)
        }
    }
}

/// Reads and validates one snapshot file.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    decode(&fs::read(path)?)
}

/// All snapshot files in `dir` (by extension), in sorted-name order for
/// deterministic startup, each paired with its load result so callers
/// can log the corrupt ones and restore the rest. Missing dir = empty.
pub fn scan(dir: &Path) -> Vec<(PathBuf, Result<Snapshot, SnapshotError>)> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let r = load(&p);
            (p, r)
        })
        .collect()
}

/// Removes `id`'s snapshot from `dir` if present.
pub fn remove(dir: &Path, id: &str) -> io::Result<()> {
    match fs::remove_file(path_for(dir, id)) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------- encode

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes a snapshot to the full file image (header + payload).
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut p = Vec::new();
    put_str(&mut p, &snap.id);
    put_str(&mut p, &snap.source);
    let e = &snap.export;
    put_u64(&mut p, e.fingerprint);
    put_str(&mut p, &e.solver);
    put_u32(&mut p, e.sets.len() as u32);
    for set in &e.sets {
        put_u32(&mut p, set.len() as u32);
        for &k in set {
            put_u64(&mut p, k);
        }
    }
    put_u32(&mut p, e.pt.len() as u32);
    for &(k, idx) in &e.pt {
        put_u64(&mut p, k);
        put_u32(&mut p, idx);
    }
    for table in [&e.ins, &e.outs] {
        put_u32(&mut p, table.len() as u32);
        for (node_key, row) in table {
            put_u64(&mut p, *node_key);
            put_u32(&mut p, row.len() as u32);
            for &(obj_key, idx) in row {
                put_u64(&mut p, obj_key);
                put_u32(&mut p, idx);
            }
        }
    }
    put_u32(&mut p, e.activations.len() as u32);
    for (inst_key, name) in &e.activations {
        put_u64(&mut p, *inst_key);
        put_str(&mut p, name);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + p.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, p.len() as u64);
    put_u64(&mut out, fnv1a(&p));
    out.extend_from_slice(&p);
    out
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed("non-UTF-8 string"))
    }

    /// A declared element count, rejected up front when the remaining
    /// payload could not possibly hold that many `min_elem_bytes`-sized
    /// elements — so a hostile length field cannot drive a huge
    /// allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n * min_elem_bytes > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }
}

/// Parses and validates a full file image.
type VersionTableRows = Vec<(u64, Vec<(u64, u32)>)>;

pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return if bytes.len() >= 8 && &bytes[..8] == MAGIC {
            Err(SnapshotError::Truncated)
        } else {
            Err(SnapshotError::BadMagic)
        };
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let check = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() > len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    if fnv1a(payload) != check {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut r = Reader { bytes: payload, pos: 0 };
    let id = r.str()?;
    let source = r.str()?;
    let fingerprint = r.u64()?;
    let solver = r.str()?;
    let mut sets = Vec::with_capacity(r.count(4)?);
    for _ in 0..sets.capacity() {
        let n = r.count(8)?;
        let mut set = Vec::with_capacity(n);
        for _ in 0..n {
            set.push(r.u64()?);
        }
        sets.push(set);
    }
    let n_sets = sets.len() as u32;
    let idx_checked = |idx: u32| -> Result<u32, SnapshotError> {
        if idx >= n_sets {
            return Err(SnapshotError::Malformed("set index out of range"));
        }
        Ok(idx)
    };
    let n = r.count(12)?;
    let mut pt = Vec::with_capacity(n);
    for _ in 0..n {
        pt.push((r.u64()?, idx_checked(r.u32()?)?));
    }
    let mut tables: Vec<VersionTableRows> = Vec::with_capacity(2);
    for _ in 0..2 {
        let n = r.count(12)?;
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            let node_key = r.u64()?;
            let m = r.count(12)?;
            let mut row = Vec::with_capacity(m);
            for _ in 0..m {
                row.push((r.u64()?, idx_checked(r.u32()?)?));
            }
            table.push((node_key, row));
        }
        tables.push(table);
    }
    let outs = tables.pop().unwrap();
    let ins = tables.pop().unwrap();
    let n = r.count(12)?;
    let mut activations = Vec::with_capacity(n);
    for _ in 0..n {
        activations.push((r.u64()?, r.str()?));
    }
    if r.pos != payload.len() {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    Ok(Snapshot {
        id,
        source,
        export: WarmExport { solver, fingerprint, sets, pt, ins, outs, activations },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            id: "demo/prog".into(),
            source: "func @main() {\nentry:\n  ret\n}\n".into(),
            export: WarmExport {
                solver: "sfs".into(),
                fingerprint: 0xdead_beef_cafe_f00d,
                sets: vec![vec![], vec![1, 2, 3], vec![u64::MAX]],
                pt: vec![(10, 0), (11, 2)],
                ins: vec![(100, vec![(7, 1)])],
                outs: vec![(101, vec![(7, 1), (8, 0)])],
                activations: vec![(200, "callee".into())],
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
    }

    #[test]
    fn file_round_trip_and_scan() {
        let dir = std::env::temp_dir().join(format!("vsnap-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let snap = sample();
        let path = save(&dir, &snap).unwrap();
        assert_eq!(load(&path).unwrap(), snap);
        let scanned = scan(&dir);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1.as_ref().unwrap(), &snap);
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tmp"))
            .collect();
        assert!(leftovers.is_empty());
        remove(&dir, &snap.id).unwrap();
        assert!(scan(&dir).is_empty());
        remove(&dir, &snap.id).unwrap(); // idempotent
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&sample());
        let snap = sample();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1;
            // Either a typed error, or (flips confined to the id/source
            // strings) a snapshot that differs from the original — never
            // a silent identical decode, and never a panic.
            if let Ok(s) = decode(&corrupt) {
                assert_ne!(s, snap, "bit flip at byte {i} went unnoticed");
            }
        }
    }

    #[test]
    fn version_and_magic_mismatches() {
        let mut bytes = encode(&sample());
        bytes[8] = 99; // version field
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            SnapshotError::VersionMismatch { found: 99 }
        ));
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes).unwrap_err(), SnapshotError::BadMagic));
        assert!(matches!(decode(b"short").unwrap_err(), SnapshotError::BadMagic));
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // A payload that declares u32::MAX sets must be rejected before
        // any proportional allocation happens.
        let mut p = Vec::new();
        put_str(&mut p, "id");
        put_str(&mut p, "src");
        put_u64(&mut p, 0);
        put_u32(&mut p, u32::MAX); // set count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, SNAPSHOT_VERSION);
        put_u64(&mut bytes, p.len() as u64);
        put_u64(&mut bytes, fnv1a(&p));
        bytes.extend_from_slice(&p);
        assert!(matches!(decode(&bytes).unwrap_err(), SnapshotError::Truncated));
    }

    #[test]
    fn out_of_range_set_index_is_malformed() {
        let mut snap = sample();
        snap.export.pt[0].1 = 99;
        let bytes = encode(&snap);
        assert!(matches!(decode(&bytes).unwrap_err(), SnapshotError::Malformed(_)));
    }
}

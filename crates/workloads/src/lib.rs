//! Benchmark workloads for the VSFS reproduction.
//!
//! The paper evaluates on 15 open-source C/C++ programs compiled to LLVM
//! bitcode. This reproduction has no LLVM toolchain, so this crate
//! substitutes two program sources (documented in `DESIGN.md` §2):
//!
//! * [`gen`] — a deterministic, seeded generator of well-formed
//!   partial-SSA programs whose shape knobs (heap intensity, load-chain
//!   length, join density, indirect-call density, ...) control the SVFG
//!   characteristics that drive the SFS-vs-VSFS comparison;
//! * [`mod@suite`] — 15 named configurations modelled on Table II's rows
//!   (scaled down so the whole suite runs in seconds rather than hours);
//! * [`corpus`] — small hand-written programs in the textual IR, used by
//!   examples and integration tests.
//!
//! # Examples
//!
//! ```
//! use vsfs_workloads::gen::{generate, WorkloadConfig};
//!
//! let prog = generate(&WorkloadConfig { seed: 7, ..WorkloadConfig::small() });
//! vsfs_ir::verify::verify(&prog)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod corpus;
pub mod edits;
pub mod gen;
pub mod suite;

pub use edits::{edit_script, edit_script_local, EditScript, EditStep};
pub use gen::{generate, generate_edited, WorkloadConfig};
pub use suite::{suite, BenchmarkSpec};

//! Hand-written programs in the textual IR.
//!
//! Small, readable programs exercising specific analysis behaviours.
//! Used by examples, integration tests, and the CLI's `--corpus` mode.

/// A named corpus program.
#[derive(Debug, Clone, Copy)]
pub struct CorpusProgram {
    /// Short identifier.
    pub name: &'static str,
    /// What the program exercises.
    pub about: &'static str,
    /// Textual IR source.
    pub source: &'static str,
}

/// Strong updates: a second store to a singleton kills the first.
pub const STRONG_UPDATE: &str = r#"
func @main() {
entry:
  %p = alloc stack Cell
  %h1 = alloc heap First
  %h2 = alloc heap Second
  store %h1, %p
  %before = load %p     // {First}
  store %h2, %p         // strong update kills First
  %after = load %p      // {Second}
  ret
}
"#;

/// A singly linked list built and traversed through the heap.
pub const LINKED_LIST: &str = r#"
func @make_node(%payload) {
entry:
  %node = alloc heap Node fields 2
  %next_slot = gep %node, 1
  store %payload, %node
  ret %node
}

func @main() {
entry:
  %d1 = alloc heap Data1
  %d2 = alloc heap Data2
  %n1 = call @make_node(%d1)
  %n2 = call @make_node(%d2)
  %slot1 = gep %n1, 1
  store %n2, %slot1       // n1.next = n2
  %next = load %slot1     // = n2
  %payload = load %next   // = d2
  ret
}
"#;

/// Function-pointer dispatch through a global table.
pub const FPTR_DISPATCH: &str = r#"
global @handlers array
ginit @handlers, @on_read
ginit @handlers, @on_write

global @state

func @on_read(%ctx) {
entry:
  %cur = load @state
  ret %cur
}

func @on_write(%ctx) {
entry:
  store %ctx, @state
  ret %ctx
}

func @main() {
entry:
  %ctx = alloc heap Ctx
  %h = load @handlers
  %r = icall %h(%ctx)
  ret
}
"#;

/// Flow-sensitivity: a load before any store sees nothing.
pub const FLOW_ORDER: &str = r#"
func @main() {
entry:
  %p = alloc stack Slot
  %early = load %p       // {} - nothing stored yet
  %h = alloc heap Obj
  store %h, %p
  %late = load %p        // {Obj}
  ret
}
"#;

/// Weak updates on a summarised array object accumulate.
pub const WEAK_ARRAY: &str = r#"
func @main() {
entry:
  %arr = alloc stack Buf array
  %a = alloc heap A
  %b = alloc heap B
  store %a, %arr         // weak: array
  store %b, %arr         // weak: array keeps A
  %x = load %arr         // {A, B}
  ret
}
"#;

/// Interprocedural flow through globals with branches and loops.
pub const INTERPROC_LOOP: &str = r#"
global @shared

func @producer(%v) {
entry:
  store %v, @shared
  ret %v
}

func @consumer(%unused) {
entry:
  %got = load @shared
  ret %got
}

func @main() {
entry:
  %h1 = alloc heap P1
  %h2 = alloc heap P2
  goto head
head:
  %cur = phi %h1, %next
  br body, done
body:
  %r1 = call @producer(%cur)
  %next = call @consumer(%r1)
  goto head
done:
  %fin = call @consumer(%h2)
  ret
}
"#;

/// All corpus programs.
pub fn corpus() -> Vec<CorpusProgram> {
    vec![
        CorpusProgram {
            name: "strong_update",
            about: "store to a singleton kills the previous pointee",
            source: STRONG_UPDATE,
        },
        CorpusProgram {
            name: "linked_list",
            about: "heap list with field objects",
            source: LINKED_LIST,
        },
        CorpusProgram {
            name: "fptr_dispatch",
            about: "indirect calls via a global handler table",
            source: FPTR_DISPATCH,
        },
        CorpusProgram {
            name: "flow_order",
            about: "loads see only earlier stores",
            source: FLOW_ORDER,
        },
        CorpusProgram {
            name: "weak_array",
            about: "array objects only weak-update",
            source: WEAK_ARRAY,
        },
        CorpusProgram {
            name: "interproc_loop",
            about: "globals flowing through calls inside a loop",
            source: INTERPROC_LOOP,
        },
        CorpusProgram {
            name: "event_loop",
            about: "handler registry dispatching in a loop",
            source: EVENT_LOOP,
        },
        CorpusProgram {
            name: "hash_map",
            about: "chained buckets with key/value fields",
            source: HASH_MAP,
        },
        CorpusProgram {
            name: "visitor",
            about: "per-variant function-pointer dispatch over a tree",
            source: VISITOR,
        },
    ]
}

/// A small event-loop "server": handler registry, per-event dispatch,
/// connection state threaded through globals. Exercises indirect calls,
/// strong and weak updates, loops, and interprocedural chains together.
pub const EVENT_LOOP: &str = r#"
global @handlers array
global @current
global @log array
ginit @handlers, @on_open
ginit @handlers, @on_data
ginit @handlers, @on_close

func @on_open(%conn) {
entry:
  store %conn, @current
  ret %conn
}

func @on_data(%conn) {
entry:
  %buf = alloc heap DataBuf
  store %buf, %conn
  store %buf, @log
  ret %conn
}

func @on_close(%conn) {
entry:
  %cur = load @current
  ret %cur
}

func @main() {
entry:
  %conn = alloc heap Conn
  goto loop_head
loop_head:
  br dispatch, done
dispatch:
  %h = load @handlers
  %r = icall %h(%conn)
  %seen = load @log
  goto loop_head
done:
  %last = load @current
  ret
}
"#;

/// A chained hash-map lookup: buckets are arrays of nodes with key and
/// value fields; collisions walk the chain. Exercises fields, arrays,
/// loop-carried pointers.
pub const HASH_MAP: &str = r#"
func @put(%map, %key, %val) {
entry:
  %node = alloc heap MapNode fields 3
  %kslot = gep %node, 1
  %vslot = gep %node, 2
  store %key, %kslot
  store %val, %vslot
  %old = load %map
  store %old, %node
  store %node, %map
  ret %node
}

func @get(%map, %key) {
entry:
  %first = load %map
  goto walk
walk:
  %cur = phi %first, %next
  %next = load %cur
  br walk, found
found:
  %vslot = gep %cur, 2
  %val = load %vslot
  ret %val
}

func @main() {
entry:
  %map = alloc stack Buckets array
  %k1 = alloc heap Key1
  %v1 = alloc heap Val1
  %k2 = alloc heap Key2
  %v2 = alloc heap Val2
  %n1 = call @put(%map, %k1, %v1)
  %n2 = call @put(%map, %k2, %v2)
  %got = call @get(%map, %k1)
  ret
}
"#;

/// A visitor over a two-variant tree, dispatching through per-variant
/// function-pointer slots — the classic OO-in-C pattern.
pub const VISITOR: &str = r#"
global @leaf_visit
global @node_visit
ginit @leaf_visit, @visit_leaf
ginit @node_visit, @visit_node

func @visit_leaf(%t) {
entry:
  %payload = load %t
  ret %payload
}

func @visit_node(%t) {
entry:
  %left_slot = gep %t, 1
  %left = load %left_slot
  %fp = load @leaf_visit
  %r = icall %fp(%left)
  ret %r
}

func @main() {
entry:
  %leaf = alloc heap Leaf fields 2
  %data = alloc heap LeafData
  store %data, %leaf
  %node = alloc heap Node fields 2
  %lslot = gep %node, 1
  store %leaf, %lslot
  %fp = load @node_visit
  %result = icall %fp(%node)
  ret
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_verifies() {
        for p in corpus() {
            let prog =
                vsfs_ir::parse_program(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            vsfs_ir::verify::verify(&prog).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = corpus().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus().len());
    }
}

//! Deterministic edit-delta sequences over generated workloads.
//!
//! An *edit script* is a base program plus a sequence of
//! function-granularity replacement steps, produced by re-salting one
//! function's forked RNG stream (see [`crate::gen::generate_edited`]).
//! Each step carries both the replacement function text (what a client
//! would send to the analysis server) and the full post-edit program
//! (what a from-scratch solve of the same state parses), so the property
//! suite and the bench can compare incremental against cold results on
//! byte-identical sources.
//!
//! Only replacement edits are generated here: removing a random function
//! from a generated program dangles its call sites, and additions need
//! call-site plumbing to be observable. Both are exercised by the
//! server's protocol tests on hand-written programs instead.

use crate::gen::{generate_edited, WorkloadConfig};
use vsfs_ir::Program;
use vsfs_testkit::Rng;

/// One replacement edit: function `name` gets `text` as its new body.
#[derive(Debug)]
pub struct EditStep {
    /// Name of the edited function (`f<i>`).
    pub name: String,
    /// The replacement function text, `func @name(...) { ... }`.
    pub text: String,
    /// The full program after this edit (for from-scratch comparison).
    pub program: Program,
}

/// A base program plus a deterministic sequence of replacement edits.
#[derive(Debug)]
pub struct EditScript {
    /// The pre-edit program.
    pub base: Program,
    /// Edits, to be applied in order.
    pub steps: Vec<EditStep>,
}

/// Builds an edit script of `steps` replacement edits.
///
/// `config.edit_fraction` bounds which functions are eligible: the
/// eligible set is `ceil(edit_fraction * functions)` functions spread
/// evenly across the program (never `main`, whose body carries the
/// lowered global initialisers). The sequence is fully determined by
/// `(config, edit_seed, steps)`.
///
/// # Panics
///
/// Panics if `config.edit_fraction` is not positive — edit scripts
/// require forked per-function RNG streams.
pub fn edit_script(config: &WorkloadConfig, edit_seed: u64, steps: usize) -> EditScript {
    edit_script_with(config, edit_seed, steps, false)
}

/// Like [`edit_script`], but every step is a *local* edit: the chosen
/// function keeps its baseline body and gains a private, non-escaping
/// epilogue (see `gen`'s salt-parity rule) instead of being rewritten
/// wholesale. This is the realistic save-and-reanalyze workload for
/// incremental benchmarks — a rewrite renames every object and call in
/// the function, which no incremental analysis can absorb locally.
pub fn edit_script_local(config: &WorkloadConfig, edit_seed: u64, steps: usize) -> EditScript {
    edit_script_with(config, edit_seed, steps, true)
}

fn edit_script_with(
    config: &WorkloadConfig,
    edit_seed: u64,
    steps: usize,
    local: bool,
) -> EditScript {
    assert!(
        config.edit_fraction > 0.0,
        "edit_script requires edit_fraction > 0.0 (forked per-function streams)"
    );
    let n = config.functions;
    assert!(n > 0, "edit_script needs at least one function besides main");
    let eligible_count = ((config.edit_fraction * n as f64).ceil() as usize).clamp(1, n);
    // Spread eligible indices across the whole function range so edits
    // hit different call-graph depths.
    let eligible: Vec<usize> = (0..eligible_count).map(|k| k * n / eligible_count).collect();

    let mut rng = Rng::seed_from_u64(edit_seed);
    let mut salts = vec![0u64; n];
    let base = generate_edited(config, &salts);
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let idx = eligible[rng.gen_range(0..eligible.len())];
        // Salt parity selects the edit kind (see `gen::build_body`):
        // odd ⇒ full-body rewrite, even non-zero ⇒ local epilogue.
        // Either way the salt is never zero, so every step really
        // changes the body's text.
        let raw = rng.next_u64();
        salts[idx] = if local { (raw | 1) << 1 } else { raw | 1 };
        let program = generate_edited(config, &salts);
        let name = format!("f{idx}");
        let text = function_text(&program.to_string(), &name)
            .expect("edited function prints in the program");
        out.push(EditStep { name, text, program });
    }
    EditScript { base, steps: out }
}

/// Extracts the text of `func @name(...) { ... }` from a printed
/// program, including the closing brace.
pub fn function_text(program_text: &str, name: &str) -> Option<String> {
    let mut body = String::new();
    let mut inside = false;
    for line in program_text.lines() {
        if let Some(rest) = line.strip_prefix("func @") {
            let fname = rest.split(['(', ' ']).next().unwrap_or("");
            inside = fname == name;
        }
        if inside {
            body.push_str(line);
            body.push('\n');
            if line.starts_with('}') {
                return Some(body);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig { seed: 11, edit_fraction: 0.5, ..WorkloadConfig::small() }
    }

    #[test]
    fn scripts_are_deterministic_and_verify() {
        let a = edit_script(&cfg(), 3, 4);
        let b = edit_script(&cfg(), 3, 4);
        assert_eq!(a.base.to_string(), b.base.to_string());
        assert_eq!(a.steps.len(), 4);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.text, sb.text);
            assert_eq!(sa.program.to_string(), sb.program.to_string());
            vsfs_ir::verify::verify(&sa.program).unwrap();
        }
    }

    #[test]
    fn each_step_changes_exactly_the_named_function() {
        let script = edit_script(&cfg(), 9, 3);
        let mut prev = script.base.to_string();
        for step in &script.steps {
            let next = step.program.to_string();
            assert_ne!(prev, next, "edit to {} must change the program", step.name);
            // The replacement text is the named function's text in the
            // post-edit program, and differs from the pre-edit text.
            assert_eq!(function_text(&next, &step.name).unwrap(), step.text);
            assert_ne!(function_text(&prev, &step.name).unwrap(), step.text);
            // Splicing the text into the previous source reproduces the
            // post-edit source exactly.
            let spliced = prev.replace(&function_text(&prev, &step.name).unwrap(), &step.text);
            assert_eq!(spliced, next);
            prev = next;
        }
    }

    #[test]
    fn local_scripts_append_epilogues_without_rewriting() {
        let script = edit_script_local(&cfg(), 9, 3);
        let base = script.base.to_string();
        for step in &script.steps {
            vsfs_ir::verify::verify(&step.program).unwrap();
            let before = function_text(&base, &step.name).unwrap();
            // A local edit extends the baseline body: every original
            // line survives, and the new lines are the private epilogue.
            assert_ne!(step.text, before, "a local edit must change the text");
            let old_lines: Vec<&str> = before
                .lines()
                .filter(|l| l.trim() != "ret" && !l.trim().starts_with("ret "))
                .collect();
            for line in &old_lines {
                assert!(
                    step.text.contains(line),
                    "local edit to @{} must keep baseline line {line:?}",
                    step.name
                );
            }
            assert!(step.text.contains("alloc"), "epilogue allocates");
            assert!(step.text.contains("= alloc heap E") || step.text.contains("= alloc stack E"));
        }
    }

    #[test]
    fn main_is_never_edited() {
        let script = edit_script(&cfg(), 21, 8);
        assert!(script.steps.iter().all(|s| s.name != "main"));
    }
}

//! Deterministic synthetic program generation.
//!
//! Programs are built with [`vsfs_ir::ProgramBuilder`], so they are
//! well-formed by construction (SSA single assignment, dominance, one
//! `FUNEXIT` per function); the generator additionally keeps a pool of
//! values that *dominate* the current insertion point, so every generated
//! program passes the verifier — a property-tested invariant.
//!
//! Shape knobs and what they drive:
//!
//! | knob | effect on the analyses |
//! |------|------------------------|
//! | `heap_fraction`, `array_fraction` | fewer strong updates → larger, longer-lived points-to sets |
//! | `load_chain` | consecutive loads of the same location → many SVFG nodes sharing one version (VSFS's single-object sparsity win) |
//! | `diamond_bias`, `loop_bias` | join density → MEMPHIs → melded versions |
//! | `indirect_call_fraction` | δ nodes and on-the-fly call-graph work |
//! | `globals` + `global_traffic` | long interprocedural def-use chains |

use vsfs_ir::build::{FunctionBuilder, GInitVal};
use vsfs_ir::{FuncId, Program, ProgramBuilder, ValueId};
use vsfs_testkit::Rng;

/// Tuning knobs for one generated program.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed: same config + seed → identical program.
    pub seed: u64,
    /// Number of functions besides `main`.
    pub functions: usize,
    /// Number of global variables (plus function-pointer tables when
    /// indirect calls are enabled).
    pub globals: usize,
    /// Structured segments (straight/diamond/loop) per function body.
    pub segments: usize,
    /// Stack/heap allocations per function.
    pub allocs_per_function: usize,
    /// Loads emitted per block fill.
    pub loads_per_block: usize,
    /// Stores emitted per block fill.
    pub stores_per_block: usize,
    /// Extra consecutive loads of the same address per emitted load.
    pub load_chain: usize,
    /// Fraction of allocations on the heap.
    pub heap_fraction: f64,
    /// Fraction of allocations that are arrays (never strongly updated).
    pub array_fraction: f64,
    /// Fraction of aggregate allocations (with `max_fields` fields).
    pub field_fraction: f64,
    /// Fields per aggregate.
    pub max_fields: u32,
    /// Direct calls per function.
    pub calls_per_function: usize,
    /// Fraction of calls made through function pointers.
    pub indirect_call_fraction: f64,
    /// Probability a call may target an earlier function (recursion).
    pub backward_call_fraction: f64,
    /// Probability each block fill touches a global (stores/loads).
    pub global_traffic: f64,
    /// Probability a segment is a diamond.
    pub diamond_bias: f64,
    /// Probability a segment is a loop.
    pub loop_bias: f64,
    /// Probability a loaded value is used as an address later (pointer
    /// chasing). High values blur the auxiliary analysis and inflate
    /// annotation sets; real code keeps this modest.
    pub deref_chain: f64,
    /// Probability each block fill emits a `free` of a pointer in scope
    /// (checker workloads; `0.0` keeps programs free-free).
    pub free_fraction: f64,
    /// Probability each block fill introduces a possibly-null pointer
    /// into the value pool (checker workloads).
    pub null_fraction: f64,
    /// Fraction of functions eligible for edit deltas (see
    /// [`crate::edits`]). When positive, each function body is generated
    /// from a *forked* RNG stream so that re-salting one function (via
    /// [`generate_edited`]) regenerates only that body and leaves every
    /// other function's text byte-identical. `0.0` keeps the original
    /// single-stream generation, so pre-existing workloads stay
    /// bit-identical.
    pub edit_fraction: f64,
}

impl WorkloadConfig {
    /// A small config suitable for unit tests (hundreds of instructions).
    pub fn small() -> Self {
        WorkloadConfig {
            seed: 42,
            functions: 6,
            globals: 4,
            segments: 4,
            allocs_per_function: 4,
            loads_per_block: 2,
            stores_per_block: 1,
            load_chain: 1,
            heap_fraction: 0.5,
            array_fraction: 0.3,
            field_fraction: 0.3,
            max_fields: 3,
            calls_per_function: 2,
            indirect_call_fraction: 0.3,
            backward_call_fraction: 0.1,
            global_traffic: 0.5,
            diamond_bias: 0.3,
            loop_bias: 0.15,
            deref_chain: 0.2,
            free_fraction: 0.0,
            null_fraction: 0.0,
            edit_fraction: 0.0,
        }
    }

    /// `small()` with frees and possibly-null pointers mixed in, for
    /// exercising the source-sink checkers on random programs.
    pub fn small_with_bugs() -> Self {
        WorkloadConfig { free_fraction: 0.3, null_fraction: 0.2, ..WorkloadConfig::small() }
    }
}

/// Generates a verified-well-formed program from `config`.
pub fn generate(config: &WorkloadConfig) -> Program {
    generate_edited(config, &[])
}

/// Generates a program with per-function edit salts applied.
///
/// `salts[i]` perturbs the forked RNG stream of function `i` (index
/// `config.functions` is `main`); missing or zero salts leave a function
/// at its baseline body. Requires `edit_fraction > 0.0` to have any
/// effect — with the knob off, bodies share one RNG stream and salts are
/// ignored, preserving the historical byte-identical output.
pub fn generate_edited(config: &WorkloadConfig, salts: &[u64]) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut state = GenState::new(config, salts);
    state.declare(&mut pb);
    let funcs = state.funcs.clone();
    for (i, f) in funcs.iter().enumerate() {
        let mut fb = pb.build_function(*f);
        state.build_body(&mut fb, i, false);
    }
    let main = state.main;
    let mut fb = pb.build_function(main);
    state.build_body(&mut fb, state_funcs_len(&state), true);
    let prog = pb.finish().expect("generator produces complete programs");
    debug_assert!(vsfs_ir::verify::verify(&prog).is_ok());
    prog
}

fn state_funcs_len(state: &GenState<'_>) -> usize {
    state.funcs.len()
}

/// Values usable at the current insertion point, split by how useful they
/// are as addresses.
///
/// Keeping most load/store addresses *precise* (alloc results and global
/// pointers, whose auxiliary points-to sets are singletons) mirrors real
/// programs and keeps χ/µ annotation sets small; pointer chasing through
/// loaded values is rationed by `deref_chain`.
#[derive(Debug, Clone, Default)]
struct Pool {
    /// Alloc results, geps, and this function's global pointers: precise
    /// store/load targets.
    addrs: Vec<ValueId>,
    /// Everything (addresses included): store payloads, args, copies.
    all: Vec<ValueId>,
}

impl Pool {
    fn add_addr(&mut self, v: ValueId) {
        self.addrs.push(v);
        self.all.push(v);
    }
    fn add(&mut self, v: ValueId) {
        self.all.push(v);
    }
}

/// Functions are grouped into communities of this size; calls, indirect
/// call tables, and global usage mostly stay within a community. Real
/// programs are modular — without this, transitive argument unions make
/// every points-to set approach the whole object space.
const COMMUNITY: usize = 8;

struct GenState<'c> {
    cfg: &'c WorkloadConfig,
    /// Per-function edit salts (see [`generate_edited`]).
    salts: &'c [u64],
    rng: Rng,
    funcs: Vec<FuncId>,
    main: FuncId,
    globals: Vec<ValueId>,
    fptables: Vec<ValueId>,
    counter: usize,
    /// Index of the function currently being built (drives forward-call
    /// selection).
    cur_func_index: usize,
    /// The globals the function currently being built is allowed to
    /// touch. Real programs have locality: each function works with a
    /// handful of globals, not all of them — without this, mod/ref sets
    /// (and hence χ/µ annotations and SVFG indirect edges) explode
    /// unrealistically.
    current_globals: Vec<ValueId>,
}

fn pick<T: Copy>(rng: &mut Rng, pool: &[T]) -> Option<T> {
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.gen_range(0..pool.len())])
    }
}

impl<'c> GenState<'c> {
    fn new(cfg: &'c WorkloadConfig, salts: &'c [u64]) -> Self {
        GenState {
            cfg,
            salts,
            rng: Rng::seed_from_u64(cfg.seed),
            funcs: Vec::new(),
            main: FuncId::new(0),
            globals: Vec::new(),
            fptables: Vec::new(),
            counter: 0,
            cur_func_index: 0,
            current_globals: Vec::new(),
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// Picks a data value the way real code does: usually something the
    /// function allocated itself, sometimes anything in scope. Keeping
    /// payloads mostly precise stops every container from accumulating
    /// every object in the program.
    fn pick_payload(&mut self, pool: &Pool, my_allocs: &[ValueId]) -> Option<ValueId> {
        if !my_allocs.is_empty() && self.rng.gen_bool(0.7) {
            return pick(&mut self.rng, my_allocs);
        }
        pick(&mut self.rng, &pool.all)
    }

    /// Declares globals, function-pointer tables, all functions, and the
    /// global initialisers.
    fn declare(&mut self, pb: &mut ProgramBuilder) {
        for i in 0..self.cfg.globals {
            let fields =
                if self.rng.gen_bool(self.cfg.field_fraction) { self.cfg.max_fields } else { 1 };
            let array = self.rng.gen_bool(self.cfg.array_fraction);
            let (v, _) = pb.add_global(&format!("g{i}"), fields, array);
            self.globals.push(v);
        }
        let n_tables = if self.cfg.indirect_call_fraction > 0.0 {
            self.cfg.functions.div_ceil(COMMUNITY).max(1)
        } else {
            0
        };
        for i in 0..n_tables {
            let (v, _) = pb.add_global(&format!("fptab{i}"), 1, true);
            self.fptables.push(v);
        }
        for i in 0..self.cfg.functions {
            self.funcs.push(pb.declare_function(&format!("f{i}"), 2));
        }
        self.main = pb.declare_function("main", 0);

        // Seed each community's function-pointer table with 2-4 targets
        // drawn from that community.
        for (i, &tab) in self.fptables.clone().iter().enumerate() {
            let lo = i * COMMUNITY;
            let hi = ((i + 1) * COMMUNITY).min(self.funcs.len());
            if lo >= hi {
                continue;
            }
            let n = 2 + (i % 3);
            for k in 0..n {
                let idx = lo + (k * 13 + i * 7) % (hi - lo);
                pb.ginit(self.fptables[i], GInitVal::Func(self.funcs[idx]));
            }
            let _ = tab;
        }
        // Occasional data-global aliasing: *g_i = g_j.
        for i in 0..self.globals.len() {
            if self.rng.gen_bool(0.2) {
                let j = self.rng.gen_range(0..self.globals.len());
                pb.ginit(self.globals[i], GInitVal::Global(self.globals[j]));
            }
        }
    }

    fn build_body(&mut self, fb: &mut FunctionBuilder<'_>, index: usize, is_main: bool) {
        // Edit mode: each body draws from a forked stream (one draw from
        // the main stream per function, regardless of salt values), and
        // the name counter restarts per function. Re-salting function i
        // then changes only that body's text; names stay unique within a
        // function, which is all the IR requires.
        //
        // The salt's parity selects the edit's violence: an odd salt
        // re-seeds the whole body stream (a rewrite — every name,
        // allocation, and call in the function changes), an even
        // non-zero salt keeps the baseline body and appends a private
        // epilogue (the realistic "developer touches a few lines" edit).
        let frame = if self.cfg.edit_fraction > 0.0 {
            let fork_seed = self.rng.next_u64();
            let salt = self.salts.get(index).copied().unwrap_or(0);
            let local = salt != 0 && salt % 2 == 0;
            let seed = if local {
                fork_seed
            } else {
                fork_seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            };
            Some((
                std::mem::replace(&mut self.rng, Rng::seed_from_u64(seed)),
                std::mem::replace(&mut self.counter, 0),
                if local { salt } else { 0 },
            ))
        } else {
            None
        };
        let ret = self.build_body_inner(fb, index, is_main);
        if let Some((_, _, salt)) = frame {
            if salt != 0 {
                self.emit_epilogue(fb, salt);
            }
        }
        fb.ret(ret);
        if let Some((rng, counter, _)) = frame {
            self.rng = rng;
            self.counter = counter;
        }
    }

    /// Appends a private, non-escaping epilogue: a few fresh allocations
    /// plus stores and loads among them only. The new values never enter
    /// the general pool (no ret, no call argument, no global store), so
    /// the edit is invisible outside the function — exactly the kind of
    /// change an incremental analysis should absorb locally. Contents are
    /// drawn from the salt's own stream, and object names embed the salt,
    /// so distinct salts always produce distinct text.
    fn emit_epilogue(&mut self, fb: &mut FunctionBuilder<'_>, salt: u64) {
        let mut erng = Rng::seed_from_u64(salt);
        let cells: Vec<ValueId> = (0..1 + erng.gen_range(0usize..3))
            .map(|k| {
                let heap = erng.gen_bool(0.5);
                let vname = format!("e{k}");
                let oname = format!("E{salt:x}_{k}");
                if heap {
                    fb.alloc_heap(&vname, &oname, 1, false)
                } else {
                    fb.alloc_stack(&vname, &oname, 1, false)
                }
            })
            .collect();
        for k in 0..cells.len() {
            let addr = cells[erng.gen_range(0..cells.len())];
            let val = cells[erng.gen_range(0..cells.len())];
            fb.store(val, addr);
            let _ = fb.load(&format!("el{k}"), addr);
        }
    }

    fn build_body_inner(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        index: usize,
        is_main: bool,
    ) -> Option<ValueId> {
        self.cur_func_index = index;
        let entry = fb.block("entry");
        fb.switch_to(entry);

        let mut pool = Pool::default();
        if !is_main {
            for p in 0..2 {
                pool.add(fb.param(p));
            }
        }
        // Locality: this function touches only a small, deterministic
        // subset of the globals (main sees a slightly wider window).
        self.current_globals.clear();
        if !self.globals.is_empty() {
            let k = if is_main { 4 } else { 2 };
            let comm = index / COMMUNITY;
            for j in 0..k.min(self.globals.len()) {
                // Deterministic per-function subset biased to the
                // community's slice of the global table.
                let g = self.globals[(comm * 5 + index + j * 7) % self.globals.len()];
                if !self.current_globals.contains(&g) {
                    self.current_globals.push(g);
                }
            }
        }
        // Globals are load sources and (rationed) global-traffic store
        // targets, but never general store targets: arbitrary stores into
        // globals would merge unrelated object graphs program-wide.

        // Allocations up front (they dominate everything).
        let mut my_allocs: Vec<ValueId> = Vec::new();
        for _ in 0..self.cfg.allocs_per_function {
            let heap = self.rng.gen_bool(self.cfg.heap_fraction);
            let fields =
                if self.rng.gen_bool(self.cfg.field_fraction) { self.cfg.max_fields } else { 1 };
            let array = self.rng.gen_bool(self.cfg.array_fraction);
            let vname = self.fresh("a");
            let oname = format!("{}{}", if heap { "H" } else { "S" }, self.counter);
            let v = if heap {
                fb.alloc_heap(&vname, &oname, fields, array)
            } else {
                fb.alloc_stack(&vname, &oname, fields, array)
            };
            my_allocs.push(v);
            pool.add_addr(v);
        }

        // main calls a spread of functions so most code is reachable.
        if is_main && !self.funcs.is_empty() {
            let count = self.funcs.len().min(8);
            for k in 0..count {
                let callee = self.funcs[k * self.funcs.len() / count];
                let (Some(a0), Some(a1)) =
                    (self.pick_payload(&pool, &my_allocs), self.pick_payload(&pool, &my_allocs))
                else {
                    continue;
                };
                let dst = self.fresh("r");
                if let Some(v) = fb.call(Some(&dst), callee, &[a0, a1]) {
                    pool.add(v);
                }
            }
        }

        self.fill_block(fb, &mut pool, &my_allocs);
        for _ in 0..self.cfg.segments {
            let r: f64 = self.rng.gen_f64();
            if r < self.cfg.diamond_bias {
                self.segment_diamond(fb, &mut pool, &my_allocs, index);
            } else if r < self.cfg.diamond_bias + self.cfg.loop_bias {
                self.segment_loop(fb, &mut pool, &my_allocs, index);
            } else {
                self.segment_straight(fb, &mut pool, &my_allocs, index);
            }
        }

        if is_main {
            None
        } else {
            pick(&mut self.rng, &pool.all)
        }
    }

    /// Emits the instruction mix of one block, growing `pool`.
    ///
    /// `my_allocs` are this function's own allocations: the only values
    /// ever stored into globals. Real programs store typed data into
    /// typed containers; letting arbitrary pointers accumulate in global
    /// hubs destroys the auxiliary analysis's precision and inflates
    /// every downstream structure unrealistically.
    fn fill_block(&mut self, fb: &mut FunctionBuilder<'_>, pool: &mut Pool, my_allocs: &[ValueId]) {
        for _ in 0..self.cfg.stores_per_block {
            let (Some(val), Some(addr)) =
                (self.pick_payload(pool, my_allocs), pick(&mut self.rng, &pool.addrs))
            else {
                continue;
            };
            fb.store(val, addr);
        }
        // Occasional global traffic keeps interprocedural chains alive
        // (restricted to this function's globals for locality).
        if self.rng.gen_bool(self.cfg.global_traffic) && !self.current_globals.is_empty() {
            let g = self.current_globals[self.rng.gen_range(0..self.current_globals.len())];
            if let Some(val) = pick(&mut self.rng, my_allocs) {
                fb.store(val, g);
            }
            let name = self.fresh("gl");
            let lv = fb.load(&name, g);
            if self.rng.gen_bool(self.cfg.deref_chain) {
                pool.add_addr(lv);
            } else {
                pool.add(lv);
            }
        }
        // Loads, with chains: repeated loads of the same address share a
        // version — the single-object redundancy VSFS exploits.
        for _ in 0..self.cfg.loads_per_block {
            let from_global = !self.current_globals.is_empty()
                && (pool.addrs.is_empty() || self.rng.gen_bool(0.4));
            let addr = if from_global {
                pick(&mut self.rng, &self.current_globals.clone())
            } else {
                pick(&mut self.rng, &pool.addrs)
            };
            let Some(addr) = addr else { continue };
            for _ in 0..=self.cfg.load_chain {
                let name = self.fresh("l");
                let v = fb.load(&name, addr);
                if self.rng.gen_bool(self.cfg.deref_chain) {
                    pool.add_addr(v);
                } else {
                    pool.add(v);
                }
            }
        }
        if self.rng.gen_bool(self.cfg.field_fraction) {
            if let Some(base) = pick(&mut self.rng, &pool.addrs) {
                let off = self.rng.gen_range(0..self.cfg.max_fields.max(1));
                let name = self.fresh("f");
                let v = fb.gep(&name, base, off);
                pool.add_addr(v);
            }
        }
        // The `> 0.0` guards keep the RNG stream untouched when the
        // checker knobs are off, so every pre-existing workload stays
        // bit-identical.
        if self.cfg.null_fraction > 0.0 && self.rng.gen_bool(self.cfg.null_fraction) {
            let name = self.fresh("n");
            let v = fb.null_ptr(&name);
            pool.add(v);
        }
        // Frees last, after the block's loads/stores: freeing a pointer
        // whose object is still used later in another block is exactly
        // the kind of (possible) bug the checkers look for.
        if self.cfg.free_fraction > 0.0 && self.rng.gen_bool(self.cfg.free_fraction) {
            let target = if !my_allocs.is_empty() && self.rng.gen_bool(0.7) {
                pick(&mut self.rng, my_allocs)
            } else {
                pick(&mut self.rng, &pool.addrs)
            };
            if let Some(ptr) = target {
                fb.free(ptr);
            }
        }
        let per_fill = self.cfg.calls_per_function.div_ceil(self.cfg.segments.max(1));
        for _ in 0..per_fill {
            self.emit_call(fb, pool, my_allocs, self.cur_func_index);
        }
    }

    fn emit_call(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        pool: &mut Pool,
        my_allocs: &[ValueId],
        func_index: usize,
    ) {
        if self.funcs.is_empty() {
            return;
        }
        let (Some(a0), Some(a1)) =
            (self.pick_payload(pool, my_allocs), self.pick_payload(pool, my_allocs))
        else {
            return;
        };
        let indirect =
            self.rng.gen_bool(self.cfg.indirect_call_fraction) && !self.fptables.is_empty();
        if indirect {
            let tab = self.fptables[(func_index / COMMUNITY).min(self.fptables.len() - 1)];
            let fp_name = self.fresh("fp");
            let fp = fb.load(&fp_name, tab);
            pool.add(fp);
            let dst = self.fresh("ic");
            if let Some(v) = fb.icall(Some(&dst), fp, &[a0, a1]) {
                pool.add(v);
            }
        } else {
            // Mostly forward calls within the community; occasionally a
            // bridge call to any later function or a backward (possibly
            // recursive) call.
            let callee = if self.rng.gen_bool(self.cfg.backward_call_fraction) {
                self.funcs[self.rng.gen_range(0..self.funcs.len())]
            } else if func_index + 1 < self.funcs.len() {
                let comm_end = (((func_index / COMMUNITY) + 1) * COMMUNITY).min(self.funcs.len());
                let hi = if func_index + 1 < comm_end && self.rng.gen_bool(0.85) {
                    comm_end
                } else {
                    self.funcs.len()
                };
                let idx = self.rng.gen_range(func_index + 1..hi);
                self.funcs[idx]
            } else {
                return;
            };
            let dst = self.fresh("c");
            if let Some(v) = fb.call(Some(&dst), callee, &[a0, a1]) {
                pool.add(v);
            }
        }
    }

    fn segment_straight(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        pool: &mut Pool,
        my_allocs: &[ValueId],
        _fi: usize,
    ) {
        let name = self.fresh("b");
        let b = fb.block(&name);
        fb.goto(b);
        fb.switch_to(b);
        self.fill_block(fb, pool, my_allocs);
    }

    fn segment_diamond(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        pool: &mut Pool,
        my_allocs: &[ValueId],
        _fi: usize,
    ) {
        let (ln, rn, jn) = (self.fresh("dl"), self.fresh("dr"), self.fresh("dj"));
        let l = fb.block(&ln);
        let r = fb.block(&rn);
        let j = fb.block(&jn);
        fb.br(&[l, r]);

        fb.switch_to(l);
        let mut lpool = pool.clone();
        self.fill_block(fb, &mut lpool, my_allocs);
        fb.goto(j);

        fb.switch_to(r);
        let mut rpool = pool.clone();
        self.fill_block(fb, &mut rpool, my_allocs);
        fb.goto(j);

        fb.switch_to(j);
        // Merge one value from each arm with a phi, if both produced any.
        let lv = lpool.all.iter().copied().find(|v| !pool.all.contains(v));
        let rv = rpool.all.iter().copied().find(|v| !pool.all.contains(v));
        if let (Some(lv), Some(rv)) = (lv, rv) {
            let name = self.fresh("m");
            let v = fb.phi(&name, &[lv, rv]);
            pool.add(v);
        }
        self.fill_block(fb, pool, my_allocs);
    }

    fn segment_loop(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        pool: &mut Pool,
        my_allocs: &[ValueId],
        _fi: usize,
    ) {
        let (hn, bn, on) = (self.fresh("lh"), self.fresh("lb"), self.fresh("lo"));
        let head = fb.block(&hn);
        let body = fb.block(&bn);
        let out = fb.block(&on);
        fb.goto(head);

        fb.switch_to(head);
        // Loop-carried pointer: phi(entry value, body value); the body
        // operand is patched once the body exists.
        let carried = pick(&mut self.rng, &pool.all);
        let phi = carried.map(|init| {
            let name = self.fresh("lc");
            let v = fb.phi(&name, &[init, init]);
            pool.add(v);
            v
        });
        self.fill_block(fb, pool, my_allocs);
        fb.br(&[body, out]);

        fb.switch_to(body);
        let mut bpool = pool.clone();
        self.fill_block(fb, &mut bpool, my_allocs);
        if let Some(phi_v) = phi {
            if let Some(bv) = bpool.all.iter().copied().find(|v| !pool.all.contains(v)) {
                let inst = fb.def_inst_of(phi_v).expect("phi was just defined");
                fb.patch_phi_operand(inst, 1, bv);
            }
        }
        fb.goto(head);

        fb.switch_to(out);
        self.fill_block(fb, pool, my_allocs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_verify() {
        for seed in 0..10 {
            let prog = generate(&WorkloadConfig { seed, ..WorkloadConfig::small() });
            vsfs_ir::verify::verify(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(prog.inst_count() > 50, "seed {seed} produced a trivial program");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig { seed: 123, ..WorkloadConfig::small() };
        let a = generate(&cfg).to_string();
        let b = generate(&cfg).to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig { seed: 1, ..WorkloadConfig::small() }).to_string();
        let b = generate(&WorkloadConfig { seed: 2, ..WorkloadConfig::small() }).to_string();
        assert_ne!(a, b);
    }

    #[test]
    fn knobs_change_shape() {
        let base = generate(&WorkloadConfig { seed: 9, ..WorkloadConfig::small() });
        let heavy = generate(&WorkloadConfig {
            seed: 9,
            loads_per_block: 6,
            load_chain: 3,
            ..WorkloadConfig::small()
        });
        assert!(heavy.inst_count() > base.inst_count());
    }

    #[test]
    fn edit_mode_resalt_changes_only_that_function() {
        let cfg = WorkloadConfig { seed: 77, edit_fraction: 0.5, ..WorkloadConfig::small() };
        let base = generate_edited(&cfg, &[]).to_string();
        let mut salts = vec![0u64; cfg.functions];
        salts[2] = 0xdead_beef;
        let edited = generate_edited(&cfg, &salts).to_string();
        assert_ne!(base, edited, "salting f2 must change its body");
        // Every function except f2 keeps byte-identical text.
        let split = |s: &str| {
            let mut chunks: Vec<(String, String)> = Vec::new();
            let mut cur: Option<(String, String)> = None;
            for line in s.lines() {
                if let Some(rest) = line.strip_prefix("func @") {
                    let name = rest.split(['(', ' ']).next().unwrap().to_string();
                    cur = Some((name, String::new()));
                }
                if let Some((_, body)) = cur.as_mut() {
                    body.push_str(line);
                    body.push('\n');
                }
                if line.starts_with('}') {
                    if let Some(c) = cur.take() {
                        chunks.push(c);
                    }
                }
            }
            chunks
        };
        let a = split(&base);
        let b = split(&edited);
        assert_eq!(a.len(), b.len());
        for ((an, at), (bn, bt)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            if an == "f2" {
                assert_ne!(at, bt);
            } else {
                assert_eq!(at, bt, "function {an} changed by an edit to f2");
            }
        }
        // Salted generation still verifies.
        vsfs_ir::verify::verify(&generate_edited(&cfg, &salts)).unwrap();
    }

    #[test]
    fn edit_mode_off_ignores_salts_and_keeps_stream() {
        let cfg = WorkloadConfig { seed: 5, ..WorkloadConfig::small() };
        assert_eq!(cfg.edit_fraction, 0.0);
        let a = generate(&cfg).to_string();
        let b = generate_edited(&cfg, &[7, 7, 7]).to_string();
        assert_eq!(a, b, "salts must be inert when edit_fraction is 0");
    }

    #[test]
    fn generated_programs_analyze_end_to_end() {
        let prog = generate(&WorkloadConfig { seed: 5, ..WorkloadConfig::small() });
        let aux = vsfs_andersen::analyze(&prog);
        assert!(aux.callgraph.edge_count() > 0);
    }
}

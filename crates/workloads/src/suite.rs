//! The 15-benchmark suite modelled on Table II of the paper.
//!
//! Each entry is a seeded generator configuration whose *shape* mirrors
//! the corresponding real benchmark: relative SVFG size, indirect-edge
//! density (heap/global intensity and load chains), and indirect-call
//! density. Sizes are scaled down so the whole suite (Andersen + SFS +
//! VSFS, Table III) runs in seconds instead of the paper's ~10 hours;
//! `DESIGN.md` §2 documents the substitution.

use crate::gen::WorkloadConfig;

/// One benchmark row of Tables II/III.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name (the paper's program name).
    pub name: &'static str,
    /// The paper's lines-of-code figure, reported for context.
    pub paper_loc: u32,
    /// Short description from Table II.
    pub description: &'static str,
    /// Generator configuration.
    pub config: WorkloadConfig,
    /// Whether the paper's SFS run exhausted memory on this benchmark.
    pub paper_sfs_oom: bool,
}

/// Personality of a benchmark: how much single-object redundancy its SVFG
/// carries, which is what separates SFS from VSFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Profile {
    /// Analysed quickly by SFS already (paper speedups ≈ 1.4–2.4×).
    Light,
    /// Moderate redundancy (paper speedups ≈ 2.4–7×).
    Medium,
    /// Heap-intensive with long value-flow chains (paper speedups > 7×,
    /// up to 26× / OOM for SFS).
    Heavy,
}

fn config(seed: u64, functions: usize, segments: usize, profile: Profile) -> WorkloadConfig {
    let base = WorkloadConfig {
        seed,
        functions,
        segments,
        globals: (functions / 2).clamp(4, 40),
        allocs_per_function: 4,
        loads_per_block: 2,
        stores_per_block: 1,
        load_chain: 1,
        heap_fraction: 0.4,
        array_fraction: 0.3,
        field_fraction: 0.25,
        max_fields: 3,
        calls_per_function: 3,
        indirect_call_fraction: 0.2,
        backward_call_fraction: 0.05,
        global_traffic: 0.4,
        diamond_bias: 0.3,
        loop_bias: 0.15,
        deref_chain: 0.2,
        free_fraction: 0.0,
        null_fraction: 0.0,
        edit_fraction: 0.0,
    };
    match profile {
        Profile::Light => WorkloadConfig {
            loads_per_block: 1,
            load_chain: 0,
            heap_fraction: 0.25,
            array_fraction: 0.15,
            global_traffic: 0.25,
            deref_chain: 0.1,
            ..base
        },
        Profile::Medium => base,
        Profile::Heavy => WorkloadConfig {
            loads_per_block: 6,
            stores_per_block: 2,
            load_chain: 8,
            heap_fraction: 0.7,
            array_fraction: 0.6,
            global_traffic: 0.8,
            indirect_call_fraction: 0.3,
            deref_chain: 0.3,
            ..base
        },
    }
}

/// The 15 benchmark specs, in Table II order.
pub fn suite() -> Vec<BenchmarkSpec> {
    use Profile::*;
    let spec = |name, paper_loc, description, seed, functions, segments, profile, paper_sfs_oom| {
        BenchmarkSpec {
            name,
            paper_loc,
            description,
            config: config(seed, functions, segments, profile),
            paper_sfs_oom,
        }
    };
    vec![
        spec("du", 27_704, "Disk usage (GNU)", 101, 16, 3, Light, false),
        spec("ninja", 8_702, "Build system", 102, 24, 4, Medium, false),
        spec("bake", 20_548, "Build system", 103, 40, 5, Heavy, false),
        spec("dpkg", 21_934, "Package manager", 104, 48, 4, Light, false),
        spec("nano", 27_564, "Text editor", 105, 40, 4, Heavy, false),
        spec("i3", 22_895, "Window manager", 106, 56, 4, Light, false),
        spec("psql", 47_444, "PostgreSQL frontend", 107, 52, 4, Light, false),
        spec("janet", 56_500, "Janet compiler", 108, 48, 5, Heavy, false),
        spec("astyle", 16_715, "Code formatter", 109, 56, 5, Heavy, false),
        spec("tmux", 48_205, "Terminal multiplexer", 110, 64, 5, Medium, false),
        spec("mruby", 58_087, "Ruby interpreter", 111, 56, 4, Light, false),
        spec("mutt", 64_046, "Terminal email client", 112, 56, 6, Heavy, false),
        spec("bash", 102_319, "UNIX shell", 113, 64, 6, Heavy, false),
        spec("lynx", 138_182, "Terminal web browser", 114, 72, 6, Heavy, true),
        spec("hyriseConsole", 37_300, "Hyrise DB frontend", 115, 96, 5, Medium, false),
    ]
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    suite().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks_in_paper_order() {
        let s = suite();
        assert_eq!(s.len(), 15);
        assert_eq!(s[0].name, "du");
        assert_eq!(s[14].name, "hyriseConsole");
        assert!(s.iter().filter(|b| b.paper_sfs_oom).count() == 1);
        assert_eq!(s.iter().find(|b| b.paper_sfs_oom).unwrap().name, "lynx");
    }

    #[test]
    fn seeds_are_distinct() {
        let s = suite();
        let mut seeds: Vec<u64> = s.iter().map(|b| b.config.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 15);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("bash").is_some());
        assert!(benchmark("nonesuch").is_none());
    }

    #[test]
    fn smallest_benchmark_generates_and_verifies() {
        let b = benchmark("du").unwrap();
        let prog = crate::generate(&b.config);
        vsfs_ir::verify::verify(&prog).unwrap();
        assert!(prog.inst_count() > 200);
    }
}

#[cfg(test)]
mod all_benchmarks_generate {
    use super::*;

    /// Every suite entry generates a well-formed program of plausible
    /// size (generation only — full analysis is exercised by the bench
    /// harness and scaled-down configs elsewhere).
    #[test]
    fn all_fifteen_generate_and_verify() {
        for b in suite() {
            let prog = crate::generate(&b.config);
            vsfs_ir::verify::verify(&prog).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                prog.inst_count() > 300,
                "{} generated only {} instructions",
                b.name,
                prog.inst_count()
            );
            assert!(prog.entry.is_some(), "{} lacks main", b.name);
        }
    }

    /// Sizes are ordered roughly like Table II: du smallest, lynx the
    /// largest heavy benchmark.
    #[test]
    fn relative_sizes_follow_table2() {
        let size = |name: &str| crate::generate(&benchmark(name).unwrap().config).inst_count();
        let du = size("du");
        let bash = size("bash");
        let lynx = size("lynx");
        assert!(du < bash && bash < lynx, "du={du} bash={bash} lynx={lynx}");
    }
}

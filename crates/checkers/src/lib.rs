//! Source-sink value-flow checkers on the SVFG.
//!
//! This crate turns the pointer analyses into a *client*: a generic
//! source-sink reachability engine over the sparse value-flow graph, and
//! four memory-safety checkers built on it —
//!
//! * **use-after-free** — a `LOAD`/`STORE` may access an object after a
//!   `FREE` of it;
//! * **double-free** — a `FREE` may deallocate an object a previous
//!   `FREE` already deallocated;
//! * **leak** — a heap allocation has an execution path to its
//!   function's exit on which no reaching `FREE` runs;
//! * **null-deref** — a `LOAD`/`STORE`/`FREE` whose pointer may be the
//!   null pseudo-object.
//!
//! The interesting property is how the checkers consume the analysis: the
//! SVFG (and hence the *reachability structure*) is fixed, but every
//! points-to guard — taint seeds, sink tests, call-edge activation — goes
//! through a [`PtsView`], so the same checker run under the auxiliary
//! Andersen result and under the flow-sensitive result differs only in
//! precision. Comparing the two finding sets measures the client-facing
//! value of flow-sensitivity (false positives removed by strong updates),
//! the role Table III plays in the paper.
//!
//! Monotonicity across views (checked by property tests):
//!
//! * use-after-free, double-free, null-deref findings **shrink** going
//!   from Andersen to flow-sensitive (sources, sinks, and call edges are
//!   all guarded by points-to sets that only shrink);
//! * leak findings **grow** (an allocation leaks when *no* free reaches
//!   it, and "the frees that may free `o`" is itself a may-set that
//!   shrinks under the more precise view).
//!
//! # Example
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack P
//!   %h = alloc heap H
//!   store %h, %p
//!   free %h
//!   %x = load %p
//!   %y = load %x       // use-after-free: H was freed
//!   ret
//! }
//! "#)?;
//! let report = vsfs_checkers::check_program(&prog);
//! assert_eq!(report.flow_findings.len(), 1);
//! assert_eq!(report.flow_findings[0].checker, vsfs_checkers::CheckerKind::UseAfterFree);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkers;
pub mod corpus;
pub mod engine;
pub mod report;
pub mod view;

pub use checkers::{run_checkers, CheckerKind, Finding};
pub use corpus::{load_corpus, CheckerCase};
pub use engine::TaintGraph;
pub use report::{render_finding, render_findings, CheckReport};
pub use view::{AndersenView, FlowView, PtsView, UnifyView};

use vsfs_ir::Program;

/// Runs the full pipeline (Andersen → memory SSA → SVFG → SFS) and both
/// checker passes on `prog` — the convenience entry used by tests, the
/// corpus gate, and examples. The CLI composes the stages itself so it
/// can honour `--analysis`, `--jobs`, and resource budgets.
pub fn check_program(prog: &Program) -> CheckReport {
    let aux = vsfs_andersen::analyze(prog);
    let mssa = vsfs_mssa::MemorySsa::build(prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(prog, &aux, &mssa);
    let fs = vsfs_core::run_sfs(prog, &aux, &mssa, &svfg);
    let andersen_findings = run_checkers(prog, &svfg, &AndersenView(&aux));
    let flow_findings = run_checkers(prog, &svfg, &FlowView(&fs));
    CheckReport::new(prog, andersen_findings, flow_findings)
}

//! The labelled checker corpus: `.vir` programs with `.expected`
//! sidecars.
//!
//! A corpus case is a pair of files in one directory:
//!
//! * `<name>.vir` — the program, in the textual IR;
//! * `<name>.expected` — the diagnostics the flow-sensitive checker run
//!   must produce, one rendered line per line, in report order. An empty
//!   (or comment-only) file labels a *clean* program: near-miss code the
//!   checkers must stay silent on.
//!
//! Lines starting with `#` are comments. The corpus ships in
//! `workloads/checkers/` at the repository root and is enforced —
//! verbatim, order included — by the crate's tests and by
//! `scripts/ci.sh`.

use std::fs;
use std::io;
use std::path::Path;

/// One labelled program.
#[derive(Debug, Clone)]
pub struct CheckerCase {
    /// The file stem (e.g. `uaf_simple`).
    pub name: String,
    /// The program source.
    pub source: String,
    /// The expected flow-sensitive diagnostics, in order. Empty for
    /// clean programs.
    pub expected: Vec<String>,
}

/// Loads every `.vir`/`.expected` pair in `dir`, sorted by name.
///
/// # Errors
///
/// Fails if the directory is unreadable or a `.vir` file lacks its
/// `.expected` sidecar (every corpus program must be labelled).
pub fn load_corpus(dir: &Path) -> io::Result<Vec<CheckerCase>> {
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("vir") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    let mut cases = Vec::with_capacity(names.len());
    for name in names {
        let source = fs::read_to_string(dir.join(format!("{name}.vir")))?;
        let sidecar = dir.join(format!("{name}.expected"));
        let expected_raw = fs::read_to_string(&sidecar).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("{name}.vir has no readable {name}.expected sidecar: {e}"),
            )
        })?;
        let expected = expected_raw
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        cases.push(CheckerCase { name, source, expected });
    }
    Ok(cases)
}

/// The repository's corpus directory, resolved relative to this crate
/// (`workloads/checkers/` at the repo root).
pub fn default_corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads/checkers")
}

//! Rendering: deterministic text diagnostics and the JSON comparison
//! report.
//!
//! Text lines are `LINE:COL: <checker>: <detail>` when the instruction
//! has a source span (programs from the textual form), falling back to
//! the IR location (`i12 in @main:entry`) for builder-made programs. The
//! `.expected` sidecars of the checker corpus contain exactly these
//! lines, in exactly this order — the CI gate diffs them verbatim.

use vsfs_ir::{InstId, Program};

use crate::checkers::{CheckerKind, Finding};

fn loc(prog: &Program, inst: InstId) -> String {
    match prog.inst_span(inst) {
        Some((line, col)) => format!("{line}:{col}"),
        None => prog.inst_location(inst),
    }
}

/// Renders one finding as a diagnostic line.
pub fn render_finding(prog: &Program, f: &Finding) -> String {
    let at = loc(prog, f.inst);
    let obj = &prog.objects[f.obj].name;
    let mnem = prog.insts[f.inst].kind.mnemonic();
    match f.checker {
        CheckerKind::UseAfterFree => {
            let src = f.src.map(|s| loc(prog, s)).unwrap_or_default();
            format!("{at}: use-after-free: {mnem} may access {obj} freed at {src}")
        }
        CheckerKind::DoubleFree => {
            let src = f.src.map(|s| loc(prog, s)).unwrap_or_default();
            format!("{at}: double-free: {obj} may already be freed at {src}")
        }
        CheckerKind::Leak => {
            format!("{at}: leak: {obj} allocated here may never be freed")
        }
        CheckerKind::NullDeref => {
            format!("{at}: null-deref: {mnem} through possibly-null pointer")
        }
    }
}

/// Renders a finding list in its (already sorted) order.
pub fn render_findings(prog: &Program, findings: &[Finding]) -> Vec<String> {
    findings.iter().map(|f| render_finding(prog, f)).collect()
}

/// The outcome of running every checker under the precision tiers on
/// one program: the finding sets, their rendered lines, and the
/// per-checker precision deltas.
///
/// The two fine tiers (Andersen and flow-sensitive) are always present;
/// the two unification tiers (classic Steensgaard and the refined
/// no-oversharing variant) are optional, so two-tier callers — the
/// server's `check` op, older tests — keep working unchanged while the
/// CLI reports all four rungs of the soundness ladder.
pub struct CheckReport {
    /// Findings under classic Steensgaard unification (coarsest tier),
    /// when the caller ran it.
    pub steensgaard_findings: Option<Vec<Finding>>,
    /// Findings under refined (no-oversharing) unification, when run.
    pub unify_findings: Option<Vec<Finding>>,
    /// Findings under the auxiliary Andersen view, sorted.
    pub andersen_findings: Vec<Finding>,
    /// Findings under the flow-sensitive view, sorted.
    pub flow_findings: Vec<Finding>,
    /// Rendered diagnostics for `andersen_findings`.
    pub andersen_lines: Vec<String>,
    /// Rendered diagnostics for `flow_findings` — the tool's output.
    pub flow_lines: Vec<String>,
}

impl CheckReport {
    /// Renders both fine-tier finding sets (no unification tiers).
    pub fn new(
        prog: &Program,
        andersen_findings: Vec<Finding>,
        flow_findings: Vec<Finding>,
    ) -> CheckReport {
        let andersen_lines = render_findings(prog, &andersen_findings);
        let flow_lines = render_findings(prog, &flow_findings);
        CheckReport {
            steensgaard_findings: None,
            unify_findings: None,
            andersen_findings,
            flow_findings,
            andersen_lines,
            flow_lines,
        }
    }

    /// [`CheckReport::new`] plus the two unification tiers, coarsest
    /// first: the full four-rung precision ladder.
    pub fn with_tiers(
        prog: &Program,
        steensgaard_findings: Vec<Finding>,
        unify_findings: Vec<Finding>,
        andersen_findings: Vec<Finding>,
        flow_findings: Vec<Finding>,
    ) -> CheckReport {
        let mut report = CheckReport::new(prog, andersen_findings, flow_findings);
        report.steensgaard_findings = Some(steensgaard_findings);
        report.unify_findings = Some(unify_findings);
        report
    }

    fn count(findings: &[Finding], checker: CheckerKind) -> usize {
        findings.iter().filter(|f| f.checker == checker).count()
    }

    /// Andersen findings minus flow-sensitive findings for `checker`:
    /// the false positives flow-sensitivity removed. Negative for the
    /// leak checker's inverted direction (a more precise "may free" set
    /// yields *more* leak reports).
    pub fn fp_removed(&self, checker: CheckerKind) -> i64 {
        Self::count(&self.andersen_findings, checker) as i64
            - Self::count(&self.flow_findings, checker) as i64
    }

    /// A human-readable per-checker summary. Two tiers:
    /// `checker: andersen=N flow-sensitive=M fp-removed=D`; four tiers
    /// insert `steensgaard=` and `unify=` counts before `andersen=`.
    /// `fp-removed` (the Andersen → flow-sensitive delta) stays last —
    /// the CI degradation gate matches on its trailing position.
    pub fn summary_lines(&self) -> Vec<String> {
        CheckerKind::ALL
            .iter()
            .map(|&c| {
                let coarse = match (&self.steensgaard_findings, &self.unify_findings) {
                    (Some(st), Some(un)) => {
                        format!("steensgaard={} unify={} ", Self::count(st, c), Self::count(un, c))
                    }
                    _ => String::new(),
                };
                format!(
                    "{}: {}andersen={} flow-sensitive={} fp-removed={}",
                    c.name(),
                    coarse,
                    Self::count(&self.andersen_findings, c),
                    Self::count(&self.flow_findings, c),
                    self.fp_removed(c)
                )
            })
            .collect()
    }

    /// The JSON record for `program`, with deterministic key and array
    /// order. This is the machine-readable Table III row: per-checker
    /// counts under every tier that ran plus the flow-sensitive
    /// diagnostics.
    pub fn to_json(&self, program: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"program\":{},\"checkers\":[", json_str(program)));
        for (i, &c) in CheckerKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut coarse = String::new();
            if let Some(st) = &self.steensgaard_findings {
                coarse.push_str(&format!("\"steensgaard\":{},", Self::count(st, c)));
            }
            if let Some(un) = &self.unify_findings {
                coarse.push_str(&format!("\"unify\":{},", Self::count(un, c)));
            }
            out.push_str(&format!(
                "{{\"checker\":{},{}\"andersen\":{},\"flow_sensitive\":{},\"fp_removed\":{}}}",
                json_str(c.name()),
                coarse,
                Self::count(&self.andersen_findings, c),
                Self::count(&self.flow_findings, c),
                self.fp_removed(c)
            ));
        }
        out.push_str("],\"findings\":[");
        for (i, line) in self.flow_lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(line));
        }
        out.push_str("],\"andersen_findings\":[");
        for (i, line) in self.andersen_lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(line));
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

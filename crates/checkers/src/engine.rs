//! The generic source-sink reachability engine.
//!
//! A checker's *source* introduces a taint fact "object `o`'s memory
//! state, as of this SVFG node" (e.g. "freed at this `FREE`"). The fact
//! propagates forward along the graph the memory-SSA renaming already
//! built: an `o`-labelled indirect edge means the target consumes the
//! source's memory state of `o`, so the taint travels *unguarded* — it
//! cannot be killed, because even a strong update's χ produces a state
//! observed *after* the tainted one, and any later µ wired to the
//! tainted def genuinely observes it. Precision enters only at the ends:
//! which objects are seeded (source guard) and which reached nodes count
//! (sink guard), both answered by the caller through its
//! [`crate::PtsView`].
//!
//! Interprocedural edges for *indirect* call sites are not materialised
//! in the SVFG; they live in deferred [`vsfs_svfg::CallBinding`]s keyed
//! by `(call, callee)`. [`TaintGraph`] activates exactly the bindings
//! whose call edge the view resolves, mirroring what the flow-sensitive
//! solver itself does on the fly — so the Andersen view walks more
//! interprocedural edges than the flow-sensitive view, as it should.

use std::collections::{HashMap, HashSet, VecDeque};
use vsfs_ir::{ObjId, Program};
use vsfs_svfg::{Svfg, SvfgNodeId};

use crate::view::PtsView;

/// The SVFG plus the interprocedural binding edges a view activates.
pub struct TaintGraph<'a> {
    svfg: &'a Svfg,
    /// Activated `CallBinding` edges, keyed by source node.
    extra_succs: HashMap<SvfgNodeId, Vec<(SvfgNodeId, ObjId)>>,
}

/// One BFS wave from a single source node: every traversed edge in BFS
/// order, plus the parent map for path reconstruction.
pub struct Wave {
    seed: SvfgNodeId,
    parent: HashMap<(SvfgNodeId, ObjId), (SvfgNodeId, ObjId)>,
    /// Every `(from, object, to)` edge the wave crossed, in BFS order.
    /// Edges into already-visited nodes are included (a loop can carry a
    /// freed object back into its own `FREE`), so sink scans must
    /// deduplicate findings themselves.
    pub edges: Vec<(SvfgNodeId, ObjId, SvfgNodeId)>,
}

impl Wave {
    /// The node path `seed → … → from → to` that first carried `obj` to
    /// `from`. Deterministic: BFS with deterministically ordered edges
    /// makes the first-discovery parent unique.
    pub fn path(&self, from: SvfgNodeId, obj: ObjId, to: SvfgNodeId) -> Vec<SvfgNodeId> {
        let mut rev = vec![to, from];
        let mut cur = (from, obj);
        while cur.0 != self.seed {
            match self.parent.get(&cur) {
                Some(&p) => {
                    rev.push(p.0);
                    cur = p;
                }
                None => break,
            }
        }
        rev.reverse();
        rev
    }
}

impl<'a> TaintGraph<'a> {
    /// Builds the propagation graph for one view: the SVFG's materialised
    /// indirect edges plus the deferred call-binding edges of every call
    /// edge the view resolves.
    pub fn new(prog: &Program, svfg: &'a Svfg, view: &dyn PtsView) -> TaintGraph<'a> {
        let mut extra_succs: HashMap<SvfgNodeId, Vec<(SvfgNodeId, ObjId)>> = HashMap::new();
        for (call, callee) in view.call_edges() {
            let Some(binding) = svfg.call_binding(call, callee) else { continue };
            let f = &prog.functions[callee];
            let call_node = svfg.inst_node(call);
            let entry_node = svfg.inst_node(f.entry_inst);
            for &o in &binding.ins {
                extra_succs.entry(call_node).or_default().push((entry_node, o));
            }
            let exit_node = svfg.inst_node(f.exit_inst);
            let ret_node = svfg.callret_node(call);
            for &o in &binding.outs {
                extra_succs.entry(exit_node).or_default().push((ret_node, o));
            }
        }
        TaintGraph { svfg, extra_succs }
    }

    /// Forward BFS from `seed`, carrying each object in `objs` along its
    /// own labelled edges. `objs` must be sorted for deterministic order.
    pub fn reach(&self, seed: SvfgNodeId, objs: &[ObjId]) -> Wave {
        let mut wave = Wave { seed, parent: HashMap::new(), edges: Vec::new() };
        let mut visited: HashSet<(SvfgNodeId, ObjId)> = HashSet::new();
        let mut queue: VecDeque<(SvfgNodeId, ObjId)> = VecDeque::new();
        for &o in objs {
            if visited.insert((seed, o)) {
                queue.push_back((seed, o));
            }
        }
        while let Some((node, obj)) = queue.pop_front() {
            let materialised = self
                .svfg
                .indirect_succs(node)
                .iter()
                .filter(|&&(_, s)| self.svfg.obj_set(s).binary_search(&obj).is_ok())
                .map(|&(succ, _)| succ);
            let activated = self
                .extra_succs
                .get(&node)
                .map(|v| v.as_slice())
                .unwrap_or(&[])
                .iter()
                .filter(|&&(_, eo)| eo == obj)
                .map(|&(succ, _)| succ);
            for succ in materialised.chain(activated) {
                wave.edges.push((node, obj, succ));
                if visited.insert((succ, obj)) {
                    wave.parent.insert((succ, obj), (node, obj));
                    queue.push_back((succ, obj));
                }
            }
        }
        wave
    }
}

//! The points-to view a checker runs under.
//!
//! Checkers never touch an analysis result directly: every guard goes
//! through [`PtsView`], so the *same* checker code runs over every
//! precision tier of the solver family — the unification pre-analysis
//! (classic Steensgaard and the refined no-oversharing variant), the
//! auxiliary (flow-insensitive) Andersen result, and the flow-sensitive
//! result. The difference between two tiers' finding sets is exactly
//! the false positives the finer tier removes — the client-facing
//! precision measurement of the paper's Table III, extended down the
//! four-rung ladder steensgaard ⊇ unify ⊇ andersen ⊇ flow-sensitive.

use vsfs_adt::PointsToSet;
use vsfs_andersen::{AndersenResult, UnifyResult};
use vsfs_core::FlowSensitiveResult;
use vsfs_ir::{FuncId, InstId, ObjId, ValueId};

/// Read-only access to a pointer analysis result.
pub trait PtsView {
    /// The points-to set of top-level value `v` under this view.
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId>;

    /// The `(call site, callee)` edges resolved under this view, sorted.
    /// Drives activation of the SVFG's deferred interprocedural bindings.
    fn call_edges(&self) -> Vec<(InstId, FuncId)>;

    /// A short name for reports: `"steensgaard"`, `"unify"`,
    /// `"andersen"`, or `"flow-sensitive"`.
    fn mode(&self) -> &'static str;
}

/// The auxiliary Andersen result as a view (the imprecise baseline).
pub struct AndersenView<'a>(pub &'a AndersenResult);

impl PtsView for AndersenView<'_> {
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.0.value_pts(v)
    }

    fn call_edges(&self) -> Vec<(InstId, FuncId)> {
        let mut edges: Vec<_> = self.0.callgraph.edges().collect();
        edges.sort_unstable();
        edges
    }

    fn mode(&self) -> &'static str {
        "andersen"
    }
}

/// A unification result as a view — the coarsest tier(s). The mode name
/// follows the result's configuration: `"unify"` for the default
/// no-oversharing refinements, `"steensgaard"` for classic unification.
pub struct UnifyView<'a>(pub &'a UnifyResult);

impl PtsView for UnifyView<'_> {
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.0.value_pts(v)
    }

    fn call_edges(&self) -> Vec<(InstId, FuncId)> {
        let mut edges: Vec<_> = self.0.callgraph.edges().collect();
        edges.sort_unstable();
        edges
    }

    fn mode(&self) -> &'static str {
        self.0.config.tier_name()
    }
}

/// A flow-sensitive result (SFS or VSFS — identical precision) as a view.
pub struct FlowView<'a>(pub &'a FlowSensitiveResult);

impl PtsView for FlowView<'_> {
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.0.value_pts(v)
    }

    fn call_edges(&self) -> Vec<(InstId, FuncId)> {
        self.0.callgraph_edges.clone()
    }

    fn mode(&self) -> &'static str {
        "flow-sensitive"
    }
}

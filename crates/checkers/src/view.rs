//! The points-to view a checker runs under.
//!
//! Checkers never touch an analysis result directly: every guard goes
//! through [`PtsView`], so the *same* checker code runs once over the
//! auxiliary (flow-insensitive) Andersen result and once over the
//! flow-sensitive result. The difference between the two finding sets is
//! exactly the false positives flow-sensitivity removes — the
//! client-facing precision measurement of the paper's Table III.

use vsfs_adt::PointsToSet;
use vsfs_andersen::AndersenResult;
use vsfs_core::FlowSensitiveResult;
use vsfs_ir::{FuncId, InstId, ObjId, ValueId};

/// Read-only access to a pointer analysis result.
pub trait PtsView {
    /// The points-to set of top-level value `v` under this view.
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId>;

    /// The `(call site, callee)` edges resolved under this view, sorted.
    /// Drives activation of the SVFG's deferred interprocedural bindings.
    fn call_edges(&self) -> Vec<(InstId, FuncId)>;

    /// A short name for reports: `"andersen"` or `"flow-sensitive"`.
    fn mode(&self) -> &'static str;
}

/// The auxiliary Andersen result as a view (the imprecise baseline).
pub struct AndersenView<'a>(pub &'a AndersenResult);

impl PtsView for AndersenView<'_> {
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.0.value_pts(v)
    }

    fn call_edges(&self) -> Vec<(InstId, FuncId)> {
        let mut edges: Vec<_> = self.0.callgraph.edges().collect();
        edges.sort_unstable();
        edges
    }

    fn mode(&self) -> &'static str {
        "andersen"
    }
}

/// A flow-sensitive result (SFS or VSFS — identical precision) as a view.
pub struct FlowView<'a>(pub &'a FlowSensitiveResult);

impl PtsView for FlowView<'_> {
    fn pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.0.value_pts(v)
    }

    fn call_edges(&self) -> Vec<(InstId, FuncId)> {
        self.0.callgraph_edges.clone()
    }

    fn mode(&self) -> &'static str {
        "flow-sensitive"
    }
}

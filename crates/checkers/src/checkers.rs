//! The four memory-safety checkers, expressed as source-sink queries.

use std::collections::{HashSet, VecDeque};
use vsfs_ir::{BlockId, InstId, InstKind, ObjId, Program};
use vsfs_svfg::{Svfg, SvfgNodeId, SvfgNodeKind};

use crate::engine::TaintGraph;
use crate::view::PtsView;

/// Which checker produced a finding. The declaration order is the report
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckerKind {
    /// A `LOAD`/`STORE` may access an object after a `FREE` of it.
    UseAfterFree,
    /// A `FREE` may deallocate an already-deallocated object.
    DoubleFree,
    /// A heap allocation with an exit path on which no reaching `FREE`
    /// runs.
    Leak,
    /// A `LOAD`/`STORE`/`FREE` whose pointer may be null.
    NullDeref,
}

impl CheckerKind {
    /// All checkers, in report order.
    pub const ALL: [CheckerKind; 4] = [
        CheckerKind::UseAfterFree,
        CheckerKind::DoubleFree,
        CheckerKind::Leak,
        CheckerKind::NullDeref,
    ];

    /// The checker's report name.
    pub fn name(self) -> &'static str {
        match self {
            CheckerKind::UseAfterFree => "use-after-free",
            CheckerKind::DoubleFree => "double-free",
            CheckerKind::Leak => "leak",
            CheckerKind::NullDeref => "null-deref",
        }
    }
}

/// One diagnostic. `Ord` is the report order: checker, then sink
/// instruction, then object, then source — so rendered output is stable
/// without any further tie-breaking.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The checker that fired.
    pub checker: CheckerKind,
    /// The sink: the offending access/`FREE`, or the allocation for
    /// leaks.
    pub inst: InstId,
    /// The object involved (the null pseudo-object for null-derefs).
    pub obj: ObjId,
    /// The source: the earlier `FREE` for use-after-free/double-free;
    /// `None` for leaks and null-derefs (their source is `inst` itself).
    pub src: Option<InstId>,
    /// The SVFG node path that carried the object from source to sink
    /// (empty when no value-flow propagation was involved).
    pub path: Vec<SvfgNodeId>,
}

/// Runs all four checkers over `prog` under `view` and returns the
/// sorted finding set.
pub fn run_checkers(prog: &Program, svfg: &Svfg, view: &dyn PtsView) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_freed_memory(prog, svfg, view, &mut findings);
    check_leaks(prog, view, &mut findings);
    check_null_derefs(prog, view, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// Use-after-free and double-free: seed "freed" taint at every `FREE`,
/// propagate along the object's value-flow edges, and test reached
/// accesses against the view.
fn check_freed_memory(
    prog: &Program,
    svfg: &Svfg,
    view: &dyn PtsView,
    findings: &mut Vec<Finding>,
) {
    let graph = TaintGraph::new(prog, svfg, view);
    for (free, inst) in prog.insts.iter_enumerated() {
        let InstKind::Free { ptr } = inst.kind else { continue };
        // Only heap objects participate: freeing stack/global memory is a
        // different defect class this checker does not model.
        let objs: Vec<ObjId> =
            view.pts(ptr).iter().filter(|&o| prog.objects[o].is_heap()).collect();
        if objs.is_empty() {
            continue;
        }
        let wave = graph.reach(svfg.inst_node(free), &objs);
        let mut reported: HashSet<(CheckerKind, InstId, ObjId)> = HashSet::new();
        for &(from, obj, to) in &wave.edges {
            let SvfgNodeKind::Inst(sink) = svfg.kind(to) else { continue };
            let checker = match prog.insts[sink].kind {
                InstKind::Load { addr, .. } | InstKind::Store { addr, .. }
                    if view.pts(addr).contains(obj) =>
                {
                    CheckerKind::UseAfterFree
                }
                InstKind::Free { ptr: ptr2 } if view.pts(ptr2).contains(obj) => {
                    CheckerKind::DoubleFree
                }
                _ => continue,
            };
            if reported.insert((checker, sink, obj)) {
                findings.push(Finding {
                    checker,
                    inst: sink,
                    obj,
                    src: Some(free),
                    path: wave.path(from, obj, to),
                });
            }
        }
    }
}

/// Leak: a heap allocation leaks when no `FREE` may free it at all, or
/// when every such `FREE` is in the allocating function yet some CFG
/// path from the allocation to the function's exit avoids them all.
/// Frees in *other* functions are treated as covering every path
/// (interprocedural path feasibility is out of scope), so this direction
/// is conservative towards fewer leak reports.
fn check_leaks(prog: &Program, view: &dyn PtsView, findings: &mut Vec<Finding>) {
    let frees: Vec<InstId> = prog
        .insts
        .iter_enumerated()
        .filter(|(_, i)| matches!(i.kind, InstKind::Free { .. }))
        .map(|(id, _)| id)
        .collect();
    for (alloc, inst) in prog.insts.iter_enumerated() {
        let InstKind::Alloc { obj, .. } = inst.kind else { continue };
        if !prog.objects[obj].is_heap() {
            continue;
        }
        let may_free: Vec<InstId> = frees
            .iter()
            .copied()
            .filter(|&f| match prog.insts[f].kind {
                InstKind::Free { ptr } => view.pts(ptr).contains(obj),
                _ => false,
            })
            .collect();
        let leaks = if may_free.is_empty() {
            true
        } else if may_free.iter().any(|&f| prog.insts[f].func != inst.func) {
            false
        } else {
            has_free_avoiding_exit_path(prog, alloc, &may_free)
        };
        if leaks {
            findings.push(Finding {
                checker: CheckerKind::Leak,
                inst: alloc,
                obj,
                src: None,
                path: Vec::new(),
            });
        }
    }
}

/// Is there a CFG path from `alloc` to its function's exit block along
/// which none of `frees` executes?
fn has_free_avoiding_exit_path(prog: &Program, alloc: InstId, frees: &[InstId]) -> bool {
    let func = prog.insts[alloc].func;
    let alloc_block = prog.insts[alloc].block;
    let exit_block = prog.functions[func].exit_block;
    let blocked = |b: BlockId| prog.blocks[b].insts.iter().any(|i| frees.contains(i));
    // Leaving the allocation's own block executes everything after the
    // allocation, so a later free in the same block covers every path.
    let insts = &prog.blocks[alloc_block].insts;
    let alloc_idx = insts.iter().position(|&i| i == alloc).expect("alloc is in its block");
    if insts[alloc_idx + 1..].iter().any(|i| frees.contains(i)) {
        return false;
    }
    if alloc_block == exit_block {
        return true;
    }
    // BFS over blocks, skipping any that execute a free. The allocation
    // block itself is *re-enterable* (via a loop), and on re-entry its
    // pre-allocation frees run too, so it gets the ordinary test.
    let mut visited: HashSet<BlockId> = HashSet::new();
    let mut queue: VecDeque<BlockId> =
        prog.blocks[alloc_block].term.successors().iter().copied().collect();
    while let Some(b) = queue.pop_front() {
        if !visited.insert(b) || blocked(b) {
            continue;
        }
        if b == exit_block {
            return true;
        }
        queue.extend(prog.blocks[b].term.successors().iter().copied());
    }
    false
}

/// Null-deref: any `LOAD`/`STORE`/`FREE` whose pointer operand may be
/// the null pseudo-object. (The IR's `free` does not tolerate null, so a
/// possibly-null `free` is reported too.) Pure sink checking — nullness
/// is an ordinary points-to fact, killed by strong updates, so the
/// flow-sensitive view already encodes the interesting reasoning.
fn check_null_derefs(prog: &Program, view: &dyn PtsView, findings: &mut Vec<Finding>) {
    let Some(null) = prog.null_object() else { return };
    for (id, inst) in prog.insts.iter_enumerated() {
        let ptr = match inst.kind {
            InstKind::Load { addr, .. } | InstKind::Store { addr, .. } => addr,
            InstKind::Free { ptr } => ptr,
            _ => continue,
        };
        if view.pts(ptr).contains(null) {
            findings.push(Finding {
                checker: CheckerKind::NullDeref,
                inst: id,
                obj: null,
                src: None,
                path: Vec::new(),
            });
        }
    }
}

//! The labelled-corpus gate and the finding-set identity guarantees.
//!
//! * Every corpus program's flow-sensitive diagnostics match its
//!   `.expected` sidecar **verbatim, order included**; clean programs
//!   (comment-only sidecars) produce zero findings.
//! * The finding set is a pure function of the points-to result, so SFS
//!   and VSFS — and VSFS under any `--jobs` — yield *bit-identical*
//!   findings (paths included).
//! * At least one corpus program demonstrates a false positive removed
//!   by flow-sensitivity (the Table III story).

use vsfs_checkers::{
    load_corpus, render_findings, run_checkers, AndersenView, CheckerCase, FlowView,
};
use vsfs_ir::Program;

fn corpus() -> Vec<CheckerCase> {
    let cases =
        load_corpus(&vsfs_checkers::corpus::default_corpus_dir()).expect("corpus directory loads");
    assert!(cases.len() >= 10, "corpus must stay at >= 10 labelled programs");
    cases
}

struct Pipeline {
    prog: Program,
    aux: vsfs_andersen::AndersenResult,
    mssa: vsfs_mssa::MemorySsa,
    svfg: vsfs_svfg::Svfg,
}

fn pipeline(source: &str) -> Pipeline {
    let prog = vsfs_ir::parse_program(source).expect("corpus program parses");
    vsfs_ir::verify::verify(&prog).expect("corpus program verifies");
    let aux = vsfs_andersen::analyze(&prog);
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    Pipeline { prog, aux, mssa, svfg }
}

#[test]
fn expected_findings_exact_match() {
    for case in corpus() {
        let p = pipeline(&case.source);
        let fs = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        let findings = run_checkers(&p.prog, &p.svfg, &FlowView(&fs));
        let lines = render_findings(&p.prog, &findings);
        assert_eq!(
            lines, case.expected,
            "{}: flow-sensitive diagnostics diverge from {}.expected",
            case.name, case.name
        );
        if case.expected.is_empty() {
            assert!(findings.is_empty(), "{}: clean program must stay silent", case.name);
        }
    }
}

#[test]
fn findings_identical_across_solvers_and_jobs() {
    for case in corpus() {
        let p = pipeline(&case.source);
        let sfs = vsfs_core::run_sfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        let reference = run_checkers(&p.prog, &p.svfg, &FlowView(&sfs));
        for jobs in [1usize, 2, 8] {
            let vsfs = vsfs_core::run_vsfs_jobs(&p.prog, &p.aux, &p.mssa, &p.svfg, jobs);
            let findings = run_checkers(&p.prog, &p.svfg, &FlowView(&vsfs));
            assert_eq!(
                findings, reference,
                "{}: VSFS --jobs {jobs} findings differ from SFS (paths included)",
                case.name
            );
        }
    }
}

#[test]
fn region_memo_on_off_results_bit_identical() {
    // The SCC-level memo only skips provable no-op transfers, so every
    // corpus program must produce the same points-to sets, call graph,
    // and checker findings (paths included) with it on and off.
    let off = vsfs_core::SolveConfig { region_memo: false, ..Default::default() };
    let on = vsfs_core::SolveConfig::default();
    for case in corpus() {
        let p = pipeline(&case.source);
        for (name, run) in [
            ("sfs", vsfs_core::run_sfs_configured as fn(_, _, _, _, _) -> _),
            ("vsfs", vsfs_core::run_vsfs_configured),
        ] {
            let base = run(&p.prog, &p.aux, &p.mssa, &p.svfg, off);
            let memo = run(&p.prog, &p.aux, &p.mssa, &p.svfg, on);
            assert_eq!(base.stats.scc_solves_skipped, 0, "{}/{name}: memo off", case.name);
            if let Some(diff) = vsfs_core::precision_diff(&p.prog, &base, &memo) {
                panic!("{}/{name}: memo on diverges from memo off: {diff}", case.name);
            }
            let f_base = run_checkers(&p.prog, &p.svfg, &FlowView(&base));
            let f_memo = run_checkers(&p.prog, &p.svfg, &FlowView(&memo));
            assert_eq!(f_base, f_memo, "{}/{name}: findings differ with memo on", case.name);
        }
    }
}

#[test]
fn corpus_demonstrates_removed_false_positives() {
    let mut total_removed = 0i64;
    let mut programs_with_removal = 0;
    for case in corpus() {
        let p = pipeline(&case.source);
        let fs = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        let ander = run_checkers(&p.prog, &p.svfg, &AndersenView(&p.aux));
        let flow = run_checkers(&p.prog, &p.svfg, &FlowView(&fs));
        if ander.len() > flow.len() {
            programs_with_removal += 1;
        }
        total_removed += ander.len() as i64 - flow.len() as i64;
    }
    assert!(
        programs_with_removal >= 1,
        "at least one corpus program must show an FP removed by flow-sensitivity"
    );
    assert!(total_removed >= 1);
}

#[test]
fn json_report_is_deterministic_and_wellformed() {
    for case in corpus() {
        let p = pipeline(&case.source);
        let fs = vsfs_core::run_vsfs(&p.prog, &p.aux, &p.mssa, &p.svfg);
        let ander = run_checkers(&p.prog, &p.svfg, &AndersenView(&p.aux));
        let flow = run_checkers(&p.prog, &p.svfg, &FlowView(&fs));
        let a = vsfs_checkers::CheckReport::new(&p.prog, ander.clone(), flow.clone())
            .to_json(&case.name);
        let b = vsfs_checkers::CheckReport::new(&p.prog, ander, flow).to_json(&case.name);
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("{{\"program\":\"{}\"", case.name)));
        assert!(a.contains("\"fp_removed\""));
        assert_eq!(a.matches("\"checker\":").count(), 4);
    }
}

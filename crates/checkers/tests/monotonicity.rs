//! Checker monotonicity over random programs (the view-refinement
//! contract of `crates/checkers/src/view.rs`):
//!
//! * use-after-free, double-free, and null-deref findings under the
//!   flow-sensitive view are a **subset** of those under the Andersen
//!   view — every guard (taint seeds, sink tests, call edges) is a
//!   points-to set that only shrinks with precision;
//! * leak findings go the **other way** (superset): a more precise "may
//!   free" set can only rule frees out, turning non-leaks into leaks.
//!
//! Programs come from the workload generator with the `free_fraction` /
//! `null_fraction` knobs on, so frees, possibly-null pointers, loops,
//! diamonds, and indirect calls all mix.

use vsfs_checkers::{run_checkers, AndersenView, CheckerKind, FlowView};
use vsfs_testkit::Rng;
use vsfs_workloads::gen::{generate, WorkloadConfig};

const CASES: u32 = 32;

fn random_buggy_config(rng: &mut Rng) -> WorkloadConfig {
    WorkloadConfig {
        seed: rng.next_u64(),
        functions: rng.gen_range(1usize..8),
        segments: rng.gen_range(1usize..5),
        loads_per_block: rng.gen_range(0usize..4),
        stores_per_block: rng.gen_range(0usize..3),
        heap_fraction: rng.gen_range(0.3f64..1.0),
        indirect_call_fraction: rng.gen_range(0.0f64..0.6),
        deref_chain: rng.gen_range(0.0f64..0.6),
        free_fraction: rng.gen_range(0.2f64..0.8),
        null_fraction: rng.gen_range(0.0f64..0.5),
        ..WorkloadConfig::small()
    }
}

#[test]
fn flow_sensitive_findings_refine_andersen() {
    vsfs_testkit::check_cases("checkers::flow_sensitive_findings_refine_andersen", CASES, |rng| {
        let cfg = random_buggy_config(rng);
        let prog = generate(&cfg);
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
        let fs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
        let ander = run_checkers(&prog, &svfg, &AndersenView(&aux));
        let flow = run_checkers(&prog, &svfg, &FlowView(&fs));
        // Compare on (checker, inst, obj, src) — the path is a property
        // of the view's activated edges, not of the defect.
        let key = |f: &vsfs_checkers::Finding| (f.checker, f.inst, f.obj, f.src);
        let ander_keys: std::collections::HashSet<_> = ander.iter().map(key).collect();
        let flow_keys: std::collections::HashSet<_> = flow.iter().map(key).collect();
        for k in &flow_keys {
            if k.0 == CheckerKind::Leak {
                continue;
            }
            assert!(
                ander_keys.contains(k),
                "seed {}: flow-sensitive finding {k:?} absent under Andersen",
                cfg.seed
            );
        }
        for k in &ander_keys {
            if k.0 != CheckerKind::Leak {
                continue;
            }
            assert!(
                flow_keys.contains(k),
                "seed {}: Andersen leak {k:?} absent under flow-sensitive view",
                cfg.seed
            );
        }
    });
}

#[test]
fn random_findings_identical_across_jobs() {
    vsfs_testkit::check_cases(
        "checkers::random_findings_identical_across_jobs",
        CASES / 2,
        |rng| {
            let cfg = random_buggy_config(rng);
            let prog = generate(&cfg);
            let aux = vsfs_andersen::analyze(&prog);
            let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
            let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
            let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
            let reference = run_checkers(&prog, &svfg, &FlowView(&sfs));
            for jobs in [1usize, 2, 8] {
                let vsfs = vsfs_core::run_vsfs_jobs(&prog, &aux, &mssa, &svfg, jobs);
                let findings = run_checkers(&prog, &svfg, &FlowView(&vsfs));
                assert_eq!(findings, reference, "seed {}: jobs {jobs} diverged", cfg.seed);
            }
        },
    );
}

/// Degraded governed runs check soundly: the Andersen-fallback result
/// yields exactly the Andersen finding set for the shrinking checkers.
#[test]
fn degraded_fallback_findings_match_andersen() {
    vsfs_testkit::check_cases("checkers::degraded_fallback_findings_match_andersen", 8, |rng| {
        let cfg = random_buggy_config(rng);
        let prog = generate(&cfg);
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
        let fallback = vsfs_core::FlowSensitiveResult::from_andersen(&prog, &aux);
        let ander = run_checkers(&prog, &svfg, &AndersenView(&aux));
        let via_fallback = run_checkers(&prog, &svfg, &FlowView(&fallback));
        assert_eq!(via_fallback, ander, "seed {}: fallback view diverged", cfg.seed);
    });
}

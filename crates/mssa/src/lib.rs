//! Memory SSA construction (Section II-B of the paper).
//!
//! Address-taken objects are accessed only indirectly, so their def-use
//! chains require the auxiliary (Andersen's) points-to results. This crate
//! realises the memory SSA form:
//!
//! 1. **Mod/ref analysis** ([`modref`]): which objects each function may
//!    define or use, directly or via callees (fixpoint over the call
//!    graph).
//! 2. **χ/µ annotation** ([`annot`]): stores get `o = χ(o)`, loads get
//!    `µ(o)`, call sites get `µ(o)`/`χ(o)` for the objects their callees
//!    may use/modify, `FUNENTRY` gets `χ(o)` (incoming state) and
//!    `FUNEXIT` gets `µ(o)` (returned state) — mimicking parameter passing
//!    and returning of address-taken objects.
//! 3. **MEMPHI insertion and renaming** ([`ssa`]): per function and per
//!    object, `MEMPHI`s are placed at iterated dominance frontiers of the
//!    definition blocks and every use is wired to its unique reaching
//!    definition by a dominator-tree walk.
//!
//! The result ([`MemorySsa`]) gives, for every annotation, the *defining
//! node* its consumed value comes from — exactly the indirect def-use
//! chains the SVFG needs.
//!
//! # Examples
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q = alloc heap H
//!   store %q, %p
//!   %r = load %p
//!   ret
//! }
//! "#)?;
//! let aux = vsfs_andersen::analyze(&prog);
//! let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
//! // The load's µ(A) is defined by the store.
//! let load = prog.insts.iter_enumerated()
//!     .find(|(_, i)| i.kind.mnemonic() == "load").map(|(id, _)| id).unwrap();
//! assert_eq!(mssa.mus(load).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod annot;
pub mod modref;
pub mod ssa;

use vsfs_adt::{define_index, IndexVec, PointsToSet};
use vsfs_ir::{FuncId, InstId, ObjId, Program};

pub use modref::ModRef;

define_index!(
    /// A `MEMPHI` pseudo-instruction inserted by memory-SSA construction.
    MemPhiId,
    "mphi"
);

/// A definition site of an object version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MssaDef {
    /// The χ at an ordinary instruction: a `STORE`, or a `FUNENTRY`.
    Inst(InstId),
    /// The χ at the *return side* of a call instruction (SVF's
    /// `ActualOUT`): receives callee exit state (plus the bypass value).
    CallRet(InstId),
    /// A `MEMPHI`.
    MemPhi(MemPhiId),
}

/// A µ annotation: this instruction may *use* `obj`, and the version it
/// uses was produced by `def`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mu {
    /// The object read.
    pub obj: ObjId,
    /// The reaching definition.
    pub def: MssaDef,
}

/// A χ annotation: this site may *define* `obj`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chi {
    /// The object written.
    pub obj: ObjId,
    /// The reaching definition consumed by this (weak) definition;
    /// `None` for `FUNENTRY` χs, whose input arrives interprocedurally.
    pub prev: Option<MssaDef>,
}

/// A `MEMPHI`: merges versions of `obj` at a control-flow join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPhi {
    /// Function containing the join.
    pub func: FuncId,
    /// The join block (the MEMPHI conceptually sits at its start).
    pub block: vsfs_ir::BlockId,
    /// The merged object.
    pub obj: ObjId,
    /// Reaching definitions from the predecessors (deduplicated).
    pub incoming: Vec<MssaDef>,
}

/// The complete memory SSA form of a program.
#[derive(Debug, Clone)]
pub struct MemorySsa {
    /// µs per instruction (loads, call sites, `FUNEXIT`s).
    mus: IndexVec<InstId, Vec<Mu>>,
    /// χs per instruction (stores, call sites, `FUNENTRY`s). For call
    /// instructions these are the *return-side* χs ([`MssaDef::CallRet`]).
    chis: IndexVec<InstId, Vec<Chi>>,
    /// All inserted MEMPHIs.
    memphis: IndexVec<MemPhiId, MemPhi>,
    /// Mod/ref summary used for the annotation.
    pub modref: ModRef,
}

impl MemorySsa {
    /// Builds the memory SSA form of `prog` using the auxiliary analysis
    /// results `aux`.
    pub fn build(prog: &Program, aux: &vsfs_andersen::AndersenResult) -> Self {
        let modref = ModRef::compute(prog, aux);
        let annotations = annot::annotate(prog, aux, &modref);
        ssa::rename(prog, &modref, annotations)
    }

    /// The µ annotations of `inst`.
    pub fn mus(&self, inst: InstId) -> &[Mu] {
        &self.mus[inst]
    }

    /// The χ annotations of `inst`.
    pub fn chis(&self, inst: InstId) -> &[Chi] {
        &self.chis[inst]
    }

    /// All MEMPHIs.
    pub fn memphis(&self) -> &IndexVec<MemPhiId, MemPhi> {
        &self.memphis
    }

    /// The objects flowing into `func` at its `FUNENTRY` (its χ set).
    pub fn entry_objects(&self, prog: &Program, func: FuncId) -> PointsToSet<ObjId> {
        self.chis[prog.functions[func].entry_inst].iter().map(|c| c.obj).collect()
    }

    /// The objects flowing out of `func` at its `FUNEXIT` (its µ set).
    pub fn exit_objects(&self, prog: &Program, func: FuncId) -> PointsToSet<ObjId> {
        self.mus[prog.functions[func].exit_inst].iter().map(|m| m.obj).collect()
    }

    /// Total number of µ/χ annotations (a size diagnostic).
    pub fn annotation_count(&self) -> usize {
        self.mus.iter().map(Vec::len).sum::<usize>() + self.chis.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn obj(prog: &Program, name: &str) -> ObjId {
        prog.objects.iter_enumerated().find(|(_, o)| o.name == name).map(|(id, _)| id).unwrap()
    }

    fn inst_by_mnemonic(prog: &Program, m: &str, nth: usize) -> InstId {
        prog.insts
            .iter_enumerated()
            .filter(|(_, i)| i.kind.mnemonic() == m)
            .map(|(id, _)| id)
            .nth(nth)
            .unwrap()
    }

    #[test]
    fn load_use_reaches_store_def() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let store = inst_by_mnemonic(&prog, "store", 0);
        let load = inst_by_mnemonic(&prog, "load", 0);
        let a = obj(&prog, "A");
        assert_eq!(
            mssa.chis(store),
            &[Chi {
                obj: a,
                prev: Some(MssaDef::Inst(prog.functions[prog.entry_function()].entry_inst))
            }]
        );
        assert_eq!(mssa.mus(load), &[Mu { obj: a, def: MssaDef::Inst(store) }]);
    }

    #[test]
    fn memphi_at_join_of_two_stores() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q1 = alloc heap H1
              %q2 = alloc heap H2
              br l, r
            l:
              store %q1, %p
              goto join
            r:
              store %q2, %p
              goto join
            join:
              %x = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let a = obj(&prog, "A");
        // One MEMPHI for A at join.
        let phis: Vec<&MemPhi> = mssa.memphis().iter().filter(|m| m.obj == a).collect();
        assert_eq!(phis.len(), 1);
        assert_eq!(phis[0].incoming.len(), 2);
        let load = inst_by_mnemonic(&prog, "load", 0);
        assert!(matches!(mssa.mus(load)[0].def, MssaDef::MemPhi(_)));
    }

    #[test]
    fn straight_line_has_no_memphi() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              store %q, %p
              %x = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        assert_eq!(mssa.memphis().len(), 0);
        // Second store consumes the first.
        let s0 = inst_by_mnemonic(&prog, "store", 0);
        let s1 = inst_by_mnemonic(&prog, "store", 1);
        assert_eq!(mssa.chis(s1)[0].prev, Some(MssaDef::Inst(s0)));
        let load = inst_by_mnemonic(&prog, "load", 0);
        assert_eq!(mssa.mus(load)[0].def, MssaDef::Inst(s1));
    }

    #[test]
    fn loop_gets_memphi_at_header() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              goto head
            head:
              %x = load %p
              br body, out
            body:
              store %h, %p
              goto head
            out:
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let a = obj(&prog, "A");
        let phis: Vec<(MemPhiId, &MemPhi)> =
            mssa.memphis().iter_enumerated().filter(|(_, m)| m.obj == a).collect();
        assert_eq!(phis.len(), 1, "one MEMPHI at the loop header");
        // Load consumes the header MEMPHI; the MEMPHI merges entry state
        // and the body store.
        let load = inst_by_mnemonic(&prog, "load", 0);
        assert_eq!(mssa.mus(load)[0].def, MssaDef::MemPhi(phis[0].0));
        assert_eq!(phis[0].1.incoming.len(), 2);
    }

    #[test]
    fn interprocedural_annotations() {
        let prog = parse_program(
            r#"
            global @g
            func @writer(%v) {
            entry:
              store %v, @g
              ret
            }
            func @reader() {
            entry:
              %x = load @g
              ret %x
            }
            func @main() {
            entry:
              %h = alloc heap H
              call @writer(%h)
              %r = call @reader()
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let g = obj(&prog, "g");
        let writer = prog.function_by_name("writer").unwrap();
        let reader = prog.function_by_name("reader").unwrap();
        // writer: mods {g}; entry chi + exit mu for g.
        assert!(mssa.entry_objects(&prog, writer).contains(g));
        assert!(mssa.exit_objects(&prog, writer).contains(g));
        // reader: refs {g}; entry chi for g but no exit mu.
        assert!(mssa.entry_objects(&prog, reader).contains(g));
        assert!(!mssa.exit_objects(&prog, reader).contains(g));
        // main: the writer callsite has chi(g) whose def is the CallRet;
        // the reader callsite has mu(g) consuming the writer's CallRet.
        let call_writer = inst_by_mnemonic(&prog, "call", 0);
        let call_reader = inst_by_mnemonic(&prog, "call", 1);
        assert!(mssa.chis(call_writer).iter().any(|c| c.obj == g));
        assert!(mssa
            .mus(call_reader)
            .iter()
            .any(|m| m.obj == g && m.def == MssaDef::CallRet(call_writer)));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use vsfs_ir::parse_program;

    #[test]
    fn recursive_call_sites_get_annotations() {
        let prog = parse_program(
            r#"
            global @acc
            func @rec(%v) {
            entry:
              store %v, @acc
              br again, done
            again:
              %r = call @rec(%v)
              goto done
            done:
              %x = load @acc
              ret %x
            }
            func @main() {
            entry:
              %h = alloc heap H
              %r = call @rec(%h)
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let acc = prog
            .objects
            .iter_enumerated()
            .find(|(_, o)| o.name == "acc")
            .map(|(id, _)| id)
            .unwrap();
        // The recursive call site inside @rec has both mu and chi for acc.
        let rec = prog.function_by_name("rec").unwrap();
        let inner_call = prog
            .func_insts(rec)
            .find(|&i| matches!(prog.insts[i].kind, vsfs_ir::InstKind::Call { .. }))
            .unwrap();
        assert!(mssa.mus(inner_call).iter().any(|m| m.obj == acc));
        assert!(mssa.chis(inner_call).iter().any(|c| c.obj == acc));
        // And rec's entry/exit carry acc through the boundary.
        assert!(mssa.entry_objects(&prog, rec).contains(acc));
        assert!(mssa.exit_objects(&prog, rec).contains(acc));
    }

    #[test]
    fn private_objects_have_no_boundary_annotations() {
        let prog = parse_program(
            r#"
            func @worker() {
            entry:
              %local = alloc stack Local
              %h = alloc heap PrivHeap
              store %h, %local
              %x = load %local
              ret
            }
            func @main() {
            entry:
              call @worker()
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let worker = prog.function_by_name("worker").unwrap();
        let local = prog
            .objects
            .iter_enumerated()
            .find(|(_, o)| o.name == "Local")
            .map(|(id, _)| id)
            .unwrap();
        // Entry chi still exists (renaming needs an initial definition)...
        assert!(mssa.entry_objects(&prog, worker).contains(local));
        // ...but the caller's call site sees nothing of it.
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, vsfs_ir::InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(mssa.mus(call).iter().all(|m| m.obj != local));
        assert!(mssa.chis(call).iter().all(|c| c.obj != local));
        // And the exit returns nothing private.
        assert!(!mssa.exit_objects(&prog, worker).contains(local));
    }

    #[test]
    fn annotation_count_matches_sum() {
        let prog = parse_program(crate::tests_support::SAMPLE);
        let prog = prog.unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let by_hand: usize =
            prog.insts.indices().map(|i| mssa.mus(i).len() + mssa.chis(i).len()).sum();
        assert_eq!(by_hand, mssa.annotation_count());
        assert!(by_hand > 0);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    pub const SAMPLE: &str = r#"
    global @g
    func @main() {
    entry:
      %p = alloc stack A
      %h = alloc heap H
      store %h, %p
      store %p, @g
      %x = load @g
      %y = load %x
      ret
    }
    "#;
}

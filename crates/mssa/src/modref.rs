//! Interprocedural mod/ref analysis with escape filtering.
//!
//! For each function, computes the set of address-taken objects it may
//! modify (`mod`) or read (`ref`), including effects of all (transitive)
//! callees per the auxiliary call graph. Solved as a fixpoint with a
//! function worklist: when a callee's summary grows, its callers are
//! re-examined (this converges for call-graph cycles too).
//!
//! # Escape filtering
//!
//! An object allocated in function `f` that is unreachable — through the
//! auxiliary points-to relation — from any global, call argument, or
//! returned pointer is *private* to `f`: no other activation can hold a
//! pointer to it. Private objects are excluded from the summary `f`
//! exposes to its callers (and hence from call-site χ/µ annotations and
//! `FUNENTRY`/`FUNEXIT` boundary sets). This mirrors SVF's mod/ref
//! refinement and is sound even under recursion: a fresh activation's
//! private object starts uninitialised, and no pointer to an outer
//! frame's instance can reach the inner activation, so no value flow is
//! lost by cutting the interprocedural chain.
//!
//! Without this filter, heap objects that never leave their allocating
//! function would annotate every transitive call site, inflating the SVFG
//! quadratically.

use std::collections::HashMap;
use vsfs_adt::{FifoWorklist, IndexVec, PointsToSet};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{FuncId, InstKind, ObjId, ObjKind, Program};

/// Mod/ref summaries for every function.
#[derive(Debug, Clone)]
pub struct ModRef {
    /// Full (unfiltered) sets: what the function itself may touch.
    mods: IndexVec<FuncId, PointsToSet<ObjId>>,
    refs: IndexVec<FuncId, PointsToSet<ObjId>>,
    /// Caller-visible sets: full sets minus objects private to the
    /// function.
    summary_mods: IndexVec<FuncId, PointsToSet<ObjId>>,
    summary_refs: IndexVec<FuncId, PointsToSet<ObjId>>,
    /// Objects reachable from globals, call arguments, or returns.
    escaped: PointsToSet<ObjId>,
}

impl ModRef {
    /// Computes mod/ref summaries using `aux` for pointer dereferences and
    /// the call graph.
    pub fn compute(prog: &Program, aux: &AndersenResult) -> Self {
        let escaped = compute_escaped(prog, aux);
        let n = prog.functions.len();
        let mut mods: IndexVec<FuncId, PointsToSet<ObjId>> =
            (0..n).map(|_| PointsToSet::new()).collect();
        let mut refs: IndexVec<FuncId, PointsToSet<ObjId>> =
            (0..n).map(|_| PointsToSet::new()).collect();

        // Direct effects.
        for (_, inst) in prog.insts.iter_enumerated() {
            match &inst.kind {
                InstKind::Store { addr, .. } => {
                    mods[inst.func].union_with(aux.value_pts(*addr));
                }
                InstKind::Load { addr, .. } => {
                    refs[inst.func].union_with(aux.value_pts(*addr));
                }
                // FREE weakly updates everything its operand may point to,
                // so the deallocation shows up as a value-flow event.
                InstKind::Free { ptr } => {
                    mods[inst.func].union_with(aux.value_pts(*ptr));
                }
                _ => {}
            }
        }

        // Caller-visible filter: drop objects private to the function.
        let summarise = |full: &PointsToSet<ObjId>, f: FuncId| -> PointsToSet<ObjId> {
            let mut s = PointsToSet::new();
            for o in full.iter() {
                if escaped.contains(o) || home_function(prog, o) != Some(f) {
                    s.insert(o);
                }
            }
            s
        };

        // Transitive effects over the call graph, propagating *summaries*.
        let mut summary_mods: IndexVec<FuncId, PointsToSet<ObjId>> =
            prog.functions.indices().map(|f| summarise(&mods[f], f)).collect();
        let mut summary_refs: IndexVec<FuncId, PointsToSet<ObjId>> =
            prog.functions.indices().map(|f| summarise(&refs[f], f)).collect();

        let mut worklist: FifoWorklist<FuncId> = FifoWorklist::new(n);
        for f in prog.functions.indices() {
            worklist.push(f);
        }
        while let Some(f) = worklist.pop() {
            let mut changed = false;
            for call in prog.func_insts(f) {
                for &callee in aux.callgraph.callees(call) {
                    if callee == f {
                        continue;
                    }
                    let cm = summary_mods[callee].clone();
                    let cr = summary_refs[callee].clone();
                    changed |= mods[f].union_with(&cm);
                    changed |= refs[f].union_with(&cr);
                    // Callee-visible objects are never private to f
                    // (different home), so they join f's summary directly.
                    changed |= summary_mods[f].union_with(&cm);
                    changed |= summary_refs[f].union_with(&cr);
                }
            }
            if changed {
                for &call in aux.callgraph.callers(f) {
                    worklist.push(prog.insts[call].func);
                }
                worklist.push(f);
            }
        }
        ModRef { mods, refs, summary_mods, summary_refs, escaped }
    }

    /// Objects `func` may modify (directly or via callees), including its
    /// own private objects.
    pub fn mods(&self, func: FuncId) -> &PointsToSet<ObjId> {
        &self.mods[func]
    }

    /// Objects `func` may read (directly or via callees), including its
    /// own private objects.
    pub fn refs(&self, func: FuncId) -> &PointsToSet<ObjId> {
        &self.refs[func]
    }

    /// The caller-visible mod set (drives call-site χ and `FUNEXIT` µ
    /// annotations).
    pub fn summary_mods(&self, func: FuncId) -> &PointsToSet<ObjId> {
        &self.summary_mods[func]
    }

    /// The caller-visible ref set.
    pub fn summary_refs(&self, func: FuncId) -> &PointsToSet<ObjId> {
        &self.summary_refs[func]
    }

    /// `mods(func) ∪ refs(func)`: every object relevant inside `func` —
    /// its `FUNENTRY` χ set.
    pub fn relevant(&self, func: FuncId) -> PointsToSet<ObjId> {
        let mut s = self.mods[func].clone();
        s.union_with(&self.refs[func]);
        s
    }

    /// The caller-visible relevant set (`summary_mods ∪ summary_refs`) —
    /// what flows across a call boundary into `func`.
    pub fn summary_relevant(&self, func: FuncId) -> PointsToSet<ObjId> {
        let mut s = self.summary_mods[func].clone();
        s.union_with(&self.summary_refs[func]);
        s
    }

    /// Returns `true` if `obj` may be reachable from another function's
    /// activation.
    pub fn is_escaped(&self, obj: ObjId) -> bool {
        self.escaped.contains(obj)
    }
}

/// The function owning an object's allocation site, if any.
fn home_function(prog: &Program, o: ObjId) -> Option<FuncId> {
    match prog.objects[o].kind {
        ObjKind::Stack(f) | ObjKind::Heap(f) => Some(f),
        ObjKind::Field { base, .. } => home_function(prog, base),
        ObjKind::Global | ObjKind::Function(_) | ObjKind::Null => None,
    }
}

/// Objects transitively reachable (via the auxiliary points-to relation)
/// from globals, call arguments, or returned pointers.
fn compute_escaped(prog: &Program, aux: &AndersenResult) -> PointsToSet<ObjId> {
    let mut escaped = PointsToSet::new();
    let mut work: Vec<ObjId> = Vec::new();
    let add = |o: ObjId, escaped: &mut PointsToSet<ObjId>, work: &mut Vec<ObjId>| {
        if escaped.insert(o) {
            work.push(o);
        }
    };
    // Roots: global storage, everything passed as an argument, everything
    // returned.
    for &(_, obj) in &prog.globals {
        add(obj, &mut escaped, &mut work);
    }
    for (_, inst) in prog.insts.iter_enumerated() {
        match &inst.kind {
            InstKind::Call { args, .. } => {
                for &a in args {
                    for o in aux.value_pts(a).iter() {
                        add(o, &mut escaped, &mut work);
                    }
                }
            }
            InstKind::FunExit { ret: Some(r), .. } => {
                for o in aux.value_pts(*r).iter() {
                    add(o, &mut escaped, &mut work);
                }
            }
            _ => {}
        }
    }
    // Closure: pointers stored inside escaped objects escape too, and so
    // do an escaped aggregate's fields.
    let mut fields_of: HashMap<ObjId, Vec<ObjId>> = HashMap::new();
    for (o, obj) in prog.objects.iter_enumerated() {
        if let ObjKind::Field { base, .. } = obj.kind {
            fields_of.entry(base).or_default().push(o);
        }
    }
    while let Some(o) = work.pop() {
        for p in aux.object_pts(o).iter().collect::<Vec<_>>() {
            add(p, &mut escaped, &mut work);
        }
        if let Some(fs) = fields_of.get(&o) {
            for &f in fs.clone().iter() {
                add(f, &mut escaped, &mut work);
            }
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn obj(prog: &Program, name: &str) -> ObjId {
        prog.objects.iter_enumerated().find(|(_, o)| o.name == name).map(|(id, _)| id).unwrap()
    }

    #[test]
    fn direct_and_transitive() {
        let prog = parse_program(
            r#"
            global @g
            global @h
            func @leaf(%v) {
            entry:
              store %v, @g
              %x = load @h
              ret
            }
            func @mid() {
            entry:
              %a = alloc heap A
              call @leaf(%a)
              ret
            }
            func @main() {
            entry:
              call @mid()
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mr = ModRef::compute(&prog, &aux);
        let g = obj(&prog, "g");
        let h = obj(&prog, "h");
        let leaf = prog.function_by_name("leaf").unwrap();
        let mid = prog.function_by_name("mid").unwrap();
        let main = prog.entry_function();
        for f in [leaf, mid, main] {
            assert!(mr.mods(f).contains(g), "{f:?} should mod g");
            assert!(mr.refs(f).contains(h), "{f:?} should ref h");
        }
        assert!(!mr.refs(leaf).contains(g));
        assert!(mr.relevant(leaf).contains(g) && mr.relevant(leaf).contains(h));
    }

    #[test]
    fn mutual_recursion_converges() {
        let prog = parse_program(
            r#"
            global @g
            global @h
            func @a(%v) {
            entry:
              store %v, @g
              call @b(%v)
              ret
            }
            func @b(%v) {
            entry:
              %x = load @h
              call @a(%v)
              ret
            }
            func @main() {
            entry:
              %o = alloc heap O
              call @a(%o)
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mr = ModRef::compute(&prog, &aux);
        let g = obj(&prog, "g");
        let h = obj(&prog, "h");
        let a = prog.function_by_name("a").unwrap();
        let b = prog.function_by_name("b").unwrap();
        assert!(mr.mods(a).contains(g) && mr.mods(b).contains(g));
        assert!(mr.refs(a).contains(h) && mr.refs(b).contains(h));
    }

    #[test]
    fn indirect_callees_included() {
        let prog = parse_program(
            r#"
            global @g
            func @cb() {
            entry:
              %x = alloc heap X
              store %x, @g
              ret
            }
            func @main() {
            entry:
              %fp = funaddr @cb
              icall %fp()
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mr = ModRef::compute(&prog, &aux);
        assert!(mr.mods(prog.entry_function()).contains(obj(&prog, "g")));
    }

    #[test]
    fn private_objects_stay_out_of_summaries() {
        let prog = parse_program(
            r#"
            func @worker(%v) {
            entry:
              %private = alloc heap Priv
              %tmp = alloc stack Tmp
              store %v, %private      // touches only locals
              store %private, %tmp
              %x = load %tmp
              ret
            }
            func @main() {
            entry:
              %h = alloc heap H
              %r = call @worker(%h)
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mr = ModRef::compute(&prog, &aux);
        let worker = prog.function_by_name("worker").unwrap();
        let main = prog.entry_function();
        let priv_o = obj(&prog, "Priv");
        let tmp_o = obj(&prog, "Tmp");
        // The worker itself touches them...
        assert!(mr.mods(worker).contains(priv_o));
        assert!(mr.mods(worker).contains(tmp_o));
        // ...but they are private: not escaped, absent from the summary,
        // and invisible to main.
        assert!(!mr.is_escaped(priv_o));
        assert!(!mr.summary_mods(worker).contains(priv_o));
        assert!(!mr.summary_mods(worker).contains(tmp_o));
        assert!(!mr.mods(main).contains(priv_o));
    }

    #[test]
    fn returned_and_stored_objects_escape() {
        let prog = parse_program(
            r#"
            global @g
            func @make() {
            entry:
              %h = alloc heap Made
              %inner = alloc heap Inner
              store %inner, %h        // Inner reachable from Made
              ret %h
            }
            func @stash() {
            entry:
              %s = alloc heap Stashed
              store %s, @g
              ret
            }
            func @main() {
            entry:
              %r = call @make()
              call @stash()
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mr = ModRef::compute(&prog, &aux);
        for name in ["Made", "Inner", "Stashed"] {
            assert!(mr.is_escaped(obj(&prog, name)), "{name} must escape");
        }
        // Escaped callee effects are caller-visible.
        let make = prog.function_by_name("make").unwrap();
        assert!(mr.summary_mods(make).contains(obj(&prog, "Made")));
        // stash writes g; that effect is visible in main transitively.
        let main = prog.entry_function();
        assert!(mr.mods(main).contains(obj(&prog, "g")));
    }
}

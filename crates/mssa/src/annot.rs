//! χ/µ annotation of instructions (pre-renaming).
//!
//! Determines, for every instruction, which objects it may use (µ) and
//! define (χ), using the auxiliary points-to results and the mod/ref
//! summaries. The renaming pass then wires every annotation to its unique
//! reaching definition.

use crate::modref::ModRef;
use vsfs_adt::{IndexVec, PointsToSet};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{InstId, InstKind, ObjId, Program};

/// Raw (un-renamed) annotation sets per instruction.
#[derive(Debug, Clone)]
pub struct Annotations {
    /// Objects each instruction may use.
    pub mu_objs: IndexVec<InstId, PointsToSet<ObjId>>,
    /// Objects each instruction may define.
    pub chi_objs: IndexVec<InstId, PointsToSet<ObjId>>,
}

/// Computes µ/χ object sets for every instruction.
///
/// * `STORE *p = q` — χ(o) for each `o ∈ aux_pt(p)`.
/// * `LOAD p = *q` — µ(o) for each `o ∈ aux_pt(q)`.
/// * `CALL` — µ(o) for `o ∈ ⋃ summary_relevant(callee)`, χ(o) for
///   `o ∈ ⋃ summary_mods(callee)` over the auxiliary call graph's
///   callees (escape-filtered summaries).
/// * `FUNENTRY f` — χ(o) for `o ∈ relevant(f)` (incoming state, plus
///   entry definitions for `f`'s own private objects).
/// * `FUNEXIT f` — µ(o) for `o ∈ summary_mods(f)` (state returned to
///   callers).
pub fn annotate(prog: &Program, aux: &AndersenResult, modref: &ModRef) -> Annotations {
    let n = prog.insts.len();
    let mut mu_objs: IndexVec<InstId, PointsToSet<ObjId>> =
        (0..n).map(|_| PointsToSet::new()).collect();
    let mut chi_objs: IndexVec<InstId, PointsToSet<ObjId>> =
        (0..n).map(|_| PointsToSet::new()).collect();

    for (id, inst) in prog.insts.iter_enumerated() {
        match &inst.kind {
            InstKind::Store { addr, .. } => {
                chi_objs[id].union_with(aux.value_pts(*addr));
            }
            InstKind::Load { addr, .. } => {
                mu_objs[id].union_with(aux.value_pts(*addr));
            }
            InstKind::Free { ptr } => {
                chi_objs[id].union_with(aux.value_pts(*ptr));
            }
            InstKind::Call { .. } => {
                // Caller-visible (escape-filtered) summaries only: a
                // callee's private objects never annotate the call site.
                for &callee in aux.callgraph.callees(id) {
                    mu_objs[id].union_with(&modref.summary_relevant(callee));
                    chi_objs[id].union_with(modref.summary_mods(callee));
                }
            }
            InstKind::FunEntry { func } => {
                chi_objs[id].union_with(&modref.relevant(*func));
            }
            InstKind::FunExit { func, .. } => {
                mu_objs[id].union_with(modref.summary_mods(*func));
            }
            _ => {}
        }
    }
    Annotations { mu_objs, chi_objs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    #[test]
    fn per_instruction_sets() {
        let prog = parse_program(
            r#"
            global @g
            func @touch(%v) {
            entry:
              store %v, @g
              %x = load @g
              ret
            }
            func @main() {
            entry:
              %h = alloc heap H
              call @touch(%h)
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let modref = ModRef::compute(&prog, &aux);
        let a = annotate(&prog, &aux, &modref);
        let g =
            prog.objects.iter_enumerated().find(|(_, o)| o.name == "g").map(|(id, _)| id).unwrap();
        let find = |m: &str| {
            prog.insts
                .iter_enumerated()
                .find(|(_, i)| i.kind.mnemonic() == m)
                .map(|(id, _)| id)
                .unwrap()
        };
        let store = find("store");
        let load = find("load");
        let call = find("call");
        assert!(a.chi_objs[store].contains(g));
        assert!(a.mu_objs[store].is_empty());
        assert!(a.mu_objs[load].contains(g));
        assert!(a.chi_objs[load].is_empty());
        // Call touches g both ways (callee mods and refs it).
        assert!(a.mu_objs[call].contains(g));
        assert!(a.chi_objs[call].contains(g));
        // touch: entry chi and exit mu for g.
        let touch = prog.function_by_name("touch").unwrap();
        let te = prog.functions[touch].entry_inst;
        let tx = prog.functions[touch].exit_inst;
        assert!(a.chi_objs[te].contains(g));
        assert!(a.mu_objs[tx].contains(g));
        // main's funexit doesn't return g?: main mods g transitively, so it does.
        let main = prog.entry_function();
        assert!(a.mu_objs[prog.functions[main].exit_inst].contains(g));
    }
}

//! MEMPHI insertion and SSA renaming for address-taken objects.
//!
//! Classic pruned-SSA construction, one function at a time, treating each
//! address-taken object as a variable:
//!
//! * definition sites of `o` are the `FUNENTRY` χ and every store/call χ;
//! * MEMPHIs are placed at the iterated dominance frontier of the
//!   definition blocks;
//! * a dominator-tree walk with per-object version stacks wires every
//!   µ/χ/MEMPHI operand to its unique reaching definition.

use crate::annot::Annotations;
use crate::modref::ModRef;
use crate::{Chi, MemPhi, MemPhiId, MemorySsa, MssaDef, Mu};
use std::collections::HashMap;
use vsfs_adt::IndexVec;
use vsfs_ir::{BlockId, Cfg, FuncId, InstId, InstKind, ObjId, Program};

/// Runs MEMPHI insertion and renaming, producing the final [`MemorySsa`].
pub fn rename(prog: &Program, modref: &ModRef, annotations: Annotations) -> MemorySsa {
    let mut mus: IndexVec<InstId, Vec<Mu>> = (0..prog.insts.len()).map(|_| Vec::new()).collect();
    let mut chis: IndexVec<InstId, Vec<Chi>> = (0..prog.insts.len()).map(|_| Vec::new()).collect();
    let mut memphis: IndexVec<MemPhiId, MemPhi> = IndexVec::new();

    for func in prog.functions.indices() {
        rename_function(prog, modref, &annotations, func, &mut mus, &mut chis, &mut memphis);
    }
    MemorySsa { mus, chis, memphis, modref: modref.clone() }
}

#[allow(clippy::too_many_arguments)]
fn rename_function(
    prog: &Program,
    modref: &ModRef,
    ann: &Annotations,
    func: FuncId,
    mus: &mut IndexVec<InstId, Vec<Mu>>,
    chis: &mut IndexVec<InstId, Vec<Chi>>,
    memphis: &mut IndexVec<MemPhiId, MemPhi>,
) {
    let relevant = modref.relevant(func);
    if relevant.is_empty() {
        return;
    }
    let cfg = Cfg::build(prog, func);
    let dt = cfg.dominator_tree();
    let df = dt.dominance_frontiers(cfg.graph());

    // Definition blocks per object (entry always defines everything
    // relevant through the FUNENTRY χ).
    let mut def_blocks: HashMap<ObjId, Vec<u32>> = HashMap::new();
    for o in relevant.iter() {
        def_blocks.insert(o, vec![0]);
    }
    for &b in &prog.functions[func].blocks {
        for &i in &prog.blocks[b].insts {
            if ann.chi_objs[i].is_empty() {
                continue;
            }
            if matches!(prog.insts[i].kind, InstKind::FunEntry { .. }) {
                continue; // already seeded
            }
            for o in ann.chi_objs[i].iter() {
                def_blocks.entry(o).or_default().push(cfg.local(b));
            }
        }
    }

    // MEMPHI placement at iterated dominance frontiers.
    let mut phis_by_block: HashMap<BlockId, Vec<MemPhiId>> = HashMap::new();
    let mut objs: Vec<ObjId> = relevant.iter().collect();
    objs.sort_unstable();
    for o in objs {
        let defs = &def_blocks[&o];
        let idf = dt.iterated_dominance_frontier(&df, defs);
        for local in idf {
            let block = cfg.block(local);
            let id = memphis.push(MemPhi { func, block, obj: o, incoming: Vec::new() });
            phis_by_block.entry(block).or_default().push(id);
        }
    }

    // Renaming: iterative dominator-tree walk with per-object stacks.
    let mut stacks: HashMap<ObjId, Vec<MssaDef>> = HashMap::new();
    // (local block, next dom child index, number of pushes per object done
    // at this block in visit order).
    let mut walk: Vec<(u32, usize, Vec<ObjId>)> = Vec::new();
    walk.push((0, 0, Vec::new()));
    visit_block(
        prog,
        ann,
        &cfg,
        &phis_by_block,
        &mut stacks,
        mus,
        chis,
        memphis,
        0,
        &mut walk.last_mut().expect("just pushed").2,
    );

    while let Some(&mut (local, ref mut next_child, _)) = walk.last_mut() {
        let children = dt.children(local);
        if *next_child < children.len() {
            let child = children[*next_child];
            *next_child += 1;
            let mut pushed = Vec::new();
            visit_block(
                prog,
                ann,
                &cfg,
                &phis_by_block,
                &mut stacks,
                mus,
                chis,
                memphis,
                child,
                &mut pushed,
            );
            walk.push((child, 0, pushed));
        } else {
            let (_, _, pushed) = walk.pop().expect("walk non-empty");
            for o in pushed.into_iter().rev() {
                stacks.get_mut(&o).expect("stack exists for pushed object").pop();
            }
        }
    }
}

/// Processes one block: pushes MEMPHI defs, renames instruction
/// annotations, and feeds successor MEMPHIs. Records every stack push in
/// `pushed` so the caller can undo them.
#[allow(clippy::too_many_arguments)]
fn visit_block(
    prog: &Program,
    ann: &Annotations,
    cfg: &Cfg,
    phis_by_block: &HashMap<BlockId, Vec<MemPhiId>>,
    stacks: &mut HashMap<ObjId, Vec<MssaDef>>,
    mus: &mut IndexVec<InstId, Vec<Mu>>,
    chis: &mut IndexVec<InstId, Vec<Chi>>,
    memphis: &mut IndexVec<MemPhiId, MemPhi>,
    local: u32,
    pushed: &mut Vec<ObjId>,
) {
    let block = cfg.block(local);
    // MEMPHI defs at block start.
    if let Some(phis) = phis_by_block.get(&block) {
        for &p in phis {
            let o = memphis[p].obj;
            stacks.entry(o).or_default().push(MssaDef::MemPhi(p));
            pushed.push(o);
        }
    }
    // Instructions in order.
    for &i in &prog.blocks[block].insts {
        let mu_objs: Vec<ObjId> = ann.mu_objs[i].iter().collect();
        for o in mu_objs {
            if let Some(def) = stacks.get(&o).and_then(|s| s.last()) {
                mus[i].push(Mu { obj: o, def: *def });
            }
        }
        if ann.chi_objs[i].is_empty() {
            continue;
        }
        let is_entry = matches!(prog.insts[i].kind, InstKind::FunEntry { .. });
        let def_of = |inst: InstId| match prog.insts[inst].kind {
            InstKind::Call { .. } => MssaDef::CallRet(inst),
            _ => MssaDef::Inst(inst),
        };
        let chi_objs: Vec<ObjId> = ann.chi_objs[i].iter().collect();
        for o in chi_objs {
            let prev = if is_entry { None } else { stacks.get(&o).and_then(|s| s.last()).copied() };
            chis[i].push(Chi { obj: o, prev });
            stacks.entry(o).or_default().push(def_of(i));
            pushed.push(o);
        }
    }
    // Feed successor MEMPHIs.
    for succ in cfg.successors(block) {
        if let Some(phis) = phis_by_block.get(&succ) {
            for &p in phis {
                let o = memphis[p].obj;
                if let Some(def) = stacks.get(&o).and_then(|s| s.last()) {
                    if !memphis[p].incoming.contains(def) {
                        let def = *def;
                        memphis[p].incoming.push(def);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::annotate;
    use vsfs_ir::parse_program;

    /// Every µ and MEMPHI operand must reference a definition that is a
    /// χ-bearing instruction or a MEMPHI of the same object — a global
    /// well-formedness check run over a tricky CFG.
    #[test]
    fn defs_are_well_formed() {
        let prog = parse_program(
            r#"
            global @g
            func @main() {
            entry:
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              goto head
            head:
              %x = load @g
              br body, out
            body:
              br b1, b2
            b1:
              store %h1, @g
              goto tail
            b2:
              store %h2, @g
              goto tail
            tail:
              goto head
            out:
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let modref = ModRef::compute(&prog, &aux);
        let ann = annotate(&prog, &aux, &modref);
        let mssa = rename(&prog, &modref, ann);

        let check_def = |def: &MssaDef, obj: ObjId| match def {
            MssaDef::Inst(i) => {
                assert!(
                    mssa.chis(*i).iter().any(|c| c.obj == obj),
                    "def {def:?} lacks chi for {obj:?}"
                );
            }
            MssaDef::CallRet(i) => {
                assert!(mssa.chis(*i).iter().any(|c| c.obj == obj));
            }
            MssaDef::MemPhi(p) => {
                assert_eq!(mssa.memphis()[*p].obj, obj);
            }
        };
        for (i, _) in prog.insts.iter_enumerated() {
            for mu in mssa.mus(i) {
                check_def(&mu.def, mu.obj);
            }
            for chi in mssa.chis(i) {
                if let Some(prev) = &chi.prev {
                    check_def(prev, chi.obj);
                }
            }
        }
        for (_, phi) in mssa.memphis().iter_enumerated() {
            assert!(!phi.incoming.is_empty(), "memphi with no incoming defs");
            for def in &phi.incoming {
                check_def(def, phi.obj);
            }
        }
        // The loop head merges tail and entry: memphi for g at head.
        let g =
            prog.objects.iter_enumerated().find(|(_, o)| o.name == "g").map(|(id, _)| id).unwrap();
        let head_phis: Vec<&MemPhi> = mssa
            .memphis()
            .iter()
            .filter(|m| m.obj == g && prog.blocks[m.block].name == "head")
            .collect();
        assert_eq!(head_phis.len(), 1);
        // And a memphi for g at tail (join of b1/b2).
        assert!(mssa.memphis().iter().any(|m| m.obj == g && prog.blocks[m.block].name == "tail"));
    }
}

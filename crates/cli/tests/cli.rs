//! End-to-end tests driving the `vsfs` binary.

use std::process::Command;

fn vsfs(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vsfs")).args(args).output().expect("binary runs")
}

#[test]
fn list_shows_corpus_and_suite() {
    let out = vsfs(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("strong_update"));
    assert!(stdout.contains("hyriseConsole"));
}

#[test]
fn corpus_run_prints_points_to() {
    let out = vsfs(&["--corpus", "strong_update", "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pt(@main::%before) = {First}"), "{stdout}");
    assert!(stdout.contains("pt(@main::%after) = {Second}"), "{stdout}");
}

#[test]
fn andersen_mode_is_flow_insensitive() {
    let out = vsfs(&["--ander", "--corpus", "strong_update", "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Flow-insensitive: both loads see both heap objects.
    assert!(stdout.contains("pt(@main::%before) = {First, Second}"), "{stdout}");
}

#[test]
fn sfs_and_vsfs_print_identical_points_to() {
    let a = vsfs(&["--fspta", "--corpus", "fptr_dispatch", "--print-pts", "--print-callgraph"]);
    let b = vsfs(&["--vfspta", "--corpus", "fptr_dispatch", "--print-pts", "--print-callgraph"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir().join("vsfs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.vir");
    std::fs::write(
        &path,
        "func @main() {\nentry:\n  %p = alloc stack A\n  %q = alloc heap H\n  store %q, %p\n  %r = load %p\n  ret\n}\n",
    )
    .unwrap();
    let out = vsfs(&[path.to_str().unwrap(), "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pt(@main::%r) = {H}"), "{stdout}");
}

#[test]
fn dot_output_is_written() {
    let dir = std::env::temp_dir().join("vsfs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dot = dir.join("out.dot");
    let out = vsfs(&["--corpus", "linked_list", "--dot-svfg", dot.to_str().unwrap()]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph svfg {"));
}

#[test]
fn bad_input_fails_cleanly() {
    let out = vsfs(&["--corpus", "nonesuch"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown corpus program"));
}

#[test]
fn workload_input_analyzes_end_to_end() {
    let out = vsfs(&["--workload", "du", "--stats", "--precision-report"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("precision vs Andersen:"), "{stdout}");
    assert!(stdout.contains("main phase:"), "{stdout}");
}

#[test]
fn sfs_flag_runs_the_baseline() {
    let out = vsfs(&["--fspta", "--corpus", "flow_order", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // No versioning line for the baseline.
    assert!(!stdout.contains("versioning:"), "{stdout}");
}

#[test]
fn generous_budget_completes_with_exit_zero() {
    let out = vsfs(&["--corpus", "strong_update", "--step-budget", "1000000", "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Budget never trips: still the exact flow-sensitive result...
    assert!(stdout.contains("pt(@main::%before) = {First}"), "{stdout}");
    // ...plus the completion record.
    assert!(stdout.contains(r#"{"completion":"complete","mode":"flow-sensitive"}"#), "{stdout}");
}

#[test]
fn exhausted_step_budget_degrades_to_andersen_with_exit_two() {
    let out = vsfs(&["--corpus", "strong_update", "--step-budget", "1", "--print-pts"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Fallback output is the flow-insensitive over-approximation.
    assert!(stdout.contains("pt(@main::%before) = {First, Second}"), "{stdout}");
    assert!(stdout.contains(r#""completion":"degraded""#), "{stdout}");
    assert!(stdout.contains(r#""mode":"flow-insensitive-fallback""#), "{stdout}");
    assert!(stdout.contains(r#""reason":"step-budget""#), "{stdout}");
}

#[test]
fn injected_panic_degrades_identically_across_jobs() {
    let outs: Vec<_> = ["1", "2", "8"]
        .iter()
        .map(|jobs| {
            vsfs(&[
                "--workload",
                "ninja",
                "--jobs",
                jobs,
                "--inject-fault",
                "panic:1",
                "--print-pts",
            ])
        })
        .collect();
    for out in &outs {
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(r#""reason":"worker-panic""#), "{stdout}");
    }
    assert_eq!(outs[0].stdout, outs[1].stdout);
    assert_eq!(outs[0].stdout, outs[2].stdout);
}

#[test]
fn injected_deadline_and_mem_cap_fire_at_checkpoints() {
    for (kind, reason) in [("deadline", "deadline"), ("mem-cap", "mem-budget")] {
        let out = vsfs(&["--workload", "ninja", "--inject-fault", &format!("{kind}:2")]);
        assert_eq!(out.status.code(), Some(2), "{kind}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(&format!(r#""reason":"{reason}""#)), "{kind}: {stdout}");
    }
}

#[test]
fn bad_budget_flags_are_typed_errors_with_exit_one() {
    for args in [
        &["--corpus", "strong_update", "--step-budget", "abc"][..],
        &["--corpus", "strong_update", "--time-budget", "-1"][..],
        &["--corpus", "strong_update", "--mem-budget"][..],
        &["--corpus", "strong_update", "--inject-fault", "frobnicate:1"][..],
    ] {
        let out = vsfs(args);
        assert_eq!(out.status.code(), Some(1), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error:"), "{args:?}: {stderr}");
    }
}

#[test]
fn parse_errors_report_every_diagnostic_with_position() {
    let dir = std::env::temp_dir().join("vsfs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.vir");
    std::fs::write(
        &path,
        "func @a() {\nentry:\n  frobnicate\n  ret\n}\n\
         func @b() {\nentry:\n  %x = load %nope\n  ret\n}\n",
    )
    .unwrap();
    let out = vsfs(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3:"), "{stderr}");
    assert!(stderr.contains("unknown instruction"), "{stderr}");
    assert!(stderr.contains("line 8:"), "{stderr}");
    assert!(stderr.contains("undefined value"), "{stderr}");
}

#[test]
fn tight_wall_clock_deadline_degrades_not_errors() {
    // A zero-second deadline trips at the first checkpoint it reaches.
    // Whichever stage that is, a sound coarser rung exists — the
    // Andersen fallback if the flow-sensitive stage tripped, the
    // unification tier if the auxiliary stage itself did — so the exit
    // code is always 2, never a hard error, a hang, or a crash.
    let out = vsfs(&["--corpus", "strong_update", "--time-budget", "0"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""completion":"degraded""#), "{stdout}");
    assert!(
        stdout.contains(r#""mode":"flow-insensitive-fallback""#)
            || stdout.contains(r#""mode":"unification-fallback""#),
        "{stdout}"
    );
}

#[test]
fn fifo_and_topo_orders_print_identical_results() {
    for analysis in ["--fspta", "--vfspta"] {
        let fifo = vsfs(&[
            analysis,
            "--order",
            "fifo",
            "--corpus",
            "fptr_dispatch",
            "--print-pts",
            "--print-callgraph",
        ]);
        let topo = vsfs(&[
            analysis,
            "--order",
            "topo",
            "--corpus",
            "fptr_dispatch",
            "--print-pts",
            "--print-callgraph",
        ]);
        assert!(fifo.status.success() && topo.status.success());
        assert_eq!(fifo.stdout, topo.stdout, "{analysis}: orders must agree");
    }
}

#[test]
fn stats_report_scheduling_counters() {
    let out = vsfs(&["--workload", "du", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("order:             topo"), "{stdout}");
    assert!(stdout.contains("slot pops:"), "{stdout}");
    assert!(stdout.contains("pushes suppressed:"), "{stdout}");
    assert!(stdout.contains("unions avoided:"), "{stdout}");
    assert!(stdout.contains("delta bytes:"), "{stdout}");
}

#[test]
fn bad_order_value_is_a_typed_error_with_exit_one() {
    let out = vsfs(&["--corpus", "strong_update", "--order", "lifo"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value `lifo` for --order"), "{stderr}");
}

#[test]
fn order_with_andersen_is_rejected() {
    let out = vsfs(&["--ander", "--order", "topo", "--corpus", "strong_update"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--order"), "{stderr}");
}

#[test]
fn governed_run_accepts_explicit_order() {
    for order in ["fifo", "topo"] {
        let out = vsfs(&[
            "--corpus",
            "strong_update",
            "--order",
            order,
            "--step-budget",
            "1000000",
            "--print-pts",
        ]);
        assert!(out.status.success(), "{order}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("pt(@main::%before) = {First}"), "{order}: {stdout}");
    }
}

#[test]
fn unify_solver_prints_a_sound_coarse_result() {
    let out = vsfs(&["--solver", "unify", "--corpus", "strong_update", "--print-pts"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Coarsest tier: both loads see both heap objects — a superset of
    // the flow-sensitive {First} / {Second}.
    for v in ["%before", "%after"] {
        let line = stdout
            .lines()
            .find(|l| l.contains(&format!("::{v})")))
            .unwrap_or_else(|| panic!("no pt line for {v}: {stdout}"));
        assert!(line.contains("First") && line.contains("Second"), "{line}");
    }
}

#[test]
fn unknown_solver_and_pre_values_share_the_typed_error_shape() {
    let out = vsfs(&["--solver", "bogus", "--corpus", "strong_update"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value `bogus` for --solver"), "{stderr}");
    assert!(stderr.contains("`unify`"), "{stderr}");

    let out = vsfs(&["--pre", "steensgaard", "--corpus", "strong_update"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value `steensgaard` for --pre (expected `unify` or `none`)"),
        "{stderr}"
    );
}

#[test]
fn order_with_unify_is_rejected() {
    let out = vsfs(&["--solver", "unify", "--order", "topo", "--corpus", "strong_update"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not order-switchable"), "{stderr}");
}

#[test]
fn cold_only_solvers_never_stage_the_graphs() {
    // SolverCaps dispatch, observed end to end through --stats: the
    // staged solvers report the memory-SSA/SVFG build, the cold-only
    // ones must never construct either.
    for solver in ["dense", "cfgfree", "unify"] {
        let out = vsfs(&["--solver", solver, "--workload", "du", "--stats"]);
        assert!(out.status.success(), "{solver}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(!stdout.contains("mssa + svfg"), "{solver} staged a graph: {stdout}");
        assert!(!stdout.contains("svfg:"), "{solver} staged a graph: {stdout}");
    }
    for solver in ["sfs", "vsfs"] {
        let out = vsfs(&["--solver", solver, "--workload", "du", "--stats"]);
        assert!(out.status.success(), "{solver}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("mssa + svfg"), "{solver} must stage: {stdout}");
        assert!(stdout.contains("svfg:"), "{solver} must stage: {stdout}");
    }
}

#[test]
fn pre_analysis_seeding_is_a_pure_scheduling_hint() {
    // Same program, with and without --pre unify, across job counts:
    // byte-identical analysis output.
    let base = vsfs(&["--corpus", "fptr_dispatch", "--print-pts", "--print-callgraph"]);
    assert!(base.status.success());
    for jobs in ["1", "4"] {
        let seeded = vsfs(&[
            "--pre",
            "unify",
            "--jobs",
            jobs,
            "--corpus",
            "fptr_dispatch",
            "--print-pts",
            "--print-callgraph",
        ]);
        assert!(seeded.status.success(), "{seeded:?}");
        assert_eq!(seeded.stdout, base.stdout, "jobs {jobs}: seeding changed the result");
    }
    // --stats names the pre-analysis and marks the seeded Andersen waves.
    let out = vsfs(&["--pre", "unify", "--jobs", "4", "--corpus", "fptr_dispatch", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pre-analysis:      unify"), "{stdout}");
    assert!(stdout.contains("alias regions"), "{stdout}");
    assert!(stdout.contains("region-seeded waves"), "{stdout}");
}

#[test]
fn pre_with_budget_flags_is_rejected() {
    let out = vsfs(&["--pre", "unify", "--step-budget", "5", "--corpus", "strong_update"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--pre unify"), "{stderr}");
}

#[test]
fn exhausted_aux_budget_degrades_to_the_unification_tier_with_exit_two() {
    // A zero memory budget trips the auxiliary stage at its first
    // checkpoint. Rung 3 of the ladder: instead of the old hard error,
    // the run degrades to the ungoverned unification tier and still
    // prints sound points-to output.
    let out = vsfs(&["--corpus", "strong_update", "--mem-budget", "0", "--print-pts"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""completion":"degraded""#), "{stdout}");
    assert!(stdout.contains(r#""mode":"unification-fallback""#), "{stdout}");
    assert!(stdout.contains(r#""stage":"andersen""#), "{stdout}");
    let line = stdout
        .lines()
        .find(|l| l.contains("::%before)"))
        .unwrap_or_else(|| panic!("no pt line: {stdout}"));
    assert!(line.contains("First") && line.contains("Second"), "{line}");
}

#[test]
fn check_summary_reports_all_four_tiers() {
    let out = vsfs(&["--check", "--corpus", "strong_update"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for checker in ["use-after-free", "double-free", "leak", "null-deref"] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(&format!("check-summary: {checker}:")))
            .unwrap_or_else(|| panic!("no summary for {checker}: {stdout}"));
        for tier in ["steensgaard=", "unify=", "andersen=", "flow-sensitive=", "fp-removed="] {
            assert!(line.contains(tier), "{line}");
        }
        // fp-removed stays the trailing field — the CI gate greps on it.
        let last = line.rsplit(' ').next().unwrap();
        assert!(last.starts_with("fp-removed="), "{line}");
    }
}

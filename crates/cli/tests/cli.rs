//! End-to-end tests driving the `vsfs` binary.

use std::process::Command;

fn vsfs(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vsfs"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_shows_corpus_and_suite() {
    let out = vsfs(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("strong_update"));
    assert!(stdout.contains("hyriseConsole"));
}

#[test]
fn corpus_run_prints_points_to() {
    let out = vsfs(&["--corpus", "strong_update", "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pt(@main::%before) = {First}"), "{stdout}");
    assert!(stdout.contains("pt(@main::%after) = {Second}"), "{stdout}");
}

#[test]
fn andersen_mode_is_flow_insensitive() {
    let out = vsfs(&["--ander", "--corpus", "strong_update", "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Flow-insensitive: both loads see both heap objects.
    assert!(stdout.contains("pt(@main::%before) = {First, Second}"), "{stdout}");
}

#[test]
fn sfs_and_vsfs_print_identical_points_to() {
    let a = vsfs(&["--fspta", "--corpus", "fptr_dispatch", "--print-pts", "--print-callgraph"]);
    let b = vsfs(&["--vfspta", "--corpus", "fptr_dispatch", "--print-pts", "--print-callgraph"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir().join("vsfs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.vir");
    std::fs::write(
        &path,
        "func @main() {\nentry:\n  %p = alloc stack A\n  %q = alloc heap H\n  store %q, %p\n  %r = load %p\n  ret\n}\n",
    )
    .unwrap();
    let out = vsfs(&[path.to_str().unwrap(), "--print-pts"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pt(@main::%r) = {H}"), "{stdout}");
}

#[test]
fn dot_output_is_written() {
    let dir = std::env::temp_dir().join("vsfs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dot = dir.join("out.dot");
    let out = vsfs(&["--corpus", "linked_list", "--dot-svfg", dot.to_str().unwrap()]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph svfg {"));
}

#[test]
fn bad_input_fails_cleanly() {
    let out = vsfs(&["--corpus", "nonesuch"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown corpus program"));
}

#[test]
fn workload_input_analyzes_end_to_end() {
    let out = vsfs(&["--workload", "du", "--stats", "--precision-report"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("precision vs Andersen:"), "{stdout}");
    assert!(stdout.contains("main phase:"), "{stdout}");
}

#[test]
fn sfs_flag_runs_the_baseline() {
    let out = vsfs(&["--fspta", "--corpus", "flow_order", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // No versioning line for the baseline.
    assert!(!stdout.contains("versioning:"), "{stdout}");
}

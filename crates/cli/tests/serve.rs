//! End-to-end protocol tests for `vsfs serve`: spawn the real daemon,
//! drive it over stdin/stdout (and a Unix socket), and check that every
//! request type answers — and that malformed input yields typed JSON
//! errors, never a crash.
//!
//! Assertions work on raw response lines (the protocol is line-delimited
//! JSON with a stable key order), so the tests need no JSON parser.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const PROG: &str = "global @g\n\nfunc @make() {\nentry:\n  %h = alloc heap H\n  ret %h\n}\n\nfunc @main() {\nentry:\n  %a = call @make()\n  store %a, @g\n  %b = load @g\n  ret\n}\n";

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vsfs"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon { child, stdin, stdout }
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "daemon closed the stream unexpectedly");
        resp.trim_end().to_string()
    }

    fn shutdown(mut self) {
        let resp = self.request("{\"op\":\"shutdown\"}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status}");
    }
}

/// JSON-escapes a program source for embedding in a request line.
fn quote(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn field<'a>(resp: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = resp.find(&pat).unwrap_or_else(|| panic!("no '{key}' in {resp}")) + pat.len();
    let rest = &resp[start..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn full_session_over_stdio() {
    let mut d = Daemon::spawn(&[]);
    assert!(d.request("{\"op\":\"ping\"}").contains("\"ok\":true"));

    // load
    let resp = d.request(&format!(
        "{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}",
        quote(PROG)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"mode\":\"flow-sensitive\""), "{resp}");
    assert!(resp.contains("\"degraded\":false"), "{resp}");
    let fp0 = field(&resp, "fingerprint").to_string();

    // pts: the load through the global sees exactly H.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");

    // alias
    let resp =
        d.request("{\"op\":\"alias\",\"id\":\"p\",\"func\":\"main\",\"p\":\"%a\",\"q\":\"%b\"}");
    assert!(resp.contains("\"may_alias\":true"), "{resp}");

    // check: H never freed — the leak checker fires.
    let resp = d.request("{\"op\":\"check\",\"id\":\"p\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"checker\":\"leak\""), "{resp}");

    // stats
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert!(resp.contains("\"warm\":true"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");

    // edit: replace @make to allocate a second object behind a phi.
    let body = "func @make() {\nentry:\n  %h = alloc heap H2\n  ret %h\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"make\",\"text\":{}}}]}}",
        quote(body)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"incremental\":true"), "{resp}");
    assert_ne!(field(&resp, "fingerprint"), fp0, "edit must change the result");
    let dirty: usize = field(&resp, "dirty_nodes").parse().unwrap();
    let total: usize = field(&resp, "total_nodes").parse().unwrap();
    assert!(dirty > 0 && dirty < total, "dirty {dirty}/{total}");

    // The query surface reflects the edit.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H2\"]"), "{resp}");

    // add + remove round trip.
    let extra = "func @extra() {\nentry:\n  %x = alloc stack X\n  ret\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"add\",\"name\":\"extra\",\"text\":{}}}]}}",
        quote(extra)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field(&resp, "functions"), "3", "{resp}"); // make, main, extra
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"extra\"}]}",
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // unload, then the program is gone.
    assert!(d.request("{\"op\":\"unload\",\"id\":\"p\"}").contains("\"ok\":true"));
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert!(resp.contains("\"code\":\"unknown_program\""), "{resp}");

    d.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_crashes() {
    let mut d = Daemon::spawn(&[]);
    let cases: &[(&str, &str)] = &[
        ("this is not json", "bad_json"),
        ("{\"op\":123}", "bad_request"),
        ("{\"op\":\"frobnicate\"}", "unknown_op"),
        ("{\"op\":\"load\",\"id\":\"x\"}", "bad_request"),
        ("{\"op\":\"pts\",\"id\":\"nope\",\"value\":\"v\"}", "unknown_program"),
        ("[1,2,3]", "bad_request"),
        ("{\"op\":\"edit\",\"id\":\"nope\",\"delta\":[]}", "unknown_program"),
    ];
    for (req, code) in cases {
        let resp = d.request(req);
        assert!(resp.contains("\"ok\":false"), "{req} -> {resp}");
        assert!(
            resp.contains(&format!("\"code\":\"{code}\"")),
            "{req} -> {resp} (wanted {code})"
        );
    }
    // The daemon is still healthy after every error.
    assert!(d.request("{\"op\":\"ping\"}").contains("\"ok\":true"));
    d.shutdown();
}

#[test]
fn edit_errors_are_typed_and_roll_back() {
    let mut d = Daemon::spawn(&[]);
    let resp = d.request(&format!(
        "{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}",
        quote(PROG)
    ));
    let fp0 = field(&resp, "fingerprint").to_string();

    // Unknown function in the delta.
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"ghost\"}]}",
    );
    assert!(resp.contains("\"code\":\"unknown_function\""), "{resp}");

    // Unparsable replacement body.
    let bad = "func @make() {\nentry:\n  %h = alloc heap\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"make\",\"text\":{}}}]}}",
        quote(bad)
    ));
    assert!(resp.contains("\"code\":\"parse_error\""), "{resp}");

    // Removing a still-called function fails verification.
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"make\"}]}",
    );
    assert!(
        resp.contains("\"code\":\"parse_error\"") || resp.contains("\"code\":\"verify_error\""),
        "{resp}"
    );

    // Every failure rolled back: same fingerprint, still warm.
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");
    assert!(resp.contains("\"warm\":true"), "{resp}");
    d.shutdown();
}

#[test]
fn corpus_preload_and_unix_socket() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("vsfs_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("alpha.vir"), PROG).unwrap();
    let sock = dir.join("vsfs.sock");

    let mut child = Command::new(env!("CARGO_BIN_EXE_vsfs"))
        .args(["serve", "--corpus"])
        .arg(&dir)
        .arg("--socket")
        .arg(&sock)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    // Wait for the socket to appear.
    let mut tries = 0;
    while !sock.exists() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        tries += 1;
        assert!(tries < 200, "socket never appeared");
    }
    let stream = UnixStream::connect(&sock).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut s = stream.try_clone().unwrap();
        writeln!(s, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    };

    // The corpus program was preloaded under its file stem.
    let resp = send("{\"op\":\"stats\"}");
    assert!(resp.contains("\"ids\":[\"alpha\"]"), "{resp}");
    let resp = send("{\"op\":\"pts\",\"id\":\"alpha\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");
    let resp = send("{\"op\":\"shutdown\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");

    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end protocol tests for `vsfs serve`: spawn the real daemon,
//! drive it over stdin/stdout (and a Unix socket), and check that every
//! request type answers — and that malformed input yields typed JSON
//! errors, never a crash.
//!
//! Assertions work on raw response lines (the protocol is line-delimited
//! JSON with a stable key order), so the tests need no JSON parser.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const PROG: &str = "global @g\n\nfunc @make() {\nentry:\n  %h = alloc heap H\n  ret %h\n}\n\nfunc @main() {\nentry:\n  %a = call @make()\n  store %a, @g\n  %b = load @g\n  ret\n}\n";

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vsfs"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon { child, stdin, stdout }
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "daemon closed the stream unexpectedly");
        resp.trim_end().to_string()
    }

    fn shutdown(mut self) {
        let resp = self.request("{\"op\":\"shutdown\"}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status}");
    }
}

/// JSON-escapes a program source for embedding in a request line.
fn quote(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn field<'a>(resp: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = resp.find(&pat).unwrap_or_else(|| panic!("no '{key}' in {resp}")) + pat.len();
    let rest = &resp[start..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn full_session_over_stdio() {
    let mut d = Daemon::spawn(&[]);
    assert!(d.request("{\"op\":\"ping\"}").contains("\"ok\":true"));

    // load
    let resp = d.request(&format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"mode\":\"flow-sensitive\""), "{resp}");
    assert!(resp.contains("\"degraded\":false"), "{resp}");
    let fp0 = field(&resp, "fingerprint").to_string();

    // pts: the load through the global sees exactly H.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");

    // alias
    let resp =
        d.request("{\"op\":\"alias\",\"id\":\"p\",\"func\":\"main\",\"p\":\"%a\",\"q\":\"%b\"}");
    assert!(resp.contains("\"may_alias\":true"), "{resp}");

    // check: H never freed — the leak checker fires.
    let resp = d.request("{\"op\":\"check\",\"id\":\"p\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"checker\":\"leak\""), "{resp}");

    // stats
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert!(resp.contains("\"warm\":true"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");

    // edit: replace @make to allocate a second object behind a phi.
    let body = "func @make() {\nentry:\n  %h = alloc heap H2\n  ret %h\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"make\",\"text\":{}}}]}}",
        quote(body)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"incremental\":true"), "{resp}");
    assert_ne!(field(&resp, "fingerprint"), fp0, "edit must change the result");
    let dirty: usize = field(&resp, "dirty_nodes").parse().unwrap();
    let total: usize = field(&resp, "total_nodes").parse().unwrap();
    assert!(dirty > 0 && dirty < total, "dirty {dirty}/{total}");

    // The query surface reflects the edit.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H2\"]"), "{resp}");

    // add + remove round trip.
    let extra = "func @extra() {\nentry:\n  %x = alloc stack X\n  ret\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"add\",\"name\":\"extra\",\"text\":{}}}]}}",
        quote(extra)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field(&resp, "functions"), "3", "{resp}"); // make, main, extra
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"extra\"}]}",
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // unload, then the program is gone.
    assert!(d.request("{\"op\":\"unload\",\"id\":\"p\"}").contains("\"ok\":true"));
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert!(resp.contains("\"code\":\"unknown_program\""), "{resp}");

    d.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_crashes() {
    let mut d = Daemon::spawn(&[]);
    let cases: &[(&str, &str)] = &[
        ("this is not json", "bad_json"),
        ("{\"op\":123}", "bad_request"),
        ("{\"op\":\"frobnicate\"}", "unknown_op"),
        ("{\"op\":\"load\",\"id\":\"x\"}", "bad_request"),
        ("{\"op\":\"pts\",\"id\":\"nope\",\"value\":\"v\"}", "unknown_program"),
        ("[1,2,3]", "bad_request"),
        ("{\"op\":\"edit\",\"id\":\"nope\",\"delta\":[]}", "unknown_program"),
    ];
    for (req, code) in cases {
        let resp = d.request(req);
        assert!(resp.contains("\"ok\":false"), "{req} -> {resp}");
        assert!(resp.contains(&format!("\"code\":\"{code}\"")), "{req} -> {resp} (wanted {code})");
    }
    // The daemon is still healthy after every error.
    assert!(d.request("{\"op\":\"ping\"}").contains("\"ok\":true"));
    d.shutdown();
}

#[test]
fn edit_errors_are_typed_and_roll_back() {
    let mut d = Daemon::spawn(&[]);
    let resp = d.request(&format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)));
    let fp0 = field(&resp, "fingerprint").to_string();

    // Unknown function in the delta.
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"ghost\"}]}",
    );
    assert!(resp.contains("\"code\":\"unknown_function\""), "{resp}");

    // Unparsable replacement body.
    let bad = "func @make() {\nentry:\n  %h = alloc heap\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{{\"action\":\"replace\",\"name\":\"make\",\"text\":{}}}]}}",
        quote(bad)
    ));
    assert!(resp.contains("\"code\":\"parse_error\""), "{resp}");

    // Removing a still-called function fails verification.
    let resp = d.request(
        "{\"op\":\"edit\",\"id\":\"p\",\"delta\":[{\"action\":\"remove\",\"name\":\"make\"}]}",
    );
    assert!(
        resp.contains("\"code\":\"parse_error\"") || resp.contains("\"code\":\"verify_error\""),
        "{resp}"
    );

    // Every failure rolled back: same fingerprint, still warm.
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");
    assert!(resp.contains("\"warm\":true"), "{resp}");
    d.shutdown();
}

#[test]
fn corpus_preload_and_unix_socket() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("vsfs_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("alpha.vir"), PROG).unwrap();
    let sock = dir.join("vsfs.sock");

    let mut child = Command::new(env!("CARGO_BIN_EXE_vsfs"))
        .args(["serve", "--corpus"])
        .arg(&dir)
        .arg("--socket")
        .arg(&sock)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    // Wait for the socket to appear.
    let mut tries = 0;
    while !sock.exists() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        tries += 1;
        assert!(tries < 200, "socket never appeared");
    }
    let stream = UnixStream::connect(&sock).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut s = stream.try_clone().unwrap();
        writeln!(s, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    };

    // The corpus program was preloaded under its file stem.
    let resp = send("{\"op\":\"stats\"}");
    assert!(resp.contains("\"ids\":[\"alpha\"]"), "{resp}");
    let resp = send("{\"op\":\"pts\",\"id\":\"alpha\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");
    let resp = send("{\"op\":\"shutdown\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");

    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_quarantines_one_workspace_and_the_daemon_survives() {
    let mut d = Daemon::spawn(&[]);
    for id in ["a", "b"] {
        let resp =
            d.request(&format!("{{\"op\":\"load\",\"id\":\"{id}\",\"source\":{}}}", quote(PROG)));
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    // Fault drill: the request panics inside the handler...
    let resp = d.request("{\"op\":\"debug_panic\",\"id\":\"a\"}");
    assert!(resp.contains("\"code\":\"internal_fault\""), "{resp}");
    assert!(resp.contains("\"quarantined\":true"), "{resp}");

    // ...the process is alive, 'a' is quarantined with a typed error...
    let resp = d.request("{\"op\":\"pts\",\"id\":\"a\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"code\":\"workspace_quarantined\""), "{resp}");

    // ...and 'b' still answers real queries.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"b\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");

    // A fresh load re-admits 'a'.
    let resp = d.request(&format!("{{\"op\":\"load\",\"id\":\"a\",\"source\":{}}}", quote(PROG)));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = d.request("{\"op\":\"pts\",\"id\":\"a\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");
    d.shutdown();
}

#[test]
fn solver_selection_and_cold_only_workspaces_over_stdio() {
    let mut d = Daemon::spawn(&[]);

    // Unknown solver names are a typed bad_request.
    let resp = d.request(&format!(
        "{{\"op\":\"load\",\"id\":\"x\",\"source\":{},\"solver\":\"bogus\"}}",
        quote(PROG)
    ));
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    assert!(resp.contains("unknown solver 'bogus'"), "{resp}");

    // A staged workspace (server default) and a cold-only cfgfree one
    // over the same text: query-identical fingerprints.
    let resp =
        d.request(&format!("{{\"op\":\"load\",\"id\":\"warm\",\"source\":{}}}", quote(PROG)));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let fp = field(&resp, "fingerprint").to_string();
    let resp = d.request(&format!(
        "{{\"op\":\"load\",\"id\":\"cold\",\"source\":{},\"solver\":\"cfgfree\"}}",
        quote(PROG)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp, "cfgfree must be query-identical: {resp}");

    // Per-workspace stats name the resident solver and warm residency;
    // the SVFG counters are null for a cold-only workspace.
    let resp = d.request("{\"op\":\"stats\",\"id\":\"warm\"}");
    assert!(resp.contains("\"solver\":\"sfs\""), "{resp}");
    assert!(resp.contains("\"warm\":true"), "{resp}");
    let resp = d.request("{\"op\":\"stats\",\"id\":\"cold\"}");
    assert!(resp.contains("\"solver\":\"cfgfree\""), "{resp}");
    assert!(resp.contains("\"warm\":false"), "{resp}");
    assert!(resp.contains("\"nodes\":null"), "{resp}");
    assert!(resp.contains("\"direct_edges\":null"), "{resp}");

    // Cold-only workspaces serve the whole query surface; `check`
    // stages an SVFG on demand for the witness walk.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"cold\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");
    let resp = d.request("{\"op\":\"check\",\"id\":\"cold\"}");
    assert!(resp.contains("\"checker\":\"leak\""), "{resp}");

    // Edits are served by exact cold re-solves, and an edit that omits
    // `solver` keeps the workspace's resident one.
    let body = "func @make() {\nentry:\n  %h = alloc heap H2\n  ret %h\n}";
    let resp = d.request(&format!(
        "{{\"op\":\"edit\",\"id\":\"cold\",\"delta\":[{{\"action\":\"replace\",\"name\":\"make\",\"text\":{}}}]}}",
        quote(body)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"incremental\":false"), "{resp}");
    let resp = d.request("{\"op\":\"pts\",\"id\":\"cold\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H2\"]"), "{resp}");
    let resp = d.request("{\"op\":\"stats\",\"id\":\"cold\"}");
    assert!(resp.contains("\"solver\":\"cfgfree\""), "{resp}");

    // Naming a different solver on an edit switches the workspace by a
    // cold re-solve that preserves the result.
    let resp = d.request("{\"op\":\"edit\",\"id\":\"warm\",\"delta\":[],\"solver\":\"vsfs\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"incremental\":false"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp, "solver switch must preserve the result: {resp}");
    let resp = d.request("{\"op\":\"stats\",\"id\":\"warm\"}");
    assert!(resp.contains("\"solver\":\"vsfs\""), "{resp}");
    assert!(resp.contains("\"warm\":true"), "{resp}");

    // The unification tier is a first-class solver name: loads accept
    // it, per-workspace stats report it, and — being cold-only — its
    // SVFG counters are null.
    let resp = d.request(&format!(
        "{{\"op\":\"load\",\"id\":\"uni\",\"source\":{},\"solver\":\"unify\"}}",
        quote(PROG)
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"degraded\":false"), "{resp}");
    let resp = d.request("{\"op\":\"stats\",\"id\":\"uni\"}");
    assert!(resp.contains("\"solver\":\"unify\""), "{resp}");
    assert!(resp.contains("\"nodes\":null"), "{resp}");

    // ... but only the exact name: the tier-config name `steensgaard`
    // and a case-mangled `UNIFY` stay outside the closed solver family,
    // pinned to the typed `bad_request` path.
    for bad in ["steensgaard", "UNIFY"] {
        let resp = d.request(&format!(
            "{{\"op\":\"load\",\"id\":\"y\",\"source\":{},\"solver\":\"{bad}\"}}",
            quote(PROG)
        ));
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
        assert!(resp.contains(&format!("unknown solver '{bad}'")), "{resp}");
        assert!(
            resp.contains("expected dense, sfs, vsfs, cfgfree, or unify"),
            "the error must enumerate the accepted names: {resp}"
        );
    }

    d.shutdown();
}

/// Drives one fuzz session over an open pair of read/write halves,
/// asserting one well-formed response per non-blank line with an error
/// code inside the server's closed taxonomy. Returns responses.
fn drive_fuzz_session<W: Write, R: BufRead>(
    seed: u64,
    cases: usize,
    max_line: usize,
    writer: &mut W,
    reader: &mut R,
) -> Vec<String> {
    let mut fuzzer = vsfs_testkit::ProtocolFuzzer::new(seed, max_line);
    let mut responses = Vec::new();
    for case in fuzzer.session(cases) {
        writer.write_all(&case.line).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        // Blank lines are skipped by the server: no response expected.
        if String::from_utf8_lossy(&case.line).trim().is_empty() {
            continue;
        }
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(
            !resp.is_empty(),
            "seed {seed}: daemon died on {:?} line {:?}",
            case.kind,
            String::from_utf8_lossy(&case.line)
        );
        assert!(
            resp.starts_with("{\"ok\":"),
            "seed {seed}: unparseable response {resp} to {:?}",
            case.kind
        );
        if resp.contains("\"ok\":false") {
            let code = field(&resp, "code").trim_matches('"').to_string();
            assert!(
                vsfs_server::ERROR_CODES.contains(&code.as_str()),
                "seed {seed}: code '{code}' outside the taxonomy ({resp})"
            );
        }
        responses.push(resp.trim_end().to_string());
    }
    responses
}

#[test]
fn fuzz_sessions_over_stdio_never_kill_the_daemon() {
    for seed in [1u64, 2, 3] {
        let mut d = Daemon::spawn(&["--max-request-bytes", "4096"]);
        drive_fuzz_session(seed, 120, 4096, &mut d.stdin, &mut d.stdout);
        // Sessions are deterministic per seed: same seed, same lines.
        let a = {
            let mut f = vsfs_testkit::ProtocolFuzzer::new(seed, 4096);
            f.session(120).into_iter().map(|c| c.line).collect::<Vec<_>>()
        };
        let b = {
            let mut f = vsfs_testkit::ProtocolFuzzer::new(seed, 4096);
            f.session(120).into_iter().map(|c| c.line).collect::<Vec<_>>()
        };
        assert_eq!(a, b);
        // The daemon survived the whole session.
        assert!(d.request("{\"op\":\"ping\"}").contains("\"ok\":true"));
        d.shutdown();
    }
}

#[test]
fn fuzz_sessions_over_unix_socket_never_leak_socket_files() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("vsfs_fuzz_sock_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("fuzz.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_vsfs"))
        .args(["serve", "--max-request-bytes", "4096", "--socket"])
        .arg(&sock)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut tries = 0;
    while !sock.exists() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        tries += 1;
        assert!(tries < 200, "socket never appeared");
    }

    for seed in [11u64, 12, 13] {
        let stream = UnixStream::connect(&sock).expect("connect");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        drive_fuzz_session(seed, 120, 4096, &mut writer, &mut reader);
    }

    // Still alive; shut down and verify the socket file is cleaned up.
    let stream = UnixStream::connect(&sock).expect("connect after fuzzing");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    assert!(!sock.exists(), "socket file leaked after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_lifecycle_live_probe_stale_reclaim_and_refusal() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("vsfs_sock_life_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("life.sock");

    let spawn_on = |sock: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_vsfs"))
            .args(["serve", "--socket"])
            .arg(sock)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns")
    };
    let wait_for = |sock: &std::path::Path| {
        let mut tries = 0;
        while UnixStream::connect(sock).is_err() {
            std::thread::sleep(std::time::Duration::from_millis(50));
            tries += 1;
            assert!(tries < 200, "socket never came up");
        }
    };
    let roundtrip = |sock: &std::path::Path, line: &str| {
        let stream = UnixStream::connect(sock).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    };

    // A second daemon must refuse to displace a live one.
    let mut first = spawn_on(&sock);
    wait_for(&sock);
    let mut second = spawn_on(&sock);
    let status = second.wait().expect("second daemon exits");
    assert!(!status.success(), "second daemon must refuse a live socket");
    assert!(roundtrip(&sock, "{\"op\":\"ping\"}").contains("\"ok\":true"));

    // SIGKILL leaves a stale socket file; a fresh daemon reclaims it.
    first.kill().unwrap();
    first.wait().unwrap();
    assert!(sock.exists(), "SIGKILL should leave the socket file behind");
    let mut third = spawn_on(&sock);
    wait_for(&sock);
    assert!(roundtrip(&sock, "{\"op\":\"ping\"}").contains("\"ok\":true"));
    assert!(roundtrip(&sock, "{\"op\":\"shutdown\"}").contains("\"ok\":true"));
    assert!(third.wait().unwrap().success());
    assert!(!sock.exists(), "socket removed on clean shutdown");

    // A non-socket file at the path is never deleted.
    std::fs::write(&sock, b"precious data").unwrap();
    let mut fourth = spawn_on(&sock);
    let status = fourth.wait().expect("fourth daemon exits");
    assert!(!status.success(), "must refuse to replace a regular file");
    assert_eq!(std::fs::read(&sock).unwrap(), b"precious data");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_survive_daemon_restarts() {
    let dir = std::env::temp_dir().join(format!("vsfs_snap_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap_arg = dir.to_str().unwrap().to_string();

    let mut d = Daemon::spawn(&["--snapshot-dir", &snap_arg]);
    let resp = d.request(&format!("{{\"op\":\"load\",\"id\":\"p\",\"source\":{}}}", quote(PROG)));
    assert!(resp.contains("\"restored\":false"), "{resp}");
    let fp0 = field(&resp, "fingerprint").to_string();
    d.shutdown();

    // A restarted daemon restores the program before serving.
    let mut d = Daemon::spawn(&["--snapshot-dir", &snap_arg]);
    let resp = d.request("{\"op\":\"stats\",\"id\":\"p\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");
    assert!(resp.contains("\"warm\":true"), "restore must re-arm incrementality: {resp}");
    // And the restored state serves real queries + incremental edits.
    let resp = d.request("{\"op\":\"pts\",\"id\":\"p\",\"func\":\"main\",\"value\":\"%b\"}");
    assert!(resp.contains("\"objects\":[\"H\"]"), "{resp}");
    let resp = d.request("{\"op\":\"edit\",\"id\":\"p\",\"delta\":[]}");
    assert!(resp.contains("\"incremental\":true"), "{resp}");
    assert_eq!(field(&resp, "fingerprint"), fp0, "{resp}");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! `vsfs` — whole-program pointer-analysis driver, the analogue of SVF's
//! `wpa` tool.
//!
//! ```text
//! vsfs [OPTIONS] <program.vir | --corpus NAME | --workload NAME>
//! vsfs serve [--socket PATH] [--corpus DIR] [--solver NAME] [--order ORDER]
//!            [--jobs N] [--snapshot-dir DIR] [--workers N] [--queue N]
//!            [--deadline SECS] [--max-request-bytes N]
//!
//! `serve` starts the long-running incremental analysis server (see
//! `vsfs-server`): programs stay resident, `edit` requests re-solve
//! only the invalidated SVFG region, and every response carries a
//! deterministic result fingerprint. Panicking requests quarantine only
//! their workspace, `--snapshot-dir` persists and restores solved warm
//! state across restarts, and socket serving is concurrent behind a
//! bounded admission queue that sheds overload with typed errors.
//!
//! Analyses:
//!   --solver NAME      which analysis to run: `ander` (Andersen's
//!                      flow-insensitive baseline only), `dense`
//!                      (textbook IN/OUT iteration over the ICFG),
//!                      `sfs` (staged flow-sensitive analysis),
//!                      `vsfs` (versioned SFS, the default),
//!                      `cfgfree` (constraint-ordering flow
//!                      sensitivity; builds no memory SSA or SVFG), or
//!                      `unify` (equality-based unification — the
//!                      coarsest, fastest tier; builds no memory SSA
//!                      or SVFG)
//!   --pre unify|none   run the unification pre-analysis first and seed
//!                      the parallel phases with its disjoint alias
//!                      regions (Andersen wave sharding; VSFS
//!                      object-partitioned versioning). Results are
//!                      bit-identical with and without the seed.
//!   --ander            deprecated alias for `--solver ander`
//!   --fspta            alias for `--solver sfs`
//!   --vfspta           alias for `--solver vsfs`
//!
//! Input:
//!   <file.vir>         a textual IR file
//!   --corpus NAME      a built-in corpus program (see --list)
//!   --workload NAME    a generated suite benchmark (du, ninja, ...)
//!
//! Execution:
//!   --jobs N           worker threads for the parallel solver phases
//!                      (default 1 = sequential; 0 = all cores; results
//!                      are identical for every N)
//!   --order ORDER      worklist scheduling for the flow-sensitive
//!                      fixpoints: `topo` (SCC-condensation topological
//!                      priority, the default) or `fifo`; the final
//!                      result is bit-identical either way, only the
//!                      visit counts change. Rejected with the `ander`
//!                      and `dense` solvers, whose worklists are not
//!                      order-switchable.
//!   --scc-memo MODE    region-level operation memoization in the
//!                      SFS/VSFS fixpoints: `on` (the default) skips a
//!                      node's transfer when its SVFG component's input
//!                      stamp and its operand sets are unchanged since
//!                      its last run; `off` disables the memo. Results
//!                      are bit-identical either way (`--stats` reports
//!                      the hit/skip counts).
//!
//! Budgets (any of these switches the run into governed mode):
//!   --time-budget SECS wall-clock deadline shared by every stage
//!   --step-budget N    max solver steps for the flow-sensitive stage
//!   --mem-budget MIB   peak live-heap cap, polled at checkpoints
//!   --inject-fault K:S inject a seeded fault (K = panic|deadline|mem-cap,
//!                      S = decimal seed) into the flow-sensitive stage
//!
//! Output:
//!   --print-pts        print the points-to set of every named value
//!   --print-callgraph  print resolved (call site -> callee) edges
//!   --precision-report aggregate precision gained over Andersen's
//!   --dot-svfg FILE    write the SVFG in Graphviz format (with object
//!                      versions and checker source/sink highlights when
//!                      combined with --check under VSFS)
//!   --stats            print phase timings and solver statistics
//!   --list             list corpus programs and suite benchmarks
//!
//! Checking:
//!   --check            run the source-sink checkers (use-after-free,
//!                      double-free, leak, null-deref) under all four
//!                      precision tiers — classic Steensgaard, refined
//!                      unification, Andersen, flow-sensitive; print
//!                      the flow-sensitive diagnostics (sorted, stable)
//!                      followed by `check-summary:` lines with the
//!                      per-tier counts and the false positives
//!                      flow-sensitivity removed
//!   --check-json FILE  also write the machine-readable comparison
//!                      report (implies --check)
//! ```
//!
//! # Exit codes and degradation
//!
//! The governed run walks a four-rung soundness ladder; every rung is a
//! sound over-approximation of the one below it.
//!
//! * `0` — analysis ran to completion (rung 1, flow-sensitive).
//! * `2` — a budget tripped (or an injected fault fired) but a *sound*
//!   coarser answer exists. A trip during the flow-sensitive stage falls
//!   back to the auxiliary Andersen result (rung 2); a trip during the
//!   auxiliary (Andersen) stage itself — whose partial result would be
//!   unsound — falls back to the unification tier (rung 3), which is
//!   re-run ungoverned at a small fraction of the Andersen cost. Either
//!   way a one-line JSON record on stdout names the degraded stage and
//!   reason.
//! * `1` — hard error (rung 4): bad arguments or unparsable input.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use vsfs_adt::govern::{Budget, CancelToken, Completion, DegradeReason, Governor};
use vsfs_adt::mem::CountingAlloc;
use vsfs_core::{FlowSensitiveResult, GovernedAnalysis, SolveOrder, SolverKind};
use vsfs_ir::Program;
use vsfs_testkit::FaultPlan;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// What `--solver` selects. `ander` stops after the auxiliary stage and
/// is therefore not a [`SolverKind`] (those all produce a flow-sensitive
/// result); every other name maps straight onto the core solver family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Analysis {
    Andersen,
    Flow(SolverKind),
}

#[derive(Debug)]
struct Options {
    analysis: Analysis,
    /// `--pre unify`: seed the sharded phases with unification alias
    /// regions.
    pre_unify: bool,
    input: Input,
    print_pts: bool,
    print_callgraph: bool,
    precision_report: bool,
    dot_svfg: Option<String>,
    stats: bool,
    check: bool,
    check_json: Option<String>,
    jobs: usize,
    /// `Some` only when `--order` was given explicitly.
    order: Option<SolveOrder>,
    /// `--scc-memo`: region-level operation memoization in the SFS/VSFS
    /// fixpoints (default on; results are bit-identical either way).
    scc_memo: bool,
    time_budget: Option<f64>,
    step_budget: Option<u64>,
    mem_budget_mib: Option<usize>,
    inject_fault: Option<FaultPlan>,
}

impl Options {
    fn order(&self) -> SolveOrder {
        self.order.unwrap_or_default()
    }

    /// The full sparse-fixpoint configuration: worklist order plus the
    /// region memo switch.
    fn config(&self) -> vsfs_core::SolveConfig {
        vsfs_core::SolveConfig { order: self.order(), region_memo: self.scc_memo }
    }

    fn governed(&self) -> bool {
        self.time_budget.is_some()
            || self.step_budget.is_some()
            || self.mem_budget_mib.is_some()
            || self.inject_fault.is_some()
    }
}

#[derive(Debug)]
enum Input {
    File(String),
    Corpus(String),
    Workload(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: vsfs [--solver ander|dense|sfs|vsfs|cfgfree|unify] [--pre unify|none] \
         [--jobs N] [--order fifo|topo] [--scc-memo on|off] \
         [--time-budget SECS] [--step-budget N] [--mem-budget MIB] [--inject-fault KIND:SEED] \
         [--print-pts] [--print-callgraph] [--precision-report] [--dot-svfg FILE] \
         [--check] [--check-json FILE] [--stats] \
         (<file.vir> | --corpus NAME | --workload NAME | --list)"
    );
    std::process::exit(1);
}

/// Parses the value of `--flag`, exiting with a typed error (code 1) on a
/// missing or malformed value.
fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value `{v}` for {flag}");
            std::process::exit(1);
        }),
        None => {
            eprintln!("error: {flag} needs a value");
            std::process::exit(1);
        }
    }
}

/// Parses a named-choice flag (`--solver`, `--order`, `--pre`, in both
/// the driver and `serve`): one place constructs the typed unknown-name
/// error, so every such flag reports a missing value, the offending
/// name, and the accepted names the same way, exiting with code 1.
fn name_value<T>(
    flag: &str,
    value: Option<String>,
    expected: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> T {
    let name: String = flag_value(flag, value);
    parse(&name).unwrap_or_else(|| {
        eprintln!("error: invalid value `{name}` for {flag} (expected {expected})");
        std::process::exit(1);
    })
}

fn parse_args() -> Options {
    let mut analysis = Analysis::Flow(SolverKind::default());
    let mut pre_unify = false;
    let mut input = None;
    let mut print_pts = false;
    let mut print_callgraph = false;
    let mut precision_report = false;
    let mut dot_svfg = None;
    let mut stats = false;
    let mut check = false;
    let mut check_json = None;
    let mut jobs = 1usize;
    let mut order = None;
    let mut scc_memo = true;
    let mut time_budget = None;
    let mut step_budget = None;
    let mut mem_budget_mib = None;
    let mut inject_fault = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => jobs = flag_value("--jobs", args.next()),
            "--order" => {
                order =
                    Some(name_value("--order", args.next(), "`fifo` or `topo`", SolveOrder::parse));
            }
            "--scc-memo" => {
                scc_memo =
                    name_value("--scc-memo", args.next(), "`on` or `off`", |name| match name {
                        "on" => Some(true),
                        "off" => Some(false),
                        _ => None,
                    });
            }
            "--time-budget" => {
                let secs: f64 = flag_value("--time-budget", args.next());
                if !secs.is_finite() || secs < 0.0 {
                    eprintln!("error: invalid value `{secs}` for --time-budget");
                    std::process::exit(1);
                }
                time_budget = Some(secs);
            }
            "--step-budget" => step_budget = Some(flag_value("--step-budget", args.next())),
            "--mem-budget" => mem_budget_mib = Some(flag_value("--mem-budget", args.next())),
            "--inject-fault" => {
                let desc: String = flag_value("--inject-fault", args.next());
                match FaultPlan::parse(&desc) {
                    Ok(plan) => inject_fault = Some(plan),
                    Err(e) => {
                        eprintln!("error: invalid --inject-fault: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--solver" => {
                analysis = name_value(
                    "--solver",
                    args.next(),
                    "`ander`, `dense`, `sfs`, `vsfs`, `cfgfree`, or `unify`",
                    |name| match name {
                        "ander" => Some(Analysis::Andersen),
                        _ => SolverKind::parse(name).map(Analysis::Flow),
                    },
                );
            }
            "--pre" => {
                pre_unify =
                    name_value("--pre", args.next(), "`unify` or `none`", |name| match name {
                        "unify" => Some(true),
                        "none" => Some(false),
                        _ => None,
                    });
            }
            "--ander" => {
                eprintln!("warning: --ander is deprecated; use `--solver ander`");
                analysis = Analysis::Andersen;
            }
            "--fspta" => analysis = Analysis::Flow(SolverKind::Sfs),
            "--vfspta" => analysis = Analysis::Flow(SolverKind::Vsfs),
            "--print-pts" => print_pts = true,
            "--print-callgraph" => print_callgraph = true,
            "--precision-report" => precision_report = true,
            "--stats" => stats = true,
            "--check" => check = true,
            "--check-json" => {
                check = true;
                check_json = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--dot-svfg" => dot_svfg = Some(args.next().unwrap_or_else(|| usage())),
            "--corpus" => input = Some(Input::Corpus(args.next().unwrap_or_else(|| usage()))),
            "--workload" => input = Some(Input::Workload(args.next().unwrap_or_else(|| usage()))),
            "--list" => {
                println!("corpus programs:");
                for p in vsfs_workloads::corpus::corpus() {
                    println!("  {:<16} {}", p.name, p.about);
                }
                println!("suite benchmarks:");
                for b in vsfs_workloads::suite() {
                    println!("  {:<16} {}", b.name, b.description);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_string())),
            _ => usage(),
        }
    }
    Options {
        analysis,
        pre_unify,
        input: input.unwrap_or_else(|| usage()),
        print_pts,
        print_callgraph,
        precision_report,
        dot_svfg,
        stats,
        check,
        check_json,
        jobs,
        order,
        scc_memo,
        time_budget,
        step_budget,
        mem_budget_mib,
        inject_fault,
    }
}

fn load_program(input: &Input) -> Result<Program, Vec<String>> {
    let parse_all = |src: &str| {
        vsfs_ir::parse_program_all(src)
            .map_err(|diags| diags.into_iter().map(|d| d.to_string()).collect::<Vec<_>>())
    };
    let prog = match input {
        Input::File(path) => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| vec![format!("cannot read {path}: {e}")])?;
            parse_all(&src)?
        }
        Input::Corpus(name) => {
            let p = vsfs_workloads::corpus::corpus()
                .into_iter()
                .find(|p| p.name == *name)
                .ok_or_else(|| vec![format!("unknown corpus program `{name}` (try --list)")])?;
            parse_all(p.source)?
        }
        Input::Workload(name) => {
            let b = vsfs_workloads::suite::benchmark(name)
                .ok_or_else(|| vec![format!("unknown workload `{name}` (try --list)")])?;
            vsfs_workloads::generate(&b.config)
        }
    };
    vsfs_ir::verify::verify(&prog).map_err(|e| vec![e.to_string()])?;
    Ok(prog)
}

fn print_value_pts(prog: &Program, pts_of: impl Fn(vsfs_ir::ValueId) -> Vec<String>) {
    for (v, val) in prog.values.iter_enumerated() {
        let names = pts_of(v);
        if names.is_empty() {
            continue;
        }
        let scope = match val.func {
            Some(f) => format!("@{}", prog.functions[f].name),
            None => "<global>".to_string(),
        };
        println!("pt({}::%{}) = {{{}}}", scope, val.name, names.join(", "));
    }
}

fn obj_names(prog: &Program, s: &vsfs_adt::PointsToSet<vsfs_ir::ObjId>) -> Vec<String> {
    s.iter().map(|o| prog.objects[o].name.clone()).collect()
}

fn main() -> ExitCode {
    // `vsfs serve` is a subcommand with its own flags; intercept it
    // before the analysis-driver flag parsing.
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return run_serve(std::env::args().skip(2).collect());
    }
    let opts = parse_args();
    let prog = match load_program(&opts.input) {
        Ok(p) => p,
        Err(diags) => {
            for d in diags {
                eprintln!("error: {d}");
            }
            return ExitCode::from(1);
        }
    };
    if opts.check && matches!(opts.analysis, Analysis::Andersen | Analysis::Flow(SolverKind::Unify))
    {
        eprintln!(
            "error: --check needs a flow-sensitive analysis (--solver dense|sfs|vsfs|cfgfree) \
             to compare against; the coarser tiers run as baselines automatically"
        );
        return ExitCode::from(1);
    }
    if opts.order.is_some() && opts.analysis == Analysis::Andersen {
        eprintln!(
            "error: --order schedules the flow-sensitive fixpoints \
             (--solver dense|sfs|vsfs|cfgfree); Andersen's solver is not order-switchable"
        );
        return ExitCode::from(1);
    }
    if opts.order.is_some() && opts.analysis == Analysis::Flow(SolverKind::Dense) {
        eprintln!(
            "error: --order schedules the sparse fixpoints (--solver sfs|vsfs|cfgfree); \
             the dense solver's FIFO worklist is not order-switchable"
        );
        return ExitCode::from(1);
    }
    if opts.order.is_some() && opts.analysis == Analysis::Flow(SolverKind::Unify) {
        eprintln!(
            "error: --order schedules the sparse fixpoints (--solver sfs|vsfs|cfgfree); \
             the unification solver's worklist is not order-switchable"
        );
        return ExitCode::from(1);
    }
    if opts.pre_unify && opts.governed() {
        eprintln!(
            "error: --pre unify seeds the ungoverned sharded phases and is not \
             budget-aware; drop the budget flags or the pre-analysis"
        );
        return ExitCode::from(1);
    }
    if opts.governed() {
        run_governed(&opts, &prog)
    } else {
        run_plain(&opts, &prog)
    }
}

/// `vsfs serve [--socket PATH] [--corpus DIR] [--solver NAME]
/// [--order ORDER] [--jobs N] [--snapshot-dir DIR] [--workers N]
/// [--queue N] [--deadline SECS] [--max-request-bytes N]` — the
/// long-running incremental analysis server (line-delimited JSON on
/// stdin/stdout, or on a Unix socket with `--socket`). `--corpus DIR`
/// preloads every `*.vir` file in `DIR` as a resident program keyed by
/// its file stem. `--solver NAME` sets the default resident solver
/// (dense|sfs|vsfs|cfgfree; per-request `solver` fields override it).
/// `--snapshot-dir DIR` persists every completed solve to a checksummed
/// warm-state snapshot and restores all of them at startup instead of
/// cold-solving. See `vsfs-server` for the protocol and robustness
/// model.
fn run_serve(args: Vec<String>) -> ExitCode {
    let mut socket: Option<std::path::PathBuf> = None;
    let mut corpus: Option<std::path::PathBuf> = None;
    let mut config = vsfs_server::ServerConfig::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(flag_value("--socket", it.next())),
            "--corpus" => corpus = Some(flag_value("--corpus", it.next())),
            "--jobs" => config.opts.jobs = flag_value("--jobs", it.next()),
            "--snapshot-dir" => config.snapshot_dir = Some(flag_value("--snapshot-dir", it.next())),
            "--workers" => config.workers = flag_value("--workers", it.next()),
            "--queue" => config.queue_depth = flag_value("--queue", it.next()),
            "--deadline" => config.default_time_budget = Some(flag_value("--deadline", it.next())),
            "--max-request-bytes" => {
                config.max_request_bytes = flag_value("--max-request-bytes", it.next())
            }
            "--order" => {
                config.opts.order =
                    name_value("--order", it.next(), "`fifo` or `topo`", SolveOrder::parse);
            }
            "--solver" => {
                config.opts.solver = name_value(
                    "--solver",
                    it.next(),
                    "`dense`, `sfs`, `vsfs`, `cfgfree`, or `unify`",
                    SolverKind::parse,
                );
            }
            other => {
                eprintln!("error: unknown serve flag '{other}'");
                return ExitCode::from(1);
            }
        }
    }
    let mut server = vsfs_server::Server::with_config(config);
    for line in server.restore_snapshots() {
        eprintln!("snapshot {line}");
    }
    if let Some(dir) = corpus {
        let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(&dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "vir"))
                .collect(),
            Err(e) => {
                eprintln!("error: cannot read corpus dir {}: {e}", dir.display());
                return ExitCode::from(1);
            }
        };
        entries.sort();
        for path in entries {
            let id = path.file_stem().unwrap_or_default().to_string_lossy().to_string();
            let source = match std::fs::read_to_string(&path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    return ExitCode::from(1);
                }
            };
            match server.load_source(&id, &source) {
                Ok(report) => eprintln!(
                    "loaded {id}: {} nodes, fingerprint {:016x}{}",
                    report.total_nodes,
                    report.fingerprint,
                    if report.restored { " (snapshot restore)" } else { "" }
                ),
                Err(e) => {
                    eprintln!("error: corpus program {id}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    let served = match socket {
        Some(path) => {
            eprintln!("serving on {}", path.display());
            server.run_unix(&path)
        }
        None => server.run_stdio(),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve I/O failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// A short name for the analysed program, used in the JSON check report.
fn program_name(input: &Input) -> String {
    match input {
        Input::File(p) => {
            std::path::Path::new(p).file_stem().and_then(|s| s.to_str()).unwrap_or(p).to_string()
        }
        Input::Corpus(n) | Input::Workload(n) => n.clone(),
    }
}

/// Runs every checker under all four precision tiers — the two
/// unification tiers are cheap enough to always compute — prints the
/// flow-sensitive diagnostics and the `check-summary:` comparison, and
/// writes the JSON report when requested. In a governed run that
/// degraded, `result` is the Andersen fallback, so the "flow-sensitive"
/// findings soundly coincide with the Andersen ones.
fn run_check(
    opts: &Options,
    prog: &Program,
    aux: &vsfs_andersen::AndersenResult,
    svfg: &vsfs_svfg::Svfg,
    result: &FlowSensitiveResult,
) -> Result<Vec<vsfs_checkers::Finding>, ExitCode> {
    use vsfs_checkers::{run_checkers, AndersenView, CheckReport, FlowView, UnifyView};
    let steens_result =
        vsfs_andersen::analyze_unify_with_config(prog, vsfs_andersen::UnifyConfig::steensgaard());
    let unify_result = vsfs_andersen::analyze_unify(prog);
    let steensgaard = run_checkers(prog, svfg, &UnifyView(&steens_result));
    let unify = run_checkers(prog, svfg, &UnifyView(&unify_result));
    let andersen = run_checkers(prog, svfg, &AndersenView(aux));
    let flow = run_checkers(prog, svfg, &FlowView(result));
    let report = CheckReport::with_tiers(prog, steensgaard, unify, andersen, flow);
    for line in &report.flow_lines {
        println!("{line}");
    }
    for line in report.summary_lines() {
        println!("check-summary: {line}");
    }
    if let Some(path) = &opts.check_json {
        let json = report.to_json(&program_name(&opts.input));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return Err(ExitCode::from(1));
        }
    }
    Ok(report.flow_findings)
}

/// Dot annotations for a `--check --dot-svfg` run: under VSFS every
/// node's consumed/yielded object versions become extra label lines, and
/// the flow-sensitive findings' free sites (sources) and flagged
/// accesses (sinks) are highlighted. When a node is both — a loop
/// self-double-free — the sink colour wins.
fn check_annotations(
    opts: &Options,
    prog: &Program,
    mssa: &vsfs_mssa::MemorySsa,
    svfg: &vsfs_svfg::Svfg,
    findings: &[vsfs_checkers::Finding],
) -> vsfs_svfg::DotAnnotations {
    let mut ann = vsfs_svfg::DotAnnotations::default();
    if opts.analysis == Analysis::Flow(SolverKind::Vsfs) {
        let tables = vsfs_core::VersionTables::build(prog, mssa, svfg);
        for n in svfg.node_ids() {
            let fmt = |entries: &[(vsfs_ir::ObjId, u32)], verb: &str| {
                if entries.is_empty() {
                    return None;
                }
                let list: Vec<String> = entries
                    .iter()
                    .map(|&(o, v)| format!("{}@v{}", prog.objects[o].name, v))
                    .collect();
                Some(format!("{verb} {}", list.join(", ")))
            };
            let mut lines = Vec::new();
            lines.extend(fmt(tables.consume_entries(n), "consume"));
            lines.extend(fmt(tables.yield_entries(n), "yield"));
            if !lines.is_empty() {
                ann.extra_lines.insert(n, lines);
            }
        }
    }
    for f in findings {
        if let Some(src) = f.src {
            ann.roles.insert(svfg.inst_node(src), vsfs_svfg::DotRole::Source);
        }
    }
    for f in findings {
        ann.roles.insert(svfg.inst_node(f.inst), vsfs_svfg::DotRole::Sink);
    }
    ann
}

/// The `--stats` line for the `--pre unify` pre-analysis.
fn print_pre_stats(unify: &vsfs_andersen::UnifyResult, regions: &vsfs_andersen::AliasRegions) {
    println!(
        "pre-analysis:      {} ({:.3}s, {} classes, {} alias regions)",
        unify.config.tier_name(),
        unify.stats.seconds,
        unify.stats.classes,
        regions.region_count
    );
}

fn run_plain(opts: &Options, prog: &Program) -> ExitCode {
    // `--pre unify`: the unification pre-analysis runs first and its
    // provably-disjoint alias regions seed every sharded phase below.
    // The seed is a pure scheduling hint — results are bit-identical.
    let pre = opts.pre_unify.then(|| {
        let unify = vsfs_andersen::analyze_unify(prog);
        let regions = unify.alias_regions(prog.objects.len());
        (unify, regions)
    });
    let t0 = Instant::now();
    let config = vsfs_andersen::AndersenConfig::with_jobs(opts.jobs);
    let aux = match &pre {
        Some((_, regions)) => vsfs_andersen::analyze_with_config_regions(prog, config, regions),
        None => vsfs_andersen::analyze_with_config(prog, config),
    };
    let aux_time = t0.elapsed();

    if opts.analysis == Analysis::Andersen {
        if opts.print_pts {
            print_value_pts(prog, |v| obj_names(prog, aux.value_pts(v)));
        }
        if opts.print_callgraph {
            print_callgraph_edges(prog, &aux.callgraph.edges().collect::<Vec<_>>());
        }
        if opts.stats {
            if let Some((unify, regions)) = &pre {
                print_pre_stats(unify, regions);
            }
            println!("andersen: {:.3}s, {:?}", aux_time.as_secs_f64(), aux.stats);
            println!("peak heap: {:.2} MiB", vsfs_adt::mem::peak_bytes() as f64 / (1 << 20) as f64);
        }
        return ExitCode::SUCCESS;
    }

    let Analysis::Flow(kind) = opts.analysis else { unreachable!("handled above") };

    // The staged solvers need the memory-SSA/SVFG pipeline; the
    // cold-only ones (dense, cfgfree) build it on demand only when the
    // checkers or the dot export ask for the graph.
    let t1 = Instant::now();
    let staged = build_staged(opts, prog, &aux, kind);
    let build_time = t1.elapsed();

    // With --check the dot export waits for the solve so it can carry
    // version labels and finding highlights; without it, write it now so
    // the graph is available even if the solve is the slow part.
    if !opts.check {
        if let Some((_, svfg)) = &staged {
            if let Some(code) = write_dot(opts, prog, svfg, &vsfs_svfg::DotAnnotations::default()) {
                return code;
            }
        }
    }

    let result: FlowSensitiveResult = match kind {
        SolverKind::Sfs => {
            let (mssa, svfg) = staged.as_ref().expect("sfs is a staged solver");
            vsfs_core::run_sfs_configured(prog, &aux, mssa, svfg, opts.config())
        }
        SolverKind::Vsfs => {
            let (mssa, svfg) = staged.as_ref().expect("vsfs is a staged solver");
            match &pre {
                Some((_, regions)) => {
                    let tables = vsfs_core::VersionTables::build_with_jobs_regions(
                        prog,
                        mssa,
                        svfg,
                        opts.jobs,
                        Some(&regions.region_of_object),
                    );
                    vsfs_core::run_vsfs_with_tables_configured(
                        prog,
                        &aux,
                        mssa,
                        svfg,
                        tables,
                        opts.config(),
                    )
                }
                None => vsfs_core::run_vsfs_jobs_configured(
                    prog,
                    &aux,
                    mssa,
                    svfg,
                    opts.jobs,
                    opts.config(),
                ),
            }
        }
        SolverKind::Dense => vsfs_core::run_dense(prog, &aux),
        SolverKind::CfgFree => vsfs_core::run_cfgfree_ordered(prog, &aux, opts.order()),
        SolverKind::Unify => match &pre {
            // `--pre unify --solver unify`: the pre-analysis result IS
            // the requested tier.
            Some((unify, _)) => FlowSensitiveResult::from_unify(prog, unify),
            None => FlowSensitiveResult::from_unify(prog, &vsfs_andersen::analyze_unify(prog)),
        },
    };

    report_result(opts, prog, &aux, &result);
    if opts.check {
        let (mssa, svfg) = staged.as_ref().expect("--check builds the staged graphs");
        let findings = match run_check(opts, prog, &aux, svfg, &result) {
            Ok(findings) => findings,
            Err(code) => return code,
        };
        let ann = check_annotations(opts, prog, mssa, svfg, &findings);
        if let Some(code) = write_dot(opts, prog, svfg, &ann) {
            return code;
        }
    }
    if opts.stats {
        let s = &result.stats;
        println!("solver:            {}", kind.name());
        println!("jobs:              {}", opts.jobs);
        if kind != SolverKind::Dense && kind != SolverKind::Unify {
            println!("order:             {}", opts.order().name());
        }
        if let Some((unify, regions)) = &pre {
            print_pre_stats(unify, regions);
        }
        println!(
            "andersen:          {:.3}s{}",
            aux_time.as_secs_f64(),
            if aux.stats.region_seeded { " (region-seeded waves)" } else { "" }
        );
        if staged.is_some() {
            println!("mssa + svfg:       {:.3}s", build_time.as_secs_f64());
        }
        if kind == SolverKind::Vsfs {
            println!(
                "versioning:        {:.3}s ({} prelabels, {} versions, {} reliance edges)",
                s.versioning_seconds, s.prelabels, s.versions, s.reliance_edges
            );
        }
        println!("main phase:        {:.3}s", s.solve_seconds);
        println!("node pops:         {}", s.node_pops);
        if kind == SolverKind::Vsfs {
            println!("slot pops:         {}", s.slot_pops);
        }
        println!("pushes suppressed: {}", s.pushes_suppressed);
        println!("unions attempted:  {}", s.object_propagations);
        println!("unions avoided:    {}", s.unions_avoided);
        println!(
            "delta bytes:       {} shipped vs {} full ({:.1}% saved)",
            s.delta_bytes,
            s.full_bytes,
            if s.full_bytes > 0 {
                100.0 * (1.0 - s.delta_bytes as f64 / s.full_bytes as f64)
            } else {
                0.0
            }
        );
        println!("stored object sets:{}", s.stored_object_sets);
        let st = &s.store;
        println!(
            "pts store:         {} unique sets, {:.2} MiB ({:.2} MiB flat-equivalent)",
            st.unique_sets,
            st.unique_set_bytes as f64 / (1 << 20) as f64,
            st.flat_equiv_bytes as f64 / (1 << 20) as f64
        );
        println!(
            "chunk store:       {} unique chunks, {:.2} MiB, {} union hits, {} misses",
            st.unique_chunks,
            st.chunk_bytes as f64 / (1 << 20) as f64,
            st.chunk_union_hits,
            st.chunk_union_misses
        );
        println!(
            "union memo:        {} hits, {} misses, {} shortcuts ({:.1}% hit rate)",
            st.union_hits,
            st.union_misses,
            st.union_shortcuts,
            100.0 * st.union_hit_rate()
        );
        println!("insert memo:       {} hits, {} misses", st.insert_hits, st.insert_misses);
        println!("would-change:      {} fast, {} slow", st.would_change_fast, st.would_change_slow);
        println!("strong updates:    {}", s.strong_updates);
        println!("calls activated:   {}", s.calls_activated);
        if kind == SolverKind::Sfs || kind == SolverKind::Vsfs {
            println!(
                "scc memo:          {} fingerprint hits, {} solves skipped{}",
                s.scc_fingerprint_hits,
                s.scc_solves_skipped,
                if opts.scc_memo { "" } else { " (disabled)" }
            );
        }
        if let Some((_, svfg)) = &staged {
            println!(
                "svfg: {} nodes, {} direct edges, {} indirect edges",
                svfg.node_count(),
                svfg.direct_edge_count(),
                svfg.indirect_edge_count()
            );
        }
        println!("peak heap: {:.2} MiB", vsfs_adt::mem::peak_bytes() as f64 / (1 << 20) as f64);
    }
    ExitCode::SUCCESS
}

/// Builds the memory-SSA and SVFG stages when the solver (or an output
/// flag) needs them. For cold-only solvers the graphs carry no solver
/// state — they exist purely so the checkers can walk witness paths and
/// the dot export has a graph to draw, mirroring the server's on-demand
/// staging for `check` requests.
fn build_staged(
    opts: &Options,
    prog: &Program,
    aux: &vsfs_andersen::AndersenResult,
    kind: SolverKind,
) -> Option<(vsfs_mssa::MemorySsa, vsfs_svfg::Svfg)> {
    let needed = kind.caps().needs_svfg || opts.check || opts.dot_svfg.is_some();
    needed.then(|| {
        let mssa = vsfs_mssa::MemorySsa::build(prog, aux);
        let svfg = vsfs_svfg::Svfg::build(prog, aux, &mssa);
        (mssa, svfg)
    })
}

/// Rung 3 of the degradation ladder: the auxiliary (Andersen) stage
/// tripped its budget, so neither a flow-sensitive nor a sound Andersen
/// result exists. Re-solves with the ungoverned unification tier and
/// reports its (coarser, sound) answer with exit code 2. The checkers
/// and the dot export need an SVFG, which only a *complete* Andersen
/// result can build soundly, so those outputs are skipped with a
/// warning rather than computed from the partial auxiliary state.
fn run_unify_rung(opts: &Options, prog: &Program, reason: &DegradeReason) -> ExitCode {
    let unify = vsfs_andersen::analyze_unify(prog);
    if opts.print_pts {
        print_value_pts(prog, |v| obj_names(prog, unify.value_pts(v)));
    }
    if opts.print_callgraph {
        let mut edges: Vec<_> = unify.callgraph.edges().collect();
        edges.sort_unstable();
        print_callgraph_edges(prog, &edges);
    }
    if opts.check {
        eprintln!(
            "warning: --check skipped: the auxiliary stage degraded, so no sound SVFG exists"
        );
    }
    if opts.dot_svfg.is_some() {
        eprintln!(
            "warning: --dot-svfg skipped: the auxiliary stage degraded, so no sound SVFG exists"
        );
    }
    if opts.stats {
        println!("unify fallback:    {:.3}s, {} classes", unify.stats.seconds, unify.stats.classes);
    }
    println!(
        "{{\"completion\":\"degraded\",\"mode\":\"unification-fallback\",\"stage\":\"andersen\",\"reason\":\"{}\"}}",
        reason.code()
    );
    ExitCode::from(2)
}

/// Runs under resource governance: budgets, cooperative cancellation and
/// (optionally) fault injection. Prints a one-line JSON completion record
/// and maps the outcome onto the exit-code protocol (0 complete /
/// 2 degraded-with-fallback / 1 error).
fn run_governed(opts: &Options, prog: &Program) -> ExitCode {
    let cancel = match opts.time_budget {
        Some(secs) => CancelToken::with_deadline(Instant::now() + Duration::from_secs_f64(secs)),
        None => CancelToken::new(),
    };
    let mem_bytes = opts.mem_budget_mib.map(|mib| mib << 20);

    // Auxiliary stage: only the deadline and the memory cap apply — step
    // budgets are not schedule-portable across Andersen's wave/sequential
    // modes, and a partially solved Andersen is an under-approximation
    // (unsound), so there is no fallback if this stage degrades.
    let mut aux_budget = Budget::unlimited();
    if let Some(bytes) = mem_bytes {
        aux_budget = aux_budget.with_mem_bytes(bytes);
    }
    let aux_gov = Governor::with_cancel(aux_budget, cancel.clone());
    let aux_out = vsfs_andersen::analyze_governed(
        prog,
        vsfs_andersen::AndersenConfig::with_jobs(opts.jobs),
        &aux_gov,
    );
    if let Completion::Degraded(reason) = &aux_out.completion {
        // Rung 3 of the soundness ladder. A partial Andersen fixpoint is
        // an under-approximation — unsound to report — but the
        // unification tier's least solution over-approximates every
        // finer tier, so the run degrades to it instead of erroring.
        // The fallback runs ungoverned: the budget already tripped, a
        // partial unification result would be just as unsound, and the
        // unification solve costs a small fraction of the Andersen stage
        // that exhausted it.
        return run_unify_rung(opts, prog, reason);
    }
    let aux = aux_out.result;

    if opts.analysis == Analysis::Andersen {
        if opts.print_pts {
            print_value_pts(prog, |v| obj_names(prog, aux.value_pts(v)));
        }
        if opts.print_callgraph {
            print_callgraph_edges(prog, &aux.callgraph.edges().collect::<Vec<_>>());
        }
        println!("{{\"completion\":\"complete\",\"mode\":\"flow-insensitive\"}}");
        return ExitCode::SUCCESS;
    }

    let Analysis::Flow(kind) = opts.analysis else { unreachable!("handled above") };
    let staged = build_staged(opts, prog, &aux, kind);
    if !opts.check {
        if let Some((_, svfg)) = &staged {
            if let Some(code) = write_dot(opts, prog, svfg, &vsfs_svfg::DotAnnotations::default()) {
                return code;
            }
        }
    }

    // Flow-sensitive stage: full budget plus any injected fault. If it
    // degrades, the Andersen result (a sound over-approximation of any
    // flow-sensitive result) is reported instead.
    let mut fs_budget = Budget::unlimited();
    if let Some(steps) = opts.step_budget {
        fs_budget = fs_budget.with_steps(steps);
    }
    if let Some(bytes) = mem_bytes {
        fs_budget = fs_budget.with_mem_bytes(bytes);
    }
    let fs_gov = Governor::with_cancel(fs_budget, cancel.clone())
        .with_fault(opts.inject_fault.as_ref().and_then(FaultPlan::spec));

    let ga: GovernedAnalysis = match kind {
        SolverKind::Sfs => {
            let (mssa, svfg) = staged.as_ref().expect("sfs is a staged solver");
            vsfs_core::run_sfs_governed_configured(prog, &aux, mssa, svfg, &fs_gov, opts.config())
        }
        SolverKind::Vsfs => {
            let (mssa, svfg) = staged.as_ref().expect("vsfs is a staged solver");
            vsfs_core::run_vsfs_governed_configured(
                prog,
                &aux,
                mssa,
                svfg,
                opts.jobs,
                &fs_gov,
                opts.config(),
            )
        }
        SolverKind::Dense => vsfs_core::run_dense_governed(prog, &aux, &fs_gov),
        SolverKind::CfgFree => {
            vsfs_core::run_cfgfree_governed_ordered(prog, &aux, &fs_gov, opts.order())
        }
        SolverKind::Unify => {
            // A partial unification fixpoint is unsound, so a governed
            // unify run that trips cannot be served as-is. The complete
            // Andersen aux is already in hand and over-approximates
            // every finer answer, so it stands in — one rung *up* in
            // precision from what was asked for, and still sound.
            let out = vsfs_andersen::analyze_unify_governed(
                prog,
                vsfs_andersen::UnifyConfig::default(),
                &fs_gov,
            );
            match out.completion {
                Completion::Complete => {
                    GovernedAnalysis::complete(FlowSensitiveResult::from_unify(prog, &out.result))
                }
                Completion::Degraded(reason) => {
                    GovernedAnalysis::fallback(prog, &aux, "solve", reason)
                }
            }
        }
    };

    report_result(opts, prog, &aux, &ga.result);
    if opts.check {
        let (mssa, svfg) = staged.as_ref().expect("--check builds the staged graphs");
        let findings = match run_check(opts, prog, &aux, svfg, &ga.result) {
            Ok(findings) => findings,
            Err(code) => return code,
        };
        let ann = check_annotations(opts, prog, mssa, svfg, &findings);
        if let Some(code) = write_dot(opts, prog, svfg, &ann) {
            return code;
        }
    }
    match &ga.completion {
        Completion::Complete => {
            println!("{{\"completion\":\"complete\",\"mode\":\"{}\"}}", ga.mode);
            ExitCode::SUCCESS
        }
        Completion::Degraded(reason) => {
            println!(
                "{{\"completion\":\"degraded\",\"mode\":\"{}\",\"stage\":\"{}\",\"reason\":\"{}\"}}",
                ga.mode,
                ga.degraded_stage.unwrap_or("unknown"),
                reason.code()
            );
            ExitCode::from(2)
        }
    }
}

fn write_dot(
    opts: &Options,
    prog: &Program,
    svfg: &vsfs_svfg::Svfg,
    ann: &vsfs_svfg::DotAnnotations,
) -> Option<ExitCode> {
    let path = opts.dot_svfg.as_ref()?;
    if let Err(e) = std::fs::write(path, svfg.to_dot_annotated(prog, ann)) {
        eprintln!("error: cannot write {path}: {e}");
        return Some(ExitCode::from(1));
    }
    eprintln!("wrote {path}");
    None
}

fn report_result(
    opts: &Options,
    prog: &Program,
    aux: &vsfs_andersen::AndersenResult,
    result: &FlowSensitiveResult,
) {
    if opts.print_pts {
        print_value_pts(prog, |v| obj_names(prog, result.value_pts(v)));
    }
    if opts.print_callgraph {
        print_callgraph_edges(prog, &result.callgraph_edges);
    }
    if opts.precision_report {
        let r = vsfs_core::compare_precision(prog, aux, result);
        println!("precision vs Andersen:");
        println!("  values considered:          {}", r.values);
        println!("  values refined:             {}", r.refined_values);
        println!("  avg points-to size:         {:.2} -> {:.2}", r.aux_avg(), r.fs_avg());
        println!("  call edges:                 {} -> {}", r.aux_call_edges, r.fs_call_edges);
        println!("  proven-uninitialised loads: {}", r.proven_uninitialised_loads);
    }
}

fn print_callgraph_edges(prog: &Program, edges: &[(vsfs_ir::InstId, vsfs_ir::FuncId)]) {
    for (call, callee) in edges {
        println!("{} -> @{}", prog.inst_location(*call), prog.functions[*callee].name);
    }
}

//! `vsfs` — whole-program pointer-analysis driver, the analogue of SVF's
//! `wpa` tool.
//!
//! ```text
//! vsfs [OPTIONS] <program.vir | --corpus NAME | --workload NAME>
//!
//! Analyses:
//!   --ander            Andersen's flow-insensitive analysis only
//!   --fspta            staged flow-sensitive analysis (SFS baseline)
//!   --vfspta           versioned staged flow-sensitive analysis (default)
//!
//! Input:
//!   <file.vir>         a textual IR file
//!   --corpus NAME      a built-in corpus program (see --list)
//!   --workload NAME    a generated suite benchmark (du, ninja, ...)
//!
//! Execution:
//!   --jobs N           worker threads for the parallel solver phases
//!                      (default 1 = sequential; 0 = all cores; results
//!                      are identical for every N)
//!
//! Output:
//!   --print-pts        print the points-to set of every named value
//!   --print-callgraph  print resolved (call site -> callee) edges
//!   --precision-report aggregate precision gained over Andersen's
//!   --dot-svfg FILE    write the SVFG in Graphviz format
//!   --stats            print phase timings and solver statistics
//!   --list             list corpus programs and suite benchmarks
//! ```

use std::process::ExitCode;
use vsfs_adt::mem::CountingAlloc;
use vsfs_core::FlowSensitiveResult;
use vsfs_ir::Program;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Analysis {
    Andersen,
    Sfs,
    Vsfs,
}

#[derive(Debug)]
struct Options {
    analysis: Analysis,
    input: Input,
    print_pts: bool,
    print_callgraph: bool,
    precision_report: bool,
    dot_svfg: Option<String>,
    stats: bool,
    jobs: usize,
}

#[derive(Debug)]
enum Input {
    File(String),
    Corpus(String),
    Workload(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: vsfs [--ander|--fspta|--vfspta] [--jobs N] [--print-pts] \
         [--print-callgraph] [--precision-report] [--dot-svfg FILE] [--stats] \
         (<file.vir> | --corpus NAME | --workload NAME | --list)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut analysis = Analysis::Vsfs;
    let mut input = None;
    let mut print_pts = false;
    let mut print_callgraph = false;
    let mut precision_report = false;
    let mut dot_svfg = None;
    let mut stats = false;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ander" => analysis = Analysis::Andersen,
            "--fspta" => analysis = Analysis::Sfs,
            "--vfspta" => analysis = Analysis::Vsfs,
            "--print-pts" => print_pts = true,
            "--print-callgraph" => print_callgraph = true,
            "--precision-report" => precision_report = true,
            "--stats" => stats = true,
            "--dot-svfg" => dot_svfg = Some(args.next().unwrap_or_else(|| usage())),
            "--corpus" => input = Some(Input::Corpus(args.next().unwrap_or_else(|| usage()))),
            "--workload" => input = Some(Input::Workload(args.next().unwrap_or_else(|| usage()))),
            "--list" => {
                println!("corpus programs:");
                for p in vsfs_workloads::corpus::corpus() {
                    println!("  {:<16} {}", p.name, p.about);
                }
                println!("suite benchmarks:");
                for b in vsfs_workloads::suite() {
                    println!("  {:<16} {}", b.name, b.description);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_string())),
            _ => usage(),
        }
    }
    Options {
        analysis,
        input: input.unwrap_or_else(|| usage()),
        print_pts,
        print_callgraph,
        precision_report,
        dot_svfg,
        stats,
        jobs,
    }
}

fn load_program(input: &Input) -> Result<Program, String> {
    let prog = match input {
        Input::File(path) => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            vsfs_ir::parse_program(&src).map_err(|e| e.to_string())?
        }
        Input::Corpus(name) => {
            let p = vsfs_workloads::corpus::corpus()
                .into_iter()
                .find(|p| p.name == *name)
                .ok_or_else(|| format!("unknown corpus program `{name}` (try --list)"))?;
            vsfs_ir::parse_program(p.source).map_err(|e| e.to_string())?
        }
        Input::Workload(name) => {
            let b = vsfs_workloads::suite::benchmark(name)
                .ok_or_else(|| format!("unknown workload `{name}` (try --list)"))?;
            vsfs_workloads::generate(&b.config)
        }
    };
    vsfs_ir::verify::verify(&prog).map_err(|e| e.to_string())?;
    Ok(prog)
}

fn print_value_pts(prog: &Program, pts_of: impl Fn(vsfs_ir::ValueId) -> Vec<String>) {
    for (v, val) in prog.values.iter_enumerated() {
        let names = pts_of(v);
        if names.is_empty() {
            continue;
        }
        let scope = match val.func {
            Some(f) => format!("@{}", prog.functions[f].name),
            None => "<global>".to_string(),
        };
        println!("pt({}::%{}) = {{{}}}", scope, val.name, names.join(", "));
    }
}

fn obj_names(prog: &Program, s: &vsfs_adt::PointsToSet<vsfs_ir::ObjId>) -> Vec<String> {
    s.iter().map(|o| prog.objects[o].name.clone()).collect()
}

fn main() -> ExitCode {
    let opts = parse_args();
    let prog = match load_program(&opts.input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };

    let t0 = std::time::Instant::now();
    let aux = vsfs_andersen::analyze_with_config(
        &prog,
        vsfs_andersen::AndersenConfig::with_jobs(opts.jobs),
    );
    let aux_time = t0.elapsed();

    if opts.analysis == Analysis::Andersen {
        if opts.print_pts {
            print_value_pts(&prog, |v| obj_names(&prog, aux.value_pts(v)));
        }
        if opts.print_callgraph {
            print_callgraph_edges(&prog, &aux.callgraph.edges().collect::<Vec<_>>());
        }
        if opts.stats {
            println!("andersen: {:.3}s, {:?}", aux_time.as_secs_f64(), aux.stats);
            println!("peak heap: {:.2} MiB", vsfs_adt::mem::peak_bytes() as f64 / (1 << 20) as f64);
        }
        return ExitCode::SUCCESS;
    }

    let t1 = std::time::Instant::now();
    let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
    let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
    let build_time = t1.elapsed();

    if let Some(path) = &opts.dot_svfg {
        if let Err(e) = std::fs::write(path, svfg.to_dot(&prog)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote {path}");
    }

    let result: FlowSensitiveResult = match opts.analysis {
        Analysis::Sfs => vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg),
        Analysis::Vsfs => vsfs_core::run_vsfs_jobs(&prog, &aux, &mssa, &svfg, opts.jobs),
        Analysis::Andersen => unreachable!("handled above"),
    };

    if opts.print_pts {
        print_value_pts(&prog, |v| obj_names(&prog, result.value_pts(v)));
    }
    if opts.print_callgraph {
        print_callgraph_edges(&prog, &result.callgraph_edges);
    }
    if opts.precision_report {
        let r = vsfs_core::compare_precision(&prog, &aux, &result);
        println!("precision vs Andersen:");
        println!("  values considered:          {}", r.values);
        println!("  values refined:             {}", r.refined_values);
        println!("  avg points-to size:         {:.2} -> {:.2}", r.aux_avg(), r.fs_avg());
        println!("  call edges:                 {} -> {}", r.aux_call_edges, r.fs_call_edges);
        println!("  proven-uninitialised loads: {}", r.proven_uninitialised_loads);
    }
    if opts.stats {
        let s = &result.stats;
        println!("jobs:              {}", opts.jobs);
        println!("andersen:          {:.3}s", aux_time.as_secs_f64());
        println!("mssa + svfg:       {:.3}s", build_time.as_secs_f64());
        if opts.analysis == Analysis::Vsfs {
            println!("versioning:        {:.3}s ({} prelabels, {} versions, {} reliance edges)",
                s.versioning_seconds, s.prelabels, s.versions, s.reliance_edges);
        }
        println!("main phase:        {:.3}s", s.solve_seconds);
        println!("node pops:         {}", s.node_pops);
        println!("object unions:     {}", s.object_propagations);
        println!("stored object sets:{}", s.stored_object_sets);
        println!("strong updates:    {}", s.strong_updates);
        println!("calls activated:   {}", s.calls_activated);
        println!("svfg: {} nodes, {} direct edges, {} indirect edges",
            svfg.node_count(), svfg.direct_edge_count(), svfg.indirect_edge_count());
        println!("peak heap: {:.2} MiB", vsfs_adt::mem::peak_bytes() as f64 / (1 << 20) as f64);
    }
    ExitCode::SUCCESS
}

fn print_callgraph_edges(prog: &Program, edges: &[(vsfs_ir::InstId, vsfs_ir::FuncId)]) {
    for (call, callee) in edges {
        println!(
            "{} -> @{}",
            prog.inst_location(*call),
            prog.functions[*callee].name
        );
    }
}

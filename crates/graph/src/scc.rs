//! Strongly-connected components via iterative Tarjan.
//!
//! Component ids are assigned in reverse topological order of the
//! condensation: if component `a` has an edge to component `b` (`a != b`),
//! then `a`'s id is **greater** than `b`'s. Iterating components in id
//! order therefore visits callees/successors before callers/predecessors,
//! which is the order bottom-up interprocedural fixpoints want.

use crate::digraph::DiGraph;
use vsfs_adt::index::Idx;

/// The strongly-connected components of a [`DiGraph`].
#[derive(Debug, Clone)]
pub struct Sccs<I> {
    /// Component id of each node.
    component_of: Vec<u32>,
    /// Members of each component.
    members: Vec<Vec<I>>,
}

impl<I: Idx> Sccs<I> {
    /// Computes the SCCs of `graph` (all nodes, reachable or not).
    pub fn compute(graph: &DiGraph<I>) -> Self {
        TarjanState::run(graph)
    }

    /// The component id of `node`.
    pub fn component(&self, node: I) -> u32 {
        self.component_of[node.index()]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The member nodes of component `c`.
    pub fn members(&self, c: u32) -> &[I] {
        &self.members[c as usize]
    }

    /// Returns `true` if `node` is in a non-trivial cycle: its component
    /// has more than one member, or it has a self-loop in `graph`.
    pub fn in_cycle(&self, graph: &DiGraph<I>, node: I) -> bool {
        self.members(self.component(node)).len() > 1 || graph.has_edge(node, node)
    }

    /// Iterates component ids in reverse topological order of the
    /// condensation (successor components first).
    pub fn ids_topo_successors_first(&self) -> impl Iterator<Item = u32> + 'static {
        0..self.members.len() as u32
    }
}

struct TarjanState<'g, I> {
    graph: &'g DiGraph<I>,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<I>,
    next_index: u32,
    component_of: Vec<u32>,
    members: Vec<Vec<I>>,
}

const UNVISITED: u32 = u32::MAX;

impl<'g, I: Idx> TarjanState<'g, I> {
    fn run(graph: &'g DiGraph<I>) -> Sccs<I> {
        let n = graph.node_count();
        let mut st = TarjanState {
            graph,
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            component_of: vec![0; n],
            members: Vec::new(),
        };
        for v in graph.nodes() {
            if st.index[v.index()] == UNVISITED {
                st.strongconnect(v);
            }
        }
        Sccs { component_of: st.component_of, members: st.members }
    }

    /// Iterative version of Tarjan's `strongconnect` to avoid stack
    /// overflow on deep graphs (SVFGs can have very long chains).
    fn strongconnect(&mut self, root: I) {
        // Work stack of (node, next successor position).
        let mut work: Vec<(I, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            let vi = v.index();
            if *pos == 0 {
                self.index[vi] = self.next_index;
                self.lowlink[vi] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[vi] = true;
            }
            let succs = self.graph.successors(v);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                let wi = w.index();
                if self.index[wi] == UNVISITED {
                    work.push((w, 0));
                } else if self.on_stack[wi] {
                    self.lowlink[vi] = self.lowlink[vi].min(self.index[wi]);
                }
            } else {
                if self.lowlink[vi] == self.index[vi] {
                    let cid = self.members.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("tarjan stack underflow");
                        self.on_stack[w.index()] = false;
                        self.component_of[w.index()] = cid;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    self.members.push(comp);
                }
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    let pi = parent.index();
                    self.lowlink[pi] = self.lowlink[pi].min(self.lowlink[vi]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(N, "n");

    fn n(i: u32) -> N {
        N::new(i)
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.count(), 3);
        for v in g.nodes() {
            assert_eq!(sccs.members(sccs.component(v)), &[v]);
            assert!(!sccs.in_cycle(&g, v));
        }
        // Reverse topological: successors get smaller ids.
        assert!(sccs.component(n(2)) < sccs.component(n(1)));
        assert!(sccs.component(n(1)) < sccs.component(n(0)));
    }

    #[test]
    fn cycle_collapses() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut g: DiGraph<N> = DiGraph::with_nodes(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(1));
        g.add_edge(n(2), n(3));
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.count(), 3);
        assert_eq!(sccs.component(n(1)), sccs.component(n(2)));
        assert_ne!(sccs.component(n(0)), sccs.component(n(1)));
        assert!(sccs.in_cycle(&g, n(1)));
        assert!(sccs.in_cycle(&g, n(2)));
        assert!(!sccs.in_cycle(&g, n(0)));
        assert!(!sccs.in_cycle(&g, n(3)));
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(2);
        g.add_edge(n(0), n(0));
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.in_cycle(&g, n(0)));
        assert!(!sccs.in_cycle(&g, n(1)));
    }

    #[test]
    fn reverse_topo_order_of_condensation() {
        // Two cycles in sequence: {0,1} -> {2,3}
        let mut g: DiGraph<N> = DiGraph::with_nodes(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.add_edge(n(3), n(2));
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.component(n(2)) < sccs.component(n(0)));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let k = 200_000;
        let mut g: DiGraph<N> = DiGraph::with_nodes(k);
        for i in 0..k - 1 {
            g.add_edge(n(i as u32), n(i as u32 + 1));
        }
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.count(), k);
    }
}

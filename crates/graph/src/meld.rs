//! Meld labelling — the paper's prelabelling extension for directed graphs
//! (Section IV-B).
//!
//! A *meld labelling* extends a prelabelling of a directed graph by
//! repeatedly melding each node's label with the labels of its incoming
//! neighbours until a fixed point is reached (`[MELD]^N`, Fig. 3):
//!
//! ```text
//!        n' -> n
//! ─────────────────────
//!   κ_n = κ_{n'} ⊙ κ_n
//! ```
//!
//! The meld operator `⊙` must be commutative, associative, idempotent, and
//! have an identity element — exactly the laws of set union, which is what
//! object versioning uses (labels are sets of prelabels, represented as
//! [`SparseBitVector`]s).
//!
//! The result partitions nodes into equivalence classes by the set of
//! prelabels that transitively reach them; nodes unreachable from any
//! prelabelled node keep the identity label.

use crate::digraph::DiGraph;
use vsfs_adt::govern::{Completion, Governor, Outcome};
use vsfs_adt::index::Idx;
use vsfs_adt::{FifoWorklist, SparseBitVector};

/// A label domain with a meld operator.
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
///
/// * commutativity: `a ⊙ b == b ⊙ a`
/// * associativity: `a ⊙ (b ⊙ c) == (a ⊙ b) ⊙ c`
/// * idempotence: `a ⊙ a == a`
/// * identity: `a ⊙ identity() == a`
pub trait MeldLabel: Clone + PartialEq {
    /// The identity element `ε`.
    fn identity() -> Self;

    /// Melds `other` into `self`; returns `true` if `self` changed.
    fn meld_with(&mut self, other: &Self) -> bool;

    /// Returns `true` if this is the identity label.
    fn is_identity(&self) -> bool;
}

impl MeldLabel for SparseBitVector {
    fn identity() -> Self {
        SparseBitVector::new()
    }

    fn meld_with(&mut self, other: &Self) -> bool {
        self.union_with(other)
    }

    fn is_identity(&self) -> bool {
        self.is_empty()
    }
}

/// Runs meld labelling over `graph` starting from `prelabels`.
///
/// `frozen(n)` marks nodes whose label must not change (the versioning
/// application freezes δ-node consume labels, Section IV-C1); pass
/// `|_| false` for the plain algorithm of Section IV-B.
///
/// Complexity: `O(|E| · P)` time in the worst case, where `P` is the number
/// of non-identity prelabels, and `O(|N|)` label slots (Section IV-B1).
///
/// # Examples
///
/// ```
/// use vsfs_adt::{define_index, SparseBitVector};
/// use vsfs_graph::{meld_label, DiGraph};
///
/// define_index!(N, "n");
/// let mut g: DiGraph<N> = DiGraph::with_nodes(3);
/// g.add_edge(N::new(0), N::new(1));
/// g.add_edge(N::new(1), N::new(2));
/// let mut pre = vec![SparseBitVector::new(); 3];
/// pre[0].insert(7); // prelabel node 0 with {7}
/// let labels = meld_label(&g, pre, |_| false);
/// assert!(labels[2].contains(7)); // reached transitively
/// ```
pub fn meld_label<I: Idx, L: MeldLabel>(
    graph: &DiGraph<I>,
    prelabels: Vec<L>,
    frozen: impl Fn(I) -> bool,
) -> Vec<L> {
    meld_label_governed(graph, prelabels, frozen, None).result
}

/// [`meld_label`] with a cooperative checkpoint per worklist pop.
///
/// When a [`Governor`] is supplied, each pop accounts one step; once the
/// governor trips the loop stops and the (partial, under-melded) labels
/// come back tagged [`Completion::Degraded`]. Callers must not use a
/// degraded labelling for analysis — it exists so the enclosing phase
/// can stop promptly and fall back.
pub fn meld_label_governed<I: Idx, L: MeldLabel>(
    graph: &DiGraph<I>,
    prelabels: Vec<L>,
    frozen: impl Fn(I) -> bool,
    governor: Option<&Governor>,
) -> Outcome<Vec<L>> {
    assert_eq!(prelabels.len(), graph.node_count(), "one prelabel per node required");
    let mut labels = prelabels;
    let mut worklist: FifoWorklist<I> = FifoWorklist::new(graph.node_count());
    for v in graph.nodes() {
        if !labels[v.index()].is_identity() {
            worklist.push(v);
        }
    }
    let mut completion = Completion::Complete;
    while let Some(v) = worklist.pop() {
        if let Some(g) = governor {
            if let Err(reason) = g.check(1) {
                completion = Completion::Degraded(reason);
                break;
            }
        }
        for &s in graph.successors(v) {
            if s == v || frozen(s) {
                continue;
            }
            // Split borrow: clone the source label only when the meld
            // might change something. Cheap check first.
            let (src, dst) = {
                let (a, b) = (v.index(), s.index());
                // SAFETY-free split via index juggling.
                if a < b {
                    let (lo, hi) = labels.split_at_mut(b);
                    (&lo[a], &mut hi[0])
                } else {
                    let (lo, hi) = labels.split_at_mut(a);
                    (&hi[0], &mut lo[b])
                }
            };
            if dst.meld_with(src) {
                worklist.push(s);
            }
        }
    }
    Outcome { result: labels, completion }
}

/// Solves a batch of *independent* meld-labelling problems, using up to
/// `jobs` worker threads (`0` = all cores).
///
/// This is the graph-layer face of the paper's parallelism observation:
/// labels of different objects never meld, so each `(graph, prelabels)`
/// problem is a self-contained task. Results come back in input order —
/// element `i` is exactly `meld_label(&problems[i].0, problems[i].1, …)`
/// — so the output is bit-identical for every `jobs` value.
///
/// # Examples
///
/// ```
/// use vsfs_adt::{define_index, SparseBitVector};
/// use vsfs_graph::{meld_label_many, DiGraph};
///
/// define_index!(N, "n");
/// let mut g: DiGraph<N> = DiGraph::with_nodes(2);
/// g.add_edge(N::new(0), N::new(1));
/// let mut pre = vec![SparseBitVector::new(); 2];
/// pre[0].insert(3);
/// let batch = vec![(g.clone(), pre.clone()), (g, pre)];
/// let out = meld_label_many(batch, |_| false, 2);
/// assert!(out[0][1].contains(3));
/// assert_eq!(out[0], out[1]);
/// ```
pub fn meld_label_many<I: Idx + Send + Sync, L: MeldLabel + Send + Sync>(
    problems: Vec<(DiGraph<I>, Vec<L>)>,
    frozen: impl Fn(I) -> bool + Sync,
    jobs: usize,
) -> Vec<Vec<L>> {
    let problems = &problems;
    let (out, _stats) = vsfs_adt::par::run_tasks(
        vsfs_adt::ParConfig::new(jobs),
        problems.len(),
        |i| problems[i].0.edge_count() as u64 + 1,
        |i| {
            let (graph, prelabels) = &problems[i];
            meld_label(graph, prelabels.clone(), &frozen)
        },
    );
    out
}

/// [`meld_label_many`] under a [`Governor`]: worker panics are caught
/// and cancellation stops the batch. On interruption the governor is
/// tripped and an *empty* result vector comes back tagged
/// [`Completion::Degraded`].
pub fn try_meld_label_many<I: Idx + Send + Sync, L: MeldLabel + Send + Sync>(
    problems: Vec<(DiGraph<I>, Vec<L>)>,
    frozen: impl Fn(I) -> bool + Sync,
    jobs: usize,
    governor: &Governor,
) -> Outcome<Vec<Vec<L>>> {
    let problems = &problems;
    let outcome = vsfs_adt::par::try_run_tasks_with(
        vsfs_adt::ParConfig::new(jobs),
        problems.len(),
        |i| problems[i].0.edge_count() as u64 + 1,
        Some(governor),
        || (),
        |(), i| {
            let (graph, prelabels) = &problems[i];
            meld_label(graph, prelabels.clone(), &frozen)
        },
    );
    match outcome {
        Ok((out, _stats)) => Outcome { result: out, completion: governor.completion() },
        Err(interrupt) => {
            governor.note_interrupt(&interrupt);
            Outcome { result: Vec::new(), completion: governor.completion() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(N, "n");

    fn n(i: u32) -> N {
        N::new(i)
    }

    fn sbv(elems: &[u32]) -> SparseBitVector {
        elems.iter().copied().collect()
    }

    /// `meld_label_many` returns exactly the per-problem `meld_label`
    /// results, for any worker count.
    #[test]
    fn batch_meld_matches_single_for_any_job_count() {
        use vsfs_testkit::gen;
        vsfs_testkit::check_cases("meld::batch_matches_single", 16, |rng| {
            let problems: Vec<(DiGraph<N>, Vec<SparseBitVector>)> = (0..rng.gen_range(0usize..9))
                .map(|_| {
                    let nn = rng.gen_range(1usize..10);
                    let mut g: DiGraph<N> = DiGraph::with_nodes(nn);
                    for (f, t) in gen::vec_with(rng, 0..25, |r| {
                        (r.gen_range(0..nn as u32), r.gen_range(0..nn as u32))
                    }) {
                        g.add_edge(n(f), n(t));
                    }
                    let pre = (0..nn)
                        .map(|i| {
                            if rng.gen_bool(0.4) {
                                sbv(&[i as u32])
                            } else {
                                SparseBitVector::new()
                            }
                        })
                        .collect();
                    (g, pre)
                })
                .collect();
            let want: Vec<Vec<SparseBitVector>> =
                problems.iter().map(|(g, pre)| meld_label(g, pre.clone(), |_| false)).collect();
            for jobs in [1usize, 2, 8] {
                let got = meld_label_many(problems.clone(), |_| false, jobs);
                assert_eq!(got, want, "jobs = {jobs}");
            }
        });
    }

    /// The paper's Figure 4 example: nodes prelabelled with two distinct
    /// labels; nodes reached by both finish with the meld of the two, and
    /// equivalence is by *reaching prelabel set*, not by shared neighbours.
    ///
    /// Graph (9 nodes): 1 and 2 are prelabelled (`{A}` and `{B}`).
    ///
    /// ```text
    /// 1 -> 3 -> 4      4,7: reached by {A} only? no:
    /// 2 -> 6 -> 7      see edges below
    /// 1 -> 5, 2 -> 5   5: {A,B}
    /// 5 -> 8           8: {A,B}  (different neighbours than 5, same set)
    /// 3 -> 4, 6 -> 4   4: {A,B}
    /// 6 -> 7, 3 -> 7   7: {A,B}
    /// 0: untouched     0: ε
    /// ```
    #[test]
    fn meld_paper_example_equivalence_by_reaching_set() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(9);
        g.add_edge(n(1), n(3));
        g.add_edge(n(2), n(6));
        g.add_edge(n(1), n(5));
        g.add_edge(n(2), n(5));
        g.add_edge(n(5), n(8));
        g.add_edge(n(3), n(4));
        g.add_edge(n(6), n(4));
        g.add_edge(n(6), n(7));
        g.add_edge(n(3), n(7));
        let mut pre = vec![SparseBitVector::new(); 9];
        pre[1] = sbv(&[100]); // label A
        pre[2] = sbv(&[200]); // label B
        let labels = meld_label(&g, pre, |_| false);
        assert_eq!(labels[1], sbv(&[100]));
        assert_eq!(labels[2], sbv(&[200]));
        assert_eq!(labels[3], sbv(&[100]));
        assert_eq!(labels[6], sbv(&[200]));
        // Nodes 4, 5, 7, 8 have pairwise different incoming neighbours but
        // identical reaching prelabel sets -> identical labels.
        assert_eq!(labels[5], sbv(&[100, 200]));
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[7], labels[5]);
        assert_eq!(labels[8], labels[5]);
        // Node 0 is unreachable from any prelabelled node -> identity.
        assert!(labels[0].is_identity());
    }

    #[test]
    fn frozen_nodes_keep_their_prelabel() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut pre = vec![SparseBitVector::new(); 3];
        pre[0] = sbv(&[1]);
        pre[1] = sbv(&[9]); // frozen with its own label
        let labels = meld_label(&g, pre, |v| v == n(1));
        assert_eq!(labels[1], sbv(&[9]));
        // The frozen node's own label still propagates onward.
        assert_eq!(labels[2], sbv(&[9]));
    }

    #[test]
    fn cycles_reach_fixpoint() {
        // 0 -> 1 -> 2 -> 1 and prelabel at 0.
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(1));
        let mut pre = vec![SparseBitVector::new(); 3];
        pre[0] = sbv(&[5]);
        let labels = meld_label(&g, pre, |_| false);
        assert_eq!(labels[1], sbv(&[5]));
        assert_eq!(labels[2], sbv(&[5]));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(2);
        g.add_edge(n(0), n(0));
        g.add_edge(n(0), n(1));
        let mut pre = vec![SparseBitVector::new(); 2];
        pre[0] = sbv(&[1]);
        let labels = meld_label(&g, pre, |_| false);
        assert_eq!(labels[0], sbv(&[1]));
        assert_eq!(labels[1], sbv(&[1]));
    }

    #[test]
    fn no_prelabels_means_all_identity() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        let labels = meld_label(&g, vec![SparseBitVector::new(); 3], |_| false);
        assert!(labels.iter().all(SparseBitVector::is_empty));
    }

    /// Fixpoint characterisation: for every edge n' -> n with n not
    /// frozen, label(n) ⊇ label(n'); and every label is exactly the union
    /// of prelabels that reach the node through non-frozen paths.
    #[test]
    fn fixpoint_property_on_random_graphs() {
        use vsfs_testkit::gen;
        vsfs_testkit::check("meld::fixpoint_property_on_random_graphs", |rng| {
            let nn = rng.gen_range(2usize..14);
            let edges = gen::vec_with(rng, 0..40, |r| {
                (r.gen_range(0..nn as u32), r.gen_range(0..nn as u32))
            });
            let is_pre = gen::vec_with(rng, nn..nn, |r| r.gen_bool(0.5));
            {
                let mut g: DiGraph<N> = DiGraph::with_nodes(nn);
                for (f, t) in edges {
                    g.add_edge(n(f), n(t));
                }
                let mut pre = vec![SparseBitVector::new(); nn];
                for (i, &p) in is_pre.iter().enumerate() {
                    if p {
                        pre[i] = sbv(&[i as u32]);
                    }
                }
                let labels = meld_label(&g, pre.clone(), |_| false);
                // Local fixpoint check.
                for (f, t) in g.edges() {
                    if f == t {
                        continue;
                    }
                    assert!(
                        labels[t.index()].is_superset(&labels[f.index()]),
                        "edge {:?}->{:?} not melded",
                        f,
                        t
                    );
                }
                // Global: label = union of prelabels over nodes that reach it.
                for v in g.nodes() {
                    let mut expect = pre[v.index()].clone();
                    for u in g.nodes() {
                        if u != v {
                            let reach = crate::traversal::reachable_from(&g, u);
                            if reach[v.index()] {
                                expect.union_with(&pre[u.index()]);
                            }
                        }
                    }
                    assert_eq!(&labels[v.index()], &expect, "node {:?}", v);
                }
            }
        });
    }
}

//! Graph traversals: reverse post-order and reachability.

use crate::digraph::DiGraph;
use vsfs_adt::index::Idx;

/// Computes a reverse post-order of the nodes reachable from `entry`.
///
/// In a CFG, RPO visits definitions before uses along forward edges, which
/// makes worklist data-flow solvers converge in few passes.
///
/// # Examples
///
/// ```
/// use vsfs_adt::define_index;
/// use vsfs_graph::{reverse_post_order, DiGraph};
///
/// define_index!(N, "n");
/// let mut g: DiGraph<N> = DiGraph::with_nodes(3);
/// g.add_edge(N::new(0), N::new(1));
/// g.add_edge(N::new(1), N::new(2));
/// assert_eq!(reverse_post_order(&g, N::new(0)), vec![N::new(0), N::new(1), N::new(2)]);
/// ```
pub fn reverse_post_order<I: Idx>(graph: &DiGraph<I>, entry: I) -> Vec<I> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with an explicit (node, next-successor) stack.
    let mut stack: Vec<(I, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succs = graph.successors(node);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(node);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Returns the set of nodes reachable from `entry` (including `entry`),
/// as a boolean vector indexed by node.
pub fn reachable_from<I: Idx>(graph: &DiGraph<I>, entry: I) -> Vec<bool> {
    let mut visited = vec![false; graph.node_count()];
    let mut stack = vec![entry];
    visited[entry.index()] = true;
    while let Some(node) = stack.pop() {
        for &s in graph.successors(node) {
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push(s);
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(N, "n");

    fn n(i: u32) -> N {
        N::new(i)
    }

    #[test]
    fn rpo_diamond_visits_join_last() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g: DiGraph<N> = DiGraph::with_nodes(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(2), n(3));
        let rpo = reverse_post_order(&g, n(0));
        assert_eq!(rpo[0], n(0));
        assert_eq!(rpo[3], n(3));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn rpo_skips_unreachable() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        // node 2 unreachable
        let rpo = reverse_post_order(&g, n(0));
        assert_eq!(rpo, vec![n(0), n(1)]);
    }

    #[test]
    fn rpo_handles_cycles() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(1));
        let rpo = reverse_post_order(&g, n(0));
        assert_eq!(rpo.len(), 3);
        assert_eq!(rpo[0], n(0));
    }

    #[test]
    fn reachability() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(3));
        let r = reachable_from(&g, n(0));
        assert_eq!(r, vec![true, true, false, false]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(M, "m");

    #[test]
    fn rpo_of_single_node() {
        let g: DiGraph<M> = DiGraph::with_nodes(1);
        assert_eq!(reverse_post_order(&g, M::new(0)), vec![M::new(0)]);
    }

    #[test]
    fn rpo_respects_topological_order_on_dags() {
        // Random-ish DAG: edges only i -> j with i < j; RPO must then be
        // a topological order.
        let n = 50;
        let mut g: DiGraph<M> = DiGraph::with_nodes(n);
        for i in 0..n as u32 {
            for k in [1u32, 3, 7] {
                if i + k < n as u32 {
                    g.add_edge(M::new(i), M::new(i + k));
                }
            }
        }
        let rpo = reverse_post_order(&g, M::new(0));
        let pos: std::collections::HashMap<M, usize> =
            rpo.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (f, t) in g.edges() {
            assert!(pos[&f] < pos[&t], "edge {f:?}->{t:?} out of order");
        }
    }

    #[test]
    fn self_loop_reachability() {
        let mut g: DiGraph<M> = DiGraph::with_nodes(2);
        g.add_edge(M::new(0), M::new(0));
        let r = reachable_from(&g, M::new(0));
        assert_eq!(r, vec![true, false]);
    }
}

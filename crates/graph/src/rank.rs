//! Topological scheduling ranks from the SCC condensation.
//!
//! A worklist data-flow solver converges fastest when it visits
//! producers before consumers: each node then sees its (acyclic) inputs
//! already settled and is popped close to once. Cycles make a strict
//! topological order impossible, so we rank by the *condensation*: all
//! members of one strongly-connected component share a rank, components
//! are ranked in topological order, and a priority worklist iterates
//! within a component (same rank, FIFO) until it stabilises before any
//! downstream component is touched.

use crate::digraph::DiGraph;
use crate::scc::Sccs;
use vsfs_adt::index::Idx;

/// Ranks every node of `graph` by the topological position of its SCC in
/// the condensation: if `a -> b` crosses components, `rank[a] < rank[b]`;
/// members of one component share a rank.
///
/// Ranks are dense (`0..scc_count`) and deterministic — they depend only
/// on the graph's node order and adjacency-list order — so they can seed
/// a [`vsfs_adt::PriorityWorklist`] without introducing any
/// schedule nondeterminism.
///
/// # Examples
///
/// ```
/// use vsfs_adt::define_index;
/// use vsfs_graph::{condensation_ranks, DiGraph};
///
/// define_index!(N, "n");
/// // 0 -> 1 <-> 2 -> 3: the {1,2} cycle shares a rank.
/// let mut g: DiGraph<N> = DiGraph::with_nodes(4);
/// g.add_edge(N::new(0), N::new(1));
/// g.add_edge(N::new(1), N::new(2));
/// g.add_edge(N::new(2), N::new(1));
/// g.add_edge(N::new(2), N::new(3));
/// let ranks = condensation_ranks(&g);
/// assert!(ranks[0] < ranks[1]);
/// assert_eq!(ranks[1], ranks[2]);
/// assert!(ranks[2] < ranks[3]);
/// ```
pub fn condensation_ranks<I: Idx>(graph: &DiGraph<I>) -> Vec<u32> {
    let sccs = Sccs::compute(graph);
    // Component ids are assigned in reverse topological order (successor
    // components get smaller ids), so flipping them yields
    // predecessors-first ranks.
    let count = sccs.count() as u32;
    graph.nodes().map(|n| count - 1 - sccs.component(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(N, "n");

    fn n(i: u32) -> N {
        N::new(i)
    }

    #[test]
    fn empty_graph_has_no_ranks() {
        let g: DiGraph<N> = DiGraph::new();
        assert!(condensation_ranks(&g).is_empty());
    }

    #[test]
    fn dag_ranks_are_topological() {
        // Diamond: 0 -> {1, 2} -> 3.
        let mut g: DiGraph<N> = DiGraph::with_nodes(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(2), n(3));
        let r = condensation_ranks(&g);
        for (f, t) in g.edges() {
            assert!(r[f.index()] < r[t.index()], "edge {f:?}->{t:?} out of order");
        }
    }

    #[test]
    fn cycle_members_share_a_rank() {
        // 0 -> 1 <-> 2 -> 3, plus an unreachable node 4.
        let mut g: DiGraph<N> = DiGraph::with_nodes(5);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(1));
        g.add_edge(n(2), n(3));
        let r = condensation_ranks(&g);
        assert_eq!(r[1], r[2]);
        assert!(r[0] < r[1]);
        assert!(r[2] < r[3]);
        assert!(r[4] < 4, "unreachable node still gets a dense rank");
    }

    #[test]
    fn ranks_are_dense_bucket_indices() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut r = condensation_ranks(&g);
        r.sort();
        assert_eq!(r, vec![0, 1, 2]);
    }
}

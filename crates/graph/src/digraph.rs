//! A compact directed graph with typed node indices.

use vsfs_adt::index::Idx;
use vsfs_adt::IndexVec;

/// A directed graph storing successor and predecessor adjacency lists.
///
/// Parallel edges are permitted by [`DiGraph::add_edge`]; use
/// [`DiGraph::add_edge_dedup`] to skip duplicates (linear scan — fine for
/// the small out-degrees typical of CFGs and SVFGs).
///
/// # Examples
///
/// ```
/// use vsfs_adt::define_index;
/// use vsfs_graph::DiGraph;
///
/// define_index!(N, "n");
/// let mut g: DiGraph<N> = DiGraph::with_nodes(3);
/// g.add_edge(N::new(0), N::new(1));
/// g.add_edge(N::new(1), N::new(2));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph<I> {
    succs: IndexVec<I, Vec<I>>,
    preds: IndexVec<I, Vec<I>>,
    edges: usize,
}

impl<I: Idx> DiGraph<I> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph { succs: IndexVec::new(), preds: IndexVec::new(), edges: 0 }
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            succs: (0..n).map(|_| Vec::new()).collect(),
            preds: (0..n).map(|_| Vec::new()).collect(),
            edges: 0,
        }
    }

    /// Adds an isolated node, returning its index.
    pub fn add_node(&mut self) -> I {
        self.preds.push(Vec::new());
        self.succs.push(Vec::new())
    }

    /// Adds a directed edge `from -> to` (parallel edges allowed).
    pub fn add_edge(&mut self, from: I, to: I) {
        self.succs[from].push(to);
        self.preds[to].push(from);
        self.edges += 1;
    }

    /// Adds `from -> to` unless already present; returns `true` if added.
    pub fn add_edge_dedup(&mut self, from: I, to: I) -> bool {
        if self.succs[from].contains(&to) {
            return false;
        }
        self.add_edge(from, to);
        true
    }

    /// Returns `true` if the edge `from -> to` exists.
    pub fn has_edge(&self, from: I, to: I) -> bool {
        self.succs[from].contains(&to)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Successors of `node`.
    pub fn successors(&self, node: I) -> &[I] {
        &self.succs[node]
    }

    /// Predecessors of `node`.
    pub fn predecessors(&self, node: I) -> &[I] {
        &self.preds[node]
    }

    /// Iterates all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.node_count()).map(I::from_index)
    }

    /// Iterates all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (I, I)> + '_ {
        self.succs.iter_enumerated().flat_map(|(from, tos)| tos.iter().map(move |&to| (from, to)))
    }
}

impl<I: Idx> Default for DiGraph<I> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(N, "n");

    #[test]
    fn build_and_query() {
        let mut g: DiGraph<N> = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(c), &[a, b]);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn dedup_edges() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(2);
        assert!(g.add_edge_dedup(N::new(0), N::new(1)));
        assert!(!g.add_edge_dedup(N::new(0), N::new(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_allowed() {
        let mut g: DiGraph<N> = DiGraph::with_nodes(1);
        g.add_edge(N::new(0), N::new(0));
        assert_eq!(g.successors(N::new(0)), &[N::new(0)]);
        assert_eq!(g.predecessors(N::new(0)), &[N::new(0)]);
    }
}

//! Directed-graph algorithms for the VSFS workspace.
//!
//! * [`DiGraph`] — a compact directed graph with typed node indices and
//!   successor/predecessor adjacency.
//! * [`scc`] — iterative Tarjan strongly-connected components (used for
//!   Andersen's online cycle elimination and for call-graph SCC fixpoints).
//! * [`dominators`] — Cooper–Harvey–Kennedy dominator trees, dominance
//!   frontiers, and iterated dominance frontiers (used for memory-SSA
//!   MEMPHI placement).
//! * [`meld`] — *meld labelling*, the paper's prelabelling extension for
//!   directed graphs (Section IV-B): propagate labels until each node's
//!   label is the meld of the labels reaching it.
//! * [`rank`] — topological scheduling ranks over the SCC condensation
//!   (used to seed the priority worklists of the flow-sensitive solvers).
//! * [`traversal`] — reverse post-order and reachability.
//!
//! # Examples
//!
//! ```
//! use vsfs_adt::define_index;
//! use vsfs_graph::DiGraph;
//!
//! define_index!(N, "n");
//! let mut g: DiGraph<N> = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! assert_eq!(g.successors(a), &[b]);
//! assert_eq!(g.predecessors(b), &[a]);
//! ```

pub mod digraph;
pub mod dominators;
pub mod meld;
pub mod rank;
pub mod scc;
pub mod traversal;

pub use digraph::DiGraph;
pub use dominators::DomTree;
pub use meld::{meld_label, meld_label_governed, meld_label_many, try_meld_label_many, MeldLabel};
pub use rank::condensation_ranks;
pub use scc::Sccs;
pub use traversal::{reachable_from, reverse_post_order};

//! Dominator trees, dominance frontiers, and iterated dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm.
//! Used by memory-SSA construction to place MEMPHI instructions: for each
//! address-taken object, a MEMPHI is needed at the iterated dominance
//! frontier of the blocks that (may) define it.

use crate::digraph::DiGraph;
use crate::traversal::reverse_post_order;
use vsfs_adt::index::Idx;

/// A dominator tree for the nodes reachable from an entry node.
///
/// # Examples
///
/// ```
/// use vsfs_adt::define_index;
/// use vsfs_graph::{DiGraph, DomTree};
///
/// define_index!(B, "b");
/// // entry -> {then, else} -> join
/// let mut g: DiGraph<B> = DiGraph::with_nodes(4);
/// g.add_edge(B::new(0), B::new(1));
/// g.add_edge(B::new(0), B::new(2));
/// g.add_edge(B::new(1), B::new(3));
/// g.add_edge(B::new(2), B::new(3));
/// let dt = DomTree::compute(&g, B::new(0));
/// assert_eq!(dt.idom(B::new(3)), Some(B::new(0)));
/// assert!(dt.dominates(B::new(0), B::new(3)));
/// assert!(!dt.dominates(B::new(1), B::new(3)));
/// ```
#[derive(Debug, Clone)]
pub struct DomTree<I> {
    entry: I,
    /// Immediate dominator per node; `None` for the entry and unreachable
    /// nodes.
    idom: Vec<Option<I>>,
    /// Whether each node is reachable from the entry.
    reachable: Vec<bool>,
    /// Reverse post-order number per node (`u32::MAX` if unreachable).
    rpo_number: Vec<u32>,
    /// Nodes in reverse post-order.
    rpo: Vec<I>,
    /// Children in the dominator tree.
    children: Vec<Vec<I>>,
}

impl<I: Idx> DomTree<I> {
    /// Computes the dominator tree of `graph` rooted at `entry`.
    pub fn compute(graph: &DiGraph<I>, entry: I) -> Self {
        let n = graph.node_count();
        let rpo = reverse_post_order(graph, entry);
        let mut rpo_number = vec![u32::MAX; n];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_number[v.index()] = i as u32;
        }
        let mut reachable = vec![false; n];
        for &v in &rpo {
            reachable[v.index()] = true;
        }

        // idoms indexed by RPO number during the fixpoint, as in CHK.
        let mut idom_rpo: Vec<Option<u32>> = vec![None; rpo.len()];
        if !rpo.is_empty() {
            idom_rpo[0] = Some(0);
        }
        let intersect = |idom_rpo: &[Option<u32>], mut a: u32, mut b: u32| -> u32 {
            while a != b {
                while a > b {
                    a = idom_rpo[a as usize].expect("processed node lacks idom");
                }
                while b > a {
                    b = idom_rpo[b as usize].expect("processed node lacks idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for (i, &v) in rpo.iter().enumerate().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in graph.predecessors(v) {
                    let pn = rpo_number[p.index()];
                    if pn == u32::MAX || idom_rpo[pn as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pn,
                        Some(cur) => intersect(&idom_rpo, cur, pn),
                    });
                }
                if new_idom.is_some() && idom_rpo[i] != new_idom {
                    idom_rpo[i] = new_idom;
                    changed = true;
                }
            }
        }

        let mut idom: Vec<Option<I>> = vec![None; n];
        let mut children: Vec<Vec<I>> = vec![Vec::new(); n];
        for (i, &v) in rpo.iter().enumerate().skip(1) {
            let d = rpo[idom_rpo[i].expect("reachable node lacks idom") as usize];
            idom[v.index()] = Some(d);
            children[d.index()].push(v);
        }
        DomTree { entry, idom, reachable, rpo_number, rpo, children }
    }

    /// The entry node.
    pub fn entry(&self) -> I {
        self.entry
    }

    /// The immediate dominator of `node` (`None` for the entry and for
    /// unreachable nodes).
    pub fn idom(&self, node: I) -> Option<I> {
        self.idom[node.index()]
    }

    /// Returns `true` if `node` is reachable from the entry.
    pub fn is_reachable(&self, node: I) -> bool {
        self.reachable[node.index()]
    }

    /// Children of `node` in the dominator tree.
    pub fn children(&self, node: I) -> &[I] {
        &self.children[node.index()]
    }

    /// Nodes in reverse post-order (reachable nodes only).
    pub fn reverse_post_order(&self) -> &[I] {
        &self.rpo
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Walks idom links from `b`; `O(depth)`.
    pub fn dominates(&self, a: I, b: I) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Computes the dominance frontier of every node.
    ///
    /// `df[v]` is the set of nodes `w` such that `v` dominates a
    /// predecessor of `w` but does not strictly dominate `w`.
    pub fn dominance_frontiers(&self, graph: &DiGraph<I>) -> Vec<Vec<I>> {
        let n = graph.node_count();
        let mut df: Vec<Vec<I>> = vec![Vec::new(); n];
        for v in graph.nodes() {
            if !self.reachable[v.index()] {
                continue;
            }
            let preds: Vec<I> = graph
                .predecessors(v)
                .iter()
                .copied()
                .filter(|p| self.reachable[p.index()])
                .collect();
            if preds.len() < 2 {
                continue;
            }
            let idom_v = self.idom(v).expect("join node must have an idom");
            for p in preds {
                let mut runner = p;
                while runner != idom_v {
                    if !df[runner.index()].contains(&v) {
                        df[runner.index()].push(v);
                    }
                    match self.idom(runner) {
                        Some(d) => runner = d,
                        None => break,
                    }
                }
            }
        }
        df
    }

    /// Computes the iterated dominance frontier of `defs`: the set of
    /// nodes where phi functions are required for a variable defined at
    /// each node in `defs`.
    pub fn iterated_dominance_frontier(&self, df: &[Vec<I>], defs: &[I]) -> Vec<I> {
        let mut in_idf = vec![false; self.idom.len()];
        let mut queued = vec![false; self.idom.len()];
        let mut work: Vec<I> = Vec::new();
        for &d in defs {
            if self.reachable[d.index()] && !queued[d.index()] {
                queued[d.index()] = true;
                work.push(d);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = work.pop() {
            for &w in &df[v.index()] {
                if !in_idf[w.index()] {
                    in_idf[w.index()] = true;
                    out.push(w);
                    if !queued[w.index()] {
                        queued[w.index()] = true;
                        work.push(w);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The reverse post-order number of `node` (`u32::MAX` if unreachable).
    pub fn rpo_number(&self, node: I) -> u32 {
        self.rpo_number[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_adt::define_index;

    define_index!(B, "b");

    fn b(i: u32) -> B {
        B::new(i)
    }

    /// Builds the classic CFG from the Cooper–Harvey–Kennedy paper's
    /// running example (5 nodes).
    fn chk_example() -> DiGraph<B> {
        // 6 nodes named 6(entry),5,4,3,2,1 in the paper; we use 0..=5 with
        // 0 = entry.
        // 0 -> 1, 0 -> 2; 1 -> 3; 2 -> 4; 3 -> 5(?)...
        // Use the figure-2 graph: entry=6: 6->5, 6->4, 5->1, 4->2, 5->... we
        // instead encode: 0->1,0->2, 1->3, 2->3, 3->4, 4->3 (loop), 2->4.
        let mut g: DiGraph<B> = DiGraph::with_nodes(5);
        g.add_edge(b(0), b(1));
        g.add_edge(b(0), b(2));
        g.add_edge(b(1), b(3));
        g.add_edge(b(2), b(3));
        g.add_edge(b(3), b(4));
        g.add_edge(b(4), b(3));
        g.add_edge(b(2), b(4));
        g
    }

    #[test]
    fn idoms_on_merge_and_loop() {
        let g = chk_example();
        let dt = DomTree::compute(&g, b(0));
        assert_eq!(dt.idom(b(0)), None);
        assert_eq!(dt.idom(b(1)), Some(b(0)));
        assert_eq!(dt.idom(b(2)), Some(b(0)));
        assert_eq!(dt.idom(b(3)), Some(b(0)));
        assert_eq!(dt.idom(b(4)), Some(b(0)));
        assert!(dt.dominates(b(0), b(4)));
        assert!(dt.dominates(b(3), b(3)));
        assert!(!dt.dominates(b(1), b(3)));
    }

    #[test]
    fn straight_line_chain() {
        let mut g: DiGraph<B> = DiGraph::with_nodes(4);
        g.add_edge(b(0), b(1));
        g.add_edge(b(1), b(2));
        g.add_edge(b(2), b(3));
        let dt = DomTree::compute(&g, b(0));
        assert_eq!(dt.idom(b(3)), Some(b(2)));
        assert_eq!(dt.idom(b(2)), Some(b(1)));
        assert!(dt.dominates(b(1), b(3)));
        assert_eq!(dt.children(b(1)), &[b(2)]);
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let mut g: DiGraph<B> = DiGraph::with_nodes(3);
        g.add_edge(b(0), b(1));
        let dt = DomTree::compute(&g, b(0));
        assert_eq!(dt.idom(b(2)), None);
        assert!(!dt.is_reachable(b(2)));
        assert!(!dt.dominates(b(0), b(2)));
    }

    #[test]
    fn dominance_frontier_of_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g: DiGraph<B> = DiGraph::with_nodes(4);
        g.add_edge(b(0), b(1));
        g.add_edge(b(0), b(2));
        g.add_edge(b(1), b(3));
        g.add_edge(b(2), b(3));
        let dt = DomTree::compute(&g, b(0));
        let df = dt.dominance_frontiers(&g);
        assert_eq!(df[b(1).index()], vec![b(3)]);
        assert_eq!(df[b(2).index()], vec![b(3)]);
        assert!(df[b(0).index()].is_empty());
        assert!(df[b(3).index()].is_empty());
    }

    #[test]
    fn df_of_loop_includes_header() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut g: DiGraph<B> = DiGraph::with_nodes(4);
        g.add_edge(b(0), b(1));
        g.add_edge(b(1), b(2));
        g.add_edge(b(2), b(1));
        g.add_edge(b(2), b(3));
        let dt = DomTree::compute(&g, b(0));
        let df = dt.dominance_frontiers(&g);
        // The loop body's frontier contains the header (a merge of entry
        // and back edge).
        assert!(df[b(2).index()].contains(&b(1)));
        assert!(df[b(1).index()].contains(&b(1)));
    }

    #[test]
    fn idf_reaches_transitive_joins() {
        // Two sequential diamonds; a def in the first "then" arm needs phis
        // at both joins if the first join's value flows onward... here we
        // check IDF of {1}: join 3; and IDF includes further frontier of 3.
        // 0->1,0->2,1->3,2->3, 3->4,3->5,4->6,5->6
        let mut g: DiGraph<B> = DiGraph::with_nodes(7);
        g.add_edge(b(0), b(1));
        g.add_edge(b(0), b(2));
        g.add_edge(b(1), b(3));
        g.add_edge(b(2), b(3));
        g.add_edge(b(3), b(4));
        g.add_edge(b(3), b(5));
        g.add_edge(b(4), b(6));
        g.add_edge(b(5), b(6));
        let dt = DomTree::compute(&g, b(0));
        let df = dt.dominance_frontiers(&g);
        let idf = dt.iterated_dominance_frontier(&df, &[b(1)]);
        // def at 1 -> phi at 3; 3 dominates 6 so no phi at 6 needed.
        assert_eq!(idf, vec![b(3)]);
        let idf2 = dt.iterated_dominance_frontier(&df, &[b(4)]);
        assert_eq!(idf2, vec![b(6)]);
    }

    /// Naive dominance: `a` dominates `b` iff removing `a` makes `b`
    /// unreachable (or a == b == reachable). Used as an oracle.
    fn naive_dominates(g: &DiGraph<B>, entry: B, a: B, b_: B) -> bool {
        let n = g.node_count();
        let mut visited = vec![false; n];
        if entry != a {
            let mut stack = vec![entry];
            visited[entry.index()] = true;
            while let Some(v) = stack.pop() {
                for &s in g.successors(v) {
                    if s != a && !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
        }
        let reach = crate::traversal::reachable_from(g, entry);
        reach[b_.index()] && (a == b_ || !visited[b_.index()])
    }

    #[test]
    fn matches_naive_dominance_on_random_graphs() {
        use vsfs_testkit::gen;
        vsfs_testkit::check("dominators::matches_naive_dominance_on_random_graphs", |rng| {
            let n = rng.gen_range(2usize..12);
            let edges =
                gen::vec_with(rng, 0..30, |r| (r.gen_range(0..n as u32), r.gen_range(0..n as u32)));
            {
                let mut g: DiGraph<B> = DiGraph::with_nodes(n);
                for (f, t) in edges {
                    g.add_edge(b(f), b(t));
                }
                let dt = DomTree::compute(&g, b(0));
                for x in g.nodes() {
                    for y in g.nodes() {
                        assert_eq!(
                            dt.dominates(x, y),
                            naive_dominates(&g, b(0), x, y),
                            "dominates({x:?},{y:?}) mismatch"
                        );
                    }
                }
            }
        });
    }
}

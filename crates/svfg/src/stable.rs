//! Stable, ID-independent keys for cross-parse correspondence.
//!
//! The incremental solver (DESIGN.md §9) compares two parses of a
//! program — before and after a function-granularity edit. Arena ids
//! (`ValueId`, `ObjId`, `InstId`, `SvfgNodeId`) are assigned in parse
//! order, so an edit renumbers everything downstream of the edited
//! function; raw ids from different parses are incomparable. This module
//! assigns every object, value, instruction, and SVFG node a *stable
//! key*: a hash of purely name- and position-based data that is invariant
//! under renumbering. Two parses agree on the key of an entity iff the
//! entity survived the edit, which is exactly the correspondence the
//! incremental solver needs.
//!
//! Key spaces (all fed through FNV-1a, never a raw arena id):
//!
//! * **objects** — kind tag + owning function name + object name, with an
//!   occurrence index to split same-named allocations; field objects are
//!   `(base key, offset)`; globals and function objects are their names.
//! * **values** — scope (function name, or empty for globals) + value
//!   name (unique within a function under SSA).
//! * **instructions** — function name + position in block-layout order
//!   (`FUNENTRY`/`FUNEXIT`, singletons per function, by name alone).
//! * **SVFG nodes** — side tag (`Inst`/`CallRet`) + instruction key, or
//!   function name + block position + object key for `MEMPHI`s.
//!
//! Hash collisions (or genuinely duplicate names) would silently mispair
//! entities, so every key table is built with a duplicate check; a
//! [`StableKeys`] that saw one reports [`StableKeys::is_unambiguous`] `==
//! false` and the caller falls back to a from-scratch solve — soundness
//! never rests on 64-bit injectivity.

use crate::{Svfg, SvfgNodeId, SvfgNodeKind};
use std::collections::HashMap;
use vsfs_adt::IndexVec;
use vsfs_ir::{InstId, InstKind, ObjId, ObjKind, Program, ValueId};
use vsfs_mssa::{MemorySsa, MssaDef};

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds one 64-bit word into a running FNV-1a hash.
pub fn mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The SVFG node holding a memory-SSA definition.
pub fn mssa_def_node(svfg: &Svfg, def: MssaDef) -> SvfgNodeId {
    match def {
        MssaDef::Inst(i) => svfg.inst_node(i),
        MssaDef::CallRet(i) => svfg.callret_node(i),
        MssaDef::MemPhi(p) => svfg.memphi_node(p),
    }
}

/// Stable keys for one parse of a program (see the module docs).
#[derive(Debug)]
pub struct StableKeys {
    /// Key of each object.
    pub obj_key: IndexVec<ObjId, u64>,
    /// Key of each value.
    pub value_key: IndexVec<ValueId, u64>,
    /// Key of each instruction.
    pub inst_key: IndexVec<InstId, u64>,
    /// Key of each SVFG node.
    pub node_key: IndexVec<SvfgNodeId, u64>,
    node_of_key: HashMap<u64, SvfgNodeId>,
    value_of_key: HashMap<u64, ValueId>,
    obj_of_key: HashMap<u64, ObjId>,
    ambiguous: bool,
}

impl StableKeys {
    /// Builds the program-side key tables only (objects, values,
    /// instructions), leaving the SVFG node tables empty. Solvers that
    /// never materialize an SVFG (dense, cfg-free) still need stable
    /// result fingerprints — `result_fingerprint` consumes only
    /// value/object/instruction keys — so this constructor gives them
    /// the same cross-parse identity without the staged pipeline.
    pub fn build_program(prog: &Program) -> StableKeys {
        let (obj_key, value_key, inst_key) = Self::program_keys(prog);
        let mut ambiguous = false;
        let mut obj_of_key = HashMap::with_capacity(obj_key.len());
        for (id, &key) in obj_key.iter_enumerated() {
            ambiguous |= obj_of_key.insert(key, id).is_some();
        }
        let mut value_of_key = HashMap::with_capacity(value_key.len());
        for (id, &key) in value_key.iter_enumerated() {
            ambiguous |= value_of_key.insert(key, id).is_some();
        }
        StableKeys {
            obj_key,
            value_key,
            inst_key,
            node_key: IndexVec::new(),
            node_of_key: HashMap::new(),
            value_of_key,
            obj_of_key,
            ambiguous,
        }
    }

    /// Object, value, and instruction key tables for one parse.
    fn program_keys(
        prog: &Program,
    ) -> (IndexVec<ObjId, u64>, IndexVec<ValueId, u64>, IndexVec<InstId, u64>) {
        let fname = |f| fnv1a(prog.functions[f].name.as_bytes());

        // Objects: non-field kinds first (field bases are never fields —
        // the IR collapses field-of-field), then fields over base keys.
        let mut occurrence: HashMap<u64, u32> = HashMap::new();
        let mut obj_key: IndexVec<ObjId, u64> = IndexVec::new();
        for (_, obj) in prog.objects.iter_enumerated() {
            let raw = match obj.kind {
                ObjKind::Stack(f) => {
                    mix(mix(fnv1a(b"stack"), fname(f)), fnv1a(obj.name.as_bytes()))
                }
                ObjKind::Heap(f) => mix(mix(fnv1a(b"heap"), fname(f)), fnv1a(obj.name.as_bytes())),
                ObjKind::Global => mix(fnv1a(b"global"), fnv1a(obj.name.as_bytes())),
                ObjKind::Function(f) => mix(fnv1a(b"func"), fname(f)),
                ObjKind::Null => fnv1a(b"null"),
                // Filled in the second pass.
                ObjKind::Field { .. } => 0,
            };
            let key = if let ObjKind::Field { .. } = obj.kind {
                0
            } else {
                let occ = occurrence.entry(raw).or_insert(0);
                let key = mix(raw, *occ as u64);
                *occ += 1;
                key
            };
            obj_key.push(key);
        }
        for (id, obj) in prog.objects.iter_enumerated() {
            if let ObjKind::Field { base, offset } = obj.kind {
                obj_key[id] = mix(mix(fnv1a(b"field"), obj_key[base]), offset as u64);
            }
        }

        // Values: (scope, name), occurrence-disambiguated defensively.
        occurrence.clear();
        let mut value_key: IndexVec<ValueId, u64> = IndexVec::new();
        for (_, v) in prog.values.iter_enumerated() {
            let scope = match v.func {
                Some(f) => fname(f),
                None => fnv1a(b""),
            };
            let raw = mix(mix(fnv1a(b"value"), scope), fnv1a(v.name.as_bytes()));
            let occ = occurrence.entry(raw).or_insert(0);
            value_key.push(mix(raw, *occ as u64));
            *occ += 1;
        }

        // Instructions: function name + block-layout position. The
        // pseudo-instructions FUNENTRY/FUNEXIT are keyed by function name
        // alone — they are singletons per function, and position-keying
        // them would let any body-length change (an appended statement)
        // shift the exit's identity and spuriously re-sign every caller.
        let mut inst_key: IndexVec<InstId, u64> = IndexVec::from_elem_n(0, prog.insts.len());
        for (f, _) in prog.functions.iter_enumerated() {
            for (pos, inst) in prog.func_insts(f).enumerate() {
                inst_key[inst] = match prog.insts[inst].kind {
                    InstKind::FunEntry { .. } => mix(fnv1a(b"inst-entry"), fname(f)),
                    InstKind::FunExit { .. } => mix(fnv1a(b"inst-exit"), fname(f)),
                    _ => mix(mix(fnv1a(b"inst"), fname(f)), pos as u64),
                };
            }
        }

        (obj_key, value_key, inst_key)
    }

    /// Builds the key tables for one (program, memory-SSA, SVFG) triple.
    pub fn build(prog: &Program, mssa: &MemorySsa, svfg: &Svfg) -> StableKeys {
        let (obj_key, value_key, inst_key) = Self::program_keys(prog);
        let mut ambiguous = false;
        let fname = |f| fnv1a(prog.functions[f].name.as_bytes());
        let mut obj_of_key = HashMap::with_capacity(obj_key.len());
        for (id, &key) in obj_key.iter_enumerated() {
            ambiguous |= obj_of_key.insert(key, id).is_some();
        }
        let mut value_of_key = HashMap::with_capacity(value_key.len());
        for (id, &key) in value_key.iter_enumerated() {
            ambiguous |= value_of_key.insert(key, id).is_some();
        }
        let mut block_pos: IndexVec<vsfs_ir::BlockId, u64> =
            IndexVec::from_elem_n(0, prog.blocks.len());
        for (_, func) in prog.functions.iter_enumerated() {
            for (pos, &b) in func.blocks.iter().enumerate() {
                block_pos[b] = pos as u64;
            }
        }

        // SVFG nodes.
        let mut node_key: IndexVec<SvfgNodeId, u64> = IndexVec::new();
        for n in svfg.node_ids() {
            let key = match svfg.kind(n) {
                SvfgNodeKind::Inst(i) => mix(fnv1a(b"n-inst"), inst_key[i]),
                SvfgNodeKind::CallRet(i) => mix(fnv1a(b"n-ret"), inst_key[i]),
                SvfgNodeKind::MemPhi(p) => {
                    let phi = &mssa.memphis()[p];
                    mix(
                        mix(mix(fnv1a(b"n-phi"), fname(phi.func)), block_pos[phi.block]),
                        obj_key[phi.obj],
                    )
                }
            };
            node_key.push(key);
        }
        let mut node_of_key = HashMap::with_capacity(node_key.len());
        for (id, &key) in node_key.iter_enumerated() {
            ambiguous |= node_of_key.insert(key, id).is_some();
        }

        StableKeys {
            obj_key,
            value_key,
            inst_key,
            node_key,
            node_of_key,
            value_of_key,
            obj_of_key,
            ambiguous,
        }
    }

    /// `false` if any key table saw a duplicate (name clash or hash
    /// collision) — lookups are then unreliable and callers must not use
    /// this parse for incremental correspondence.
    pub fn is_unambiguous(&self) -> bool {
        !self.ambiguous
    }

    /// The node with stable key `key`, if any.
    pub fn node_of_key(&self, key: u64) -> Option<SvfgNodeId> {
        self.node_of_key.get(&key).copied()
    }

    /// The value with stable key `key`, if any.
    pub fn value_of_key(&self, key: u64) -> Option<ValueId> {
        self.value_of_key.get(&key).copied()
    }

    /// The object with stable key `key`, if any.
    pub fn obj_of_key(&self, key: u64) -> Option<ObjId> {
        self.obj_of_key.get(&key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = r#"
global @g

func @helper(%p, %q) {
entry:
  %h = alloc heap H
  store %h, %p
  %l = load %q
  ret %l
}

func @main() {
entry:
  %a = alloc stack A
  %b = alloc stack A
  store %a, @g
  %r = call @helper(%a, %b)
  ret
}
"#;

    fn build(src: &str) -> (Program, StableKeys) {
        let prog = vsfs_ir::parse_program(src).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let keys = StableKeys::build(&prog, &mssa, &svfg);
        (prog, keys)
    }

    #[test]
    fn keys_are_unambiguous_and_reparse_stable() {
        let (prog_a, a) = build(PROG);
        let (_, b) = build(PROG);
        assert!(a.is_unambiguous());
        assert_eq!(a.node_key, b.node_key);
        assert_eq!(a.value_key, b.value_key);
        assert_eq!(a.obj_key, b.obj_key);
        // Same-named allocations split by occurrence.
        let allocs: Vec<u64> = prog_a
            .objects
            .iter_enumerated()
            .filter(|(_, o)| o.name == "A")
            .map(|(id, _)| a.obj_key[id])
            .collect();
        assert_eq!(allocs.len(), 2);
        assert_ne!(allocs[0], allocs[1]);
    }

    #[test]
    fn unedited_function_keys_survive_an_edit_elsewhere() {
        let (prog_a, a) = build(PROG);
        // Replace main's body; helper is untouched.
        let edited = PROG.replace("%r = call @helper(%a, %b)", "%r = call @helper(%b, %a)");
        let (prog_b, b) = build(&edited);
        let helper_a = prog_a.function_by_name("helper").unwrap();
        let helper_b = prog_b.function_by_name("helper").unwrap();
        for (ia, ib) in prog_a.func_insts(helper_a).zip(prog_b.func_insts(helper_b)) {
            assert_eq!(a.inst_key[ia], b.inst_key[ib]);
        }
        // Looking up every old key in the new build must not panic;
        // keys from the edited function are allowed to miss.
        for (key, _) in a.node_of_key.iter() {
            let _ = b.node_of_key(*key);
        }
    }

    #[test]
    fn program_only_keys_match_the_staged_build() {
        let (prog, full) = build(PROG);
        let lean = StableKeys::build_program(&prog);
        assert!(lean.is_unambiguous());
        assert_eq!(lean.obj_key, full.obj_key);
        assert_eq!(lean.value_key, full.value_key);
        assert_eq!(lean.inst_key, full.inst_key);
        assert!(lean.node_key.is_empty());
    }

    #[test]
    fn lookup_round_trips() {
        let (_, keys) = build(PROG);
        for (id, &k) in keys.node_key.iter_enumerated() {
            assert_eq!(keys.node_of_key(k), Some(id));
        }
        for (id, &k) in keys.value_key.iter_enumerated() {
            assert_eq!(keys.value_of_key(k), Some(id));
        }
        for (id, &k) in keys.obj_key.iter_enumerated() {
            assert_eq!(keys.obj_of_key(k), Some(id));
        }
    }
}

//! Graphviz (DOT) rendering of an SVFG — used by the `svfg_dot` example
//! and handy when debugging analyses.

use crate::{Svfg, SvfgNodeKind};
use std::fmt::Write as _;
use vsfs_ir::Program;

impl Svfg {
    /// Renders the SVFG as a Graphviz `digraph`.
    ///
    /// Direct edges are solid; indirect edges are dashed and labelled with
    /// their object's name; δ nodes are drawn with doubled borders.
    pub fn to_dot(&self, prog: &Program) -> String {
        let mut out = String::from("digraph svfg {\n  node [shape=box, fontsize=10];\n");
        for n in self.node_ids() {
            let label = match self.kind(n) {
                SvfgNodeKind::Inst(i) => {
                    format!("{}: {}", n, prog.inst_location(i).replace('"', "'"))
                }
                SvfgNodeKind::CallRet(i) => format!("{}: ret-side of {}", n, i),
                SvfgNodeKind::MemPhi(p) => format!("{}: memphi {}", n, p),
            };
            let peripheries = if self.is_delta(n) { 2 } else { 1 };
            let _ = writeln!(out, "  {} [label=\"{}\", peripheries={}];", n.raw(), label, peripheries);
        }
        for n in self.node_ids() {
            for &t in self.direct_succs(n) {
                let _ = writeln!(out, "  {} -> {};", n.raw(), t.raw());
            }
            for &(t, o) in self.indirect_succs(n) {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"{}\"];",
                    n.raw(),
                    t.raw(),
                    prog.objects[o].name.replace('"', "'")
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Svfg;
    use vsfs_ir::parse_program;

    #[test]
    fn renders_nodes_and_edge_styles() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let dot = svfg.to_dot(&prog);
        assert!(dot.starts_with("digraph svfg {"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}

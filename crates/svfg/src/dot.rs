//! Graphviz (DOT) rendering of an SVFG — used by the `svfg_dot` example
//! and handy when debugging analyses.
//!
//! [`Svfg::to_dot_annotated`] additionally takes per-node presentation
//! data ([`DotAnnotations`]) supplied by the caller: extra label lines
//! (e.g. the object versions VSFS assigned, which live downstream in
//! `vsfs-core` and so cannot be referenced here) and checker
//! source/sink highlighting.

use crate::{Svfg, SvfgNodeId, SvfgNodeKind};
use std::collections::HashMap;
use std::fmt::Write as _;
use vsfs_ir::Program;

/// How a node should be highlighted in the rendered graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotRole {
    /// A checker source (e.g. a `FREE` seeding freed-memory taint).
    Source,
    /// A checker sink (e.g. a flagged `LOAD`).
    Sink,
}

/// Caller-supplied per-node extras for [`Svfg::to_dot_annotated`].
#[derive(Debug, Clone, Default)]
pub struct DotAnnotations {
    /// Extra label lines appended under a node's base label.
    pub extra_lines: HashMap<SvfgNodeId, Vec<String>>,
    /// Fill highlighting. Sources render salmon, sinks gold; a node that
    /// is both keeps the role set here (callers decide precedence).
    pub roles: HashMap<SvfgNodeId, DotRole>,
}

impl Svfg {
    /// Renders the SVFG as a Graphviz `digraph`.
    ///
    /// Direct edges are solid; indirect edges are dashed and labelled with
    /// their object's name; δ nodes are drawn with doubled borders.
    pub fn to_dot(&self, prog: &Program) -> String {
        self.to_dot_annotated(prog, &DotAnnotations::default())
    }

    /// [`Svfg::to_dot`] with per-node extra label lines and source/sink
    /// highlighting.
    pub fn to_dot_annotated(&self, prog: &Program, ann: &DotAnnotations) -> String {
        let mut out = String::from("digraph svfg {\n  node [shape=box, fontsize=10];\n");
        for n in self.node_ids() {
            let mut label = match self.kind(n) {
                SvfgNodeKind::Inst(i) => {
                    format!("{}: {}", n, prog.inst_location(i).replace('"', "'"))
                }
                SvfgNodeKind::CallRet(i) => format!("{}: ret-side of {}", n, i),
                SvfgNodeKind::MemPhi(p) => format!("{}: memphi {}", n, p),
            };
            if let Some(lines) = ann.extra_lines.get(&n) {
                for l in lines {
                    label.push_str("\\n");
                    label.push_str(&l.replace('"', "'"));
                }
            }
            let peripheries = if self.is_delta(n) { 2 } else { 1 };
            let fill = match ann.roles.get(&n) {
                Some(DotRole::Source) => ", style=filled, fillcolor=salmon",
                Some(DotRole::Sink) => ", style=filled, fillcolor=gold",
                None => "",
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\", peripheries={}{}];",
                n.raw(),
                label,
                peripheries,
                fill
            );
        }
        for n in self.node_ids() {
            for &t in self.direct_succs(n) {
                let _ = writeln!(out, "  {} -> {};", n.raw(), t.raw());
            }
            for &(t, s) in self.indirect_succs(n) {
                let labels: Vec<String> = self
                    .obj_set(s)
                    .iter()
                    .map(|&o| prog.objects[o].name.replace('"', "'"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"{}\"];",
                    n.raw(),
                    t.raw(),
                    labels.join(",")
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{DotAnnotations, DotRole, Svfg};
    use vsfs_ir::parse_program;

    #[test]
    fn renders_nodes_and_edge_styles() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let dot = svfg.to_dot(&prog);
        assert!(dot.starts_with("digraph svfg {"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn annotations_add_label_lines_and_highlighting() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc heap H
              free %p
              %r = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let free_node = svfg
            .node_ids()
            .find(|&n| {
                matches!(svfg.kind(n), crate::SvfgNodeKind::Inst(i)
                if matches!(prog.insts[i].kind, vsfs_ir::InstKind::Free { .. }))
            })
            .expect("free node exists");
        let load_node = svfg
            .node_ids()
            .find(|&n| {
                matches!(svfg.kind(n), crate::SvfgNodeKind::Inst(i)
                if matches!(prog.insts[i].kind, vsfs_ir::InstKind::Load { .. }))
            })
            .expect("load node exists");
        let mut ann = DotAnnotations::default();
        ann.extra_lines.insert(free_node, vec!["consume H@v1".into(), "yield H@v2".into()]);
        ann.roles.insert(free_node, DotRole::Source);
        ann.roles.insert(load_node, DotRole::Sink);
        let dot = svfg.to_dot_annotated(&prog, &ann);
        assert!(dot.contains("consume H@v1\\nyield H@v2"));
        assert!(dot.contains("fillcolor=salmon"));
        assert!(dot.contains("fillcolor=gold"));
        // The plain export is the annotated export with no annotations.
        assert_eq!(svfg.to_dot(&prog), svfg.to_dot_annotated(&prog, &DotAnnotations::default()));
    }
}

//! The sparse value-flow graph (SVFG) — Section II-B of the paper.
//!
//! Nodes are the program's instructions (call instructions contribute two
//! nodes: the call itself and its *return side*, mirroring SVF's
//! `ActualIN`/`ActualOUT` split) plus the `MEMPHI`s inserted by memory-SSA
//! construction.
//!
//! Edges come in two flavours:
//!
//! * **Direct** edges carry top-level (`P`) value flow. They are trivial
//!   to compute from SSA def-use chains, plus call/return bindings.
//! * **Indirect** edges carry address-taken (`A`) value flow; each is
//!   labelled with the object `o` whose points-to state flows along it.
//!   They come from the memory-SSA def-use chains.
//!
//! Interprocedural indirect edges for **indirect** call sites are *not*
//! materialised eagerly: they are recorded as [`CallBinding`]s keyed by
//! `(call site, callee)` and activated by the flow-sensitive solver when
//! its own (more precise) call-graph resolution proves the callee — the
//! paper's on-the-fly call-graph construction. The nodes whose inputs can
//! grow this way are the δ nodes of Section IV-C1: `FUNENTRY` nodes of
//! address-taken functions and return sides of indirect calls.
//!
//! # Examples
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q = alloc heap H
//!   store %q, %p
//!   %r = load %p
//!   ret
//! }
//! "#)?;
//! let aux = vsfs_andersen::analyze(&prog);
//! let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
//! let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
//! assert!(svfg.indirect_edge_count() >= 1); // store --A--> load
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod build;
pub mod dot;
pub mod stable;

pub use dot::{DotAnnotations, DotRole};
pub use stable::StableKeys;

use std::collections::HashMap;
use vsfs_adt::{define_index, IndexVec};
use vsfs_ir::{FuncId, InstId, ObjId};
use vsfs_mssa::MemPhiId;

define_index!(
    /// A node of the SVFG.
    SvfgNodeId,
    "n"
);

define_index!(
    /// An interned object-label set shared by the graph's indirect edges.
    ///
    /// A `(from, to)` node pair with value flow for many objects is one
    /// grouped edge labelled by an `ObjSetId`; identical label sets across
    /// pairs share one id (on large workloads the ~15× label repetition
    /// collapses accordingly). Resolve with [`Svfg::obj_set`].
    ObjSetId,
    "os"
);

/// What an SVFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SvfgNodeKind {
    /// An ordinary instruction — or the *call side* of a `CALL`
    /// (argument passing, µ relay into callees).
    Inst(InstId),
    /// The *return side* of a `CALL` (receives callee exit state and the
    /// bypass value; defines the call's χs).
    CallRet(InstId),
    /// A `MEMPHI` inserted by memory-SSA construction.
    MemPhi(MemPhiId),
}

/// Interprocedural indirect value-flow of one `(call site, callee)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallBinding {
    /// Objects flowing caller → callee (`call node --o--> FUNENTRY`).
    pub ins: Vec<ObjId>,
    /// Objects flowing callee → caller (`FUNEXIT --o--> return side`).
    pub outs: Vec<ObjId>,
}

/// The sparse value-flow graph.
#[derive(Debug, Clone)]
pub struct Svfg {
    pub(crate) nodes: IndexVec<SvfgNodeId, SvfgNodeKind>,
    pub(crate) node_of_inst: IndexVec<InstId, SvfgNodeId>,
    pub(crate) node_of_callret: HashMap<InstId, SvfgNodeId>,
    pub(crate) node_of_memphi: IndexVec<MemPhiId, SvfgNodeId>,
    pub(crate) direct_succs: IndexVec<SvfgNodeId, Vec<SvfgNodeId>>,
    /// Grouped indirect edges: one entry per `(from, to)` pair, labelled
    /// by an interned object set.
    pub(crate) ind_succs: IndexVec<SvfgNodeId, Vec<(SvfgNodeId, ObjSetId)>>,
    pub(crate) ind_preds: IndexVec<SvfgNodeId, Vec<(SvfgNodeId, ObjSetId)>>,
    /// Interned label sets: arena of sorted object ids plus per-set
    /// `(start, len)` spans, indexed by [`ObjSetId`].
    pub(crate) obj_set_arena: Vec<ObjId>,
    pub(crate) obj_set_spans: Vec<(u32, u32)>,
    pub(crate) call_bindings: HashMap<(InstId, FuncId), CallBinding>,
    pub(crate) delta: IndexVec<SvfgNodeId, bool>,
    pub(crate) direct_edges: usize,
    pub(crate) indirect_edges: usize,
}

impl Svfg {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of direct (top-level) edges, including call/return bindings
    /// resolved by the auxiliary analysis.
    pub fn direct_edge_count(&self) -> usize {
        self.direct_edges
    }

    /// Number of indirect (address-taken) edges, including the
    /// interprocedural edges recorded in call bindings.
    pub fn indirect_edge_count(&self) -> usize {
        self.indirect_edges
    }

    /// What `node` represents.
    pub fn kind(&self, node: SvfgNodeId) -> SvfgNodeKind {
        self.nodes[node]
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = SvfgNodeId> + 'static {
        (0..self.nodes.len()).map(|i| SvfgNodeId::new(i as u32))
    }

    /// The node of instruction `inst` (the call side, for calls).
    pub fn inst_node(&self, inst: InstId) -> SvfgNodeId {
        self.node_of_inst[inst]
    }

    /// The return-side node of call instruction `call`.
    ///
    /// # Panics
    ///
    /// Panics if `call` is not a call instruction.
    pub fn callret_node(&self, call: InstId) -> SvfgNodeId {
        self.node_of_callret[&call]
    }

    /// The node of a `MEMPHI`.
    pub fn memphi_node(&self, phi: MemPhiId) -> SvfgNodeId {
        self.node_of_memphi[phi]
    }

    /// Direct successors of `node`.
    pub fn direct_succs(&self, node: SvfgNodeId) -> &[SvfgNodeId] {
        &self.direct_succs[node]
    }

    /// Grouped indirect successors of `node`: one entry per successor,
    /// labelled with the interned set of objects flowing along the edge
    /// (intraprocedural + direct-call interprocedural). Sorted by
    /// successor id.
    pub fn indirect_succs(&self, node: SvfgNodeId) -> &[(SvfgNodeId, ObjSetId)] {
        &self.ind_succs[node]
    }

    /// Grouped indirect predecessors of `node`, sorted by predecessor id.
    pub fn indirect_preds(&self, node: SvfgNodeId) -> &[(SvfgNodeId, ObjSetId)] {
        &self.ind_preds[node]
    }

    /// The object labels behind an interned set id, sorted ascending.
    pub fn obj_set(&self, set: ObjSetId) -> &[ObjId] {
        let (start, len) = self.obj_set_spans[set.index()];
        &self.obj_set_arena[start as usize..(start + len) as usize]
    }

    /// Number of distinct interned object-label sets.
    pub fn obj_set_count(&self) -> usize {
        self.obj_set_spans.len()
    }

    /// Indirect successors of `node` expanded to per-object labelled
    /// edges, as `(succ, obj)` pairs.
    pub fn indirect_succs_expanded(
        &self,
        node: SvfgNodeId,
    ) -> impl Iterator<Item = (SvfgNodeId, ObjId)> + '_ {
        self.ind_succs[node]
            .iter()
            .flat_map(move |&(t, s)| self.obj_set(s).iter().map(move |&o| (t, o)))
    }

    /// Indirect predecessors of `node` expanded to per-object labelled
    /// edges, as `(pred, obj)` pairs.
    pub fn indirect_preds_expanded(
        &self,
        node: SvfgNodeId,
    ) -> impl Iterator<Item = (SvfgNodeId, ObjId)> + '_ {
        self.ind_preds[node]
            .iter()
            .flat_map(move |&(f, s)| self.obj_set(s).iter().map(move |&o| (f, o)))
    }

    /// The deferred interprocedural binding for `(call, callee)`, if the
    /// auxiliary analysis considered that target possible.
    pub fn call_binding(&self, call: InstId, callee: FuncId) -> Option<&CallBinding> {
        self.call_bindings.get(&(call, callee))
    }

    /// Iterates all deferred `(call, callee)` bindings.
    pub fn call_bindings(&self) -> impl Iterator<Item = (&(InstId, FuncId), &CallBinding)> {
        self.call_bindings.iter()
    }

    /// Returns `true` if `node` is a δ node (Section IV-C1): its incoming
    /// indirect edges may grow during flow-sensitive solving due to
    /// on-the-fly call-graph resolution.
    pub fn is_delta(&self, node: SvfgNodeId) -> bool {
        self.delta[node]
    }
}

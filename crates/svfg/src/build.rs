//! SVFG construction from the IR, auxiliary results, and memory SSA.

use crate::{CallBinding, ObjSetId, Svfg, SvfgNodeId, SvfgNodeKind};
use std::collections::{HashMap, HashSet};
use vsfs_adt::IndexVec;
use vsfs_andersen::AndersenResult;
use vsfs_ir::{Callee, DefUse, InstId, InstKind, ObjId, Program, ValueDef};
use vsfs_mssa::{MemorySsa, MssaDef};

impl Svfg {
    /// Builds the SVFG of `prog`.
    pub fn build(prog: &Program, aux: &AndersenResult, mssa: &MemorySsa) -> Svfg {
        Builder::new(prog, aux, mssa).run()
    }
}

struct Builder<'a> {
    prog: &'a Program,
    aux: &'a AndersenResult,
    mssa: &'a MemorySsa,
    svfg: Svfg,
    seen_dir: HashSet<(SvfgNodeId, SvfgNodeId)>,
    /// Raw labelled indirect edges, possibly with duplicates. Grouping
    /// and dedup happen in one sort at the end of construction —
    /// markedly cheaper in peak heap than a per-edge dedup set (the
    /// label space repeats each `(from, to)` pair hundreds of times on
    /// large workloads).
    raw_ind: Vec<(SvfgNodeId, SvfgNodeId, ObjId)>,
}

impl<'a> Builder<'a> {
    fn new(prog: &'a Program, aux: &'a AndersenResult, mssa: &'a MemorySsa) -> Self {
        // Allocate nodes.
        let mut nodes: IndexVec<SvfgNodeId, SvfgNodeKind> = IndexVec::new();
        let mut node_of_inst: IndexVec<InstId, SvfgNodeId> = IndexVec::new();
        let mut node_of_callret: HashMap<InstId, SvfgNodeId> = HashMap::new();
        for (i, inst) in prog.insts.iter_enumerated() {
            let id = nodes.push(SvfgNodeKind::Inst(i));
            debug_assert_eq!(node_of_inst.next_index(), i);
            node_of_inst.push(id);
            if matches!(inst.kind, InstKind::Call { .. }) {
                node_of_callret.insert(i, nodes.push(SvfgNodeKind::CallRet(i)));
            }
        }
        let mut node_of_memphi: IndexVec<vsfs_mssa::MemPhiId, SvfgNodeId> = IndexVec::new();
        for (p, _) in mssa.memphis().iter_enumerated() {
            let id = nodes.push(SvfgNodeKind::MemPhi(p));
            debug_assert_eq!(node_of_memphi.next_index(), p);
            node_of_memphi.push(id);
        }
        let n = nodes.len();
        let svfg = Svfg {
            nodes,
            node_of_inst,
            node_of_callret,
            node_of_memphi,
            direct_succs: (0..n).map(|_| Vec::new()).collect(),
            ind_succs: (0..n).map(|_| Vec::new()).collect(),
            ind_preds: (0..n).map(|_| Vec::new()).collect(),
            obj_set_arena: Vec::new(),
            obj_set_spans: Vec::new(),
            call_bindings: HashMap::new(),
            delta: IndexVec::from_elem_n(false, n),
            direct_edges: 0,
            indirect_edges: 0,
        };
        Builder { prog, aux, mssa, svfg, seen_dir: HashSet::new(), raw_ind: Vec::new() }
    }

    fn run(mut self) -> Svfg {
        self.direct_edges();
        self.indirect_intra_edges();
        self.interprocedural_indirect();
        self.group_indirect_edges();
        self.mark_delta_nodes();
        self.svfg
    }

    fn add_direct(&mut self, from: SvfgNodeId, to: SvfgNodeId) {
        if from == to || !self.seen_dir.insert((from, to)) {
            return;
        }
        self.svfg.direct_succs[from].push(to);
        self.svfg.direct_edges += 1;
    }

    fn add_indirect(&mut self, from: SvfgNodeId, to: SvfgNodeId, obj: ObjId) {
        self.raw_ind.push((from, to, obj));
    }

    /// Dedups the raw labelled edges, groups them into one edge per
    /// `(from, to)` pair, interns the label sets, and emits the grouped
    /// succ/pred adjacency.
    fn group_indirect_edges(&mut self) {
        let mut raw = std::mem::take(&mut self.raw_ind);
        raw.sort_unstable();
        raw.dedup();
        self.svfg.indirect_edges += raw.len();

        let mut set_ids: HashMap<Box<[ObjId]>, ObjSetId> = HashMap::new();
        let mut intern = |svfg: &mut Svfg, objs: &[ObjId]| -> ObjSetId {
            if let Some(&s) = set_ids.get(objs) {
                return s;
            }
            let start = svfg.obj_set_arena.len() as u32;
            svfg.obj_set_arena.extend_from_slice(objs);
            let s = ObjSetId::new(svfg.obj_set_spans.len() as u32);
            svfg.obj_set_spans.push((start, objs.len() as u32));
            set_ids.insert(objs.into(), s);
            s
        };

        // One pass over runs of equal (from, to); `raw` is sorted, so
        // each run's labels are already ascending and distinct.
        let mut grouped: Vec<(SvfgNodeId, SvfgNodeId, ObjSetId)> = Vec::new();
        let mut i = 0;
        let mut objs: Vec<ObjId> = Vec::new();
        while i < raw.len() {
            let (f, t, _) = raw[i];
            objs.clear();
            while i < raw.len() && raw[i].0 == f && raw[i].1 == t {
                objs.push(raw[i].2);
                i += 1;
            }
            let s = intern(&mut self.svfg, &objs);
            self.svfg.ind_succs[f].push((t, s));
            grouped.push((f, t, s));
        }
        drop(raw);

        // Mirror into preds, sorted by (to, from), sharing the set ids.
        grouped.sort_unstable_by_key(|&(f, t, _)| (t, f));
        for (f, t, s) in grouped {
            self.svfg.ind_preds[t].push((f, s));
        }
    }

    /// The SVFG node at which a top-level value becomes available.
    fn def_node_of_value(&self, v: vsfs_ir::ValueId) -> Option<SvfgNodeId> {
        match self.prog.values[v].def {
            ValueDef::Inst(i) => Some(match self.prog.insts[i].kind {
                // A call's destination is defined at the return side.
                InstKind::Call { .. } => self.svfg.callret_node(i),
                _ => self.svfg.inst_node(i),
            }),
            ValueDef::Param(f, _) => Some(self.svfg.inst_node(self.prog.functions[f].entry_inst)),
            ValueDef::GlobalPtr(_) | ValueDef::Undefined => None,
        }
    }

    fn def_node_of_mssa(&self, d: MssaDef) -> SvfgNodeId {
        match d {
            MssaDef::Inst(i) => self.svfg.inst_node(i),
            MssaDef::CallRet(i) => self.svfg.callret_node(i),
            MssaDef::MemPhi(p) => self.svfg.memphi_node(p),
        }
    }

    fn direct_edges(&mut self) {
        let du = DefUse::compute(self.prog);
        for (v, _) in self.prog.values.iter_enumerated() {
            let Some(def) = self.def_node_of_value(v) else { continue };
            for &u in du.uses(v) {
                let use_node = self.svfg.inst_node(u);
                self.add_direct(def, use_node);
            }
        }
        // Interprocedural parameter/return bindings per the auxiliary call
        // graph (both direct and indirect call sites; used for statistics
        // and scheduling — top-level flow is resolved by the solver's own
        // call graph).
        for (call, callee) in self.aux.callgraph.edges().collect::<Vec<_>>() {
            let f = &self.prog.functions[callee];
            let InstKind::Call { dst, ref args, .. } = self.prog.insts[call].kind else {
                continue;
            };
            if !args.is_empty() && !f.params.is_empty() {
                let entry = self.svfg.inst_node(f.entry_inst);
                let call_node = self.svfg.inst_node(call);
                self.add_direct(call_node, entry);
            }
            if dst.is_some() {
                if let InstKind::FunExit { ret: Some(_), .. } = self.prog.insts[f.exit_inst].kind {
                    let exit = self.svfg.inst_node(f.exit_inst);
                    let ret_node = self.svfg.callret_node(call);
                    self.add_direct(exit, ret_node);
                }
            }
        }
    }

    fn indirect_intra_edges(&mut self) {
        for (i, inst) in self.prog.insts.iter_enumerated() {
            // µ uses: value arrives at the instruction (call side).
            for mu in self.mssa.mus(i) {
                let from = self.def_node_of_mssa(mu.def);
                let to = self.svfg.inst_node(i);
                self.add_indirect(from, to, mu.obj);
            }
            // χ weak-update inputs.
            for chi in self.mssa.chis(i) {
                let Some(prev) = chi.prev else { continue };
                let from = self.def_node_of_mssa(prev);
                let to = match inst.kind {
                    InstKind::Call { .. } => self.svfg.callret_node(i),
                    _ => self.svfg.inst_node(i),
                };
                self.add_indirect(from, to, chi.obj);
            }
        }
        // MEMPHI operands.
        for (p, phi) in self.mssa.memphis().iter_enumerated() {
            let to = self.svfg.memphi_node(p);
            for &d in &phi.incoming {
                let from = self.def_node_of_mssa(d);
                self.add_indirect(from, to, phi.obj);
            }
        }
    }

    fn interprocedural_indirect(&mut self) {
        for (call, callee) in self.aux.callgraph.edges().collect::<Vec<_>>() {
            let is_indirect = matches!(
                self.prog.insts[call].kind,
                InstKind::Call { callee: Callee::Indirect(_), .. }
            );
            let entry_objs = self.mssa.entry_objects(self.prog, callee);
            let exit_objs = self.mssa.exit_objects(self.prog, callee);
            let entry_node = self.svfg.inst_node(self.prog.functions[callee].entry_inst);
            let exit_node = self.svfg.inst_node(self.prog.functions[callee].exit_inst);
            let call_node = self.svfg.inst_node(call);
            let ret_node = self.svfg.callret_node(call);

            let mut binding = CallBinding::default();
            for mu in self.mssa.mus(call) {
                if !entry_objs.contains(mu.obj) {
                    continue;
                }
                if is_indirect {
                    if !binding.ins.contains(&mu.obj) {
                        binding.ins.push(mu.obj);
                        self.svfg.indirect_edges += 1;
                    }
                } else {
                    self.add_indirect(call_node, entry_node, mu.obj);
                }
            }
            for chi in self.mssa.chis(call) {
                if !exit_objs.contains(chi.obj) {
                    continue;
                }
                if is_indirect {
                    if !binding.outs.contains(&chi.obj) {
                        binding.outs.push(chi.obj);
                        self.svfg.indirect_edges += 1;
                    }
                } else {
                    self.add_indirect(exit_node, ret_node, chi.obj);
                }
            }
            if is_indirect {
                self.svfg.call_bindings.insert((call, callee), binding);
            }
        }
    }

    fn mark_delta_nodes(&mut self) {
        // FUNENTRY of address-taken functions.
        for (f, fun) in self.prog.functions.iter_enumerated() {
            if self.aux.callgraph.is_address_taken(f) {
                let n = self.svfg.inst_node(fun.entry_inst);
                self.svfg.delta[n] = true;
            }
        }
        // Return sides of indirect calls.
        for (i, inst) in self.prog.insts.iter_enumerated() {
            if matches!(inst.kind, InstKind::Call { callee: Callee::Indirect(_), .. }) {
                let n = self.svfg.callret_node(i);
                self.svfg.delta[n] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn pipeline(src: &str) -> (Program, AndersenResult, MemorySsa, Svfg) {
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        (prog, aux, mssa, svfg)
    }

    fn inst_by_mnemonic(prog: &Program, m: &str, nth: usize) -> InstId {
        prog.insts
            .iter_enumerated()
            .filter(|(_, i)| i.kind.mnemonic() == m)
            .map(|(id, _)| id)
            .nth(nth)
            .unwrap()
    }

    #[test]
    fn store_to_load_indirect_edge() {
        let (prog, _, _, svfg) = pipeline(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q = alloc heap H
              store %q, %p
              %r = load %p
              ret
            }
            "#,
        );
        let store = svfg.inst_node(inst_by_mnemonic(&prog, "store", 0));
        let load = svfg.inst_node(inst_by_mnemonic(&prog, "load", 0));
        assert!(svfg.indirect_succs(store).iter().any(|&(t, _)| t == load));
        assert!(svfg.indirect_preds(load).iter().any(|&(f, _)| f == store));
        // Direct edges: p -> store, p -> load, q -> store at least.
        assert!(svfg.direct_edge_count() >= 3);
    }

    #[test]
    fn call_nodes_are_split() {
        let (prog, _, _, svfg) = pipeline(
            r#"
            global @g
            func @touch(%v) {
            entry:
              store %v, @g
              %x = load @g
              ret %x
            }
            func @main() {
            entry:
              %h = alloc heap H
              %r = call @touch(%h)
              %y = load @g
              ret
            }
            "#,
        );
        let call = inst_by_mnemonic(&prog, "call", 0);
        let call_node = svfg.inst_node(call);
        let ret_node = svfg.callret_node(call);
        assert_ne!(call_node, ret_node);
        let touch = prog.function_by_name("touch").unwrap();
        let entry_node = svfg.inst_node(prog.functions[touch].entry_inst);
        let exit_node = svfg.inst_node(prog.functions[touch].exit_inst);
        // Indirect: call --g--> entry; exit --g--> ret side.
        assert!(svfg.indirect_succs(call_node).iter().any(|&(t, _)| t == entry_node));
        assert!(svfg.indirect_succs(exit_node).iter().any(|&(t, _)| t == ret_node));
        // The post-call load consumes g from the return side.
        let y_load = svfg.inst_node(inst_by_mnemonic(&prog, "load", 1));
        assert!(svfg.indirect_preds(y_load).iter().any(|&(f, _)| f == ret_node));
        // Direct interproc: call -> entry (args), exit -> ret side (ret).
        assert!(svfg.direct_succs(call_node).contains(&entry_node));
        assert!(svfg.direct_succs(exit_node).contains(&ret_node));
        // No deltas: all calls direct, no address-taken functions.
        assert!(svfg.node_ids().all(|n| !svfg.is_delta(n)));
    }

    #[test]
    fn indirect_call_bindings_are_deferred_and_delta_marked() {
        let (prog, _, _, svfg) = pipeline(
            r#"
            global @g
            func @cb(%v) {
            entry:
              store %v, @g
              ret
            }
            func @main() {
            entry:
              %fp = funaddr @cb
              %h = alloc heap H
              icall %fp(%h)
              %x = load @g
              ret
            }
            "#,
        );
        let cb = prog.function_by_name("cb").unwrap();
        let call = inst_by_mnemonic(&prog, "call", 0);
        let binding = svfg.call_binding(call, cb).expect("binding recorded");
        let g =
            prog.objects.iter_enumerated().find(|(_, o)| o.name == "g").map(|(id, _)| id).unwrap();
        assert!(binding.ins.contains(&g), "g flows into cb");
        assert!(binding.outs.contains(&g), "g flows back out");
        // No eager interprocedural indirect edge for the indirect call.
        let call_node = svfg.inst_node(call);
        let entry_node = svfg.inst_node(prog.functions[cb].entry_inst);
        assert!(!svfg.indirect_succs(call_node).iter().any(|&(t, _)| t == entry_node));
        // Delta nodes: cb's FUNENTRY and the call's return side.
        assert!(svfg.is_delta(entry_node));
        assert!(svfg.is_delta(svfg.callret_node(call)));
        assert!(!svfg.is_delta(call_node));
    }

    #[test]
    fn memphi_nodes_exist_with_edges() {
        let (prog, _, mssa, svfg) = pipeline(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %q1 = alloc heap H1
              %q2 = alloc heap H2
              br l, r
            l:
              store %q1, %p
              goto join
            r:
              store %q2, %p
              goto join
            join:
              %x = load %p
              ret
            }
            "#,
        );
        assert_eq!(mssa.memphis().len(), 1);
        let phi_node = svfg.memphi_node(vsfs_mssa::MemPhiId::new(0));
        assert_eq!(svfg.indirect_preds(phi_node).len(), 2);
        let load = svfg.inst_node(inst_by_mnemonic(&prog, "load", 0));
        assert!(svfg.indirect_succs(phi_node).iter().any(|&(t, _)| t == load));
        assert_eq!(svfg.node_count(), prog.inst_count() + 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn pipeline(src: &str) -> (Program, Svfg) {
        let prog = parse_program(src).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        (prog, svfg)
    }

    #[test]
    fn direct_edges_cover_param_and_return_binding() {
        let (prog, svfg) = pipeline(
            r#"
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %a = alloc heap A
              %r = call @id(%a)
              %use = copy %r
              ret
            }
            "#,
        );
        let id = prog.function_by_name("id").unwrap();
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
            .map(|(i, _)| i)
            .unwrap();
        let entry_node = svfg.inst_node(prog.functions[id].entry_inst);
        let exit_node = svfg.inst_node(prog.functions[id].exit_inst);
        // arg binding: call -> entry; ret binding: exit -> ret side.
        assert!(svfg.direct_succs(svfg.inst_node(call)).contains(&entry_node));
        assert!(svfg.direct_succs(exit_node).contains(&svfg.callret_node(call)));
        // The copy uses %r, defined at the return side.
        let copy = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Copy { .. }))
            .map(|(i, _)| i)
            .unwrap();
        assert!(svfg.direct_succs(svfg.callret_node(call)).contains(&svfg.inst_node(copy)));
    }

    #[test]
    fn edge_counts_are_consistent() {
        let (_, svfg) = pipeline(vsfs_workloads_src());
        let counted: usize =
            svfg.node_ids().map(|n| svfg.indirect_succs_expanded(n).count()).sum::<usize>()
                + svfg.call_bindings().map(|(_, b)| b.ins.len() + b.outs.len()).sum::<usize>();
        assert_eq!(counted, svfg.indirect_edge_count());
        let direct: usize = svfg.node_ids().map(|n| svfg.direct_succs(n).len()).sum();
        assert_eq!(direct, svfg.direct_edge_count());
        // preds mirror succs exactly, labelled edge by labelled edge.
        let mut succs: Vec<(u32, u32, u32)> = svfg
            .node_ids()
            .flat_map(|n| {
                svfg.indirect_succs_expanded(n)
                    .map(move |(t, o)| (n.index() as u32, t.index() as u32, o.index() as u32))
            })
            .collect();
        let mut preds: Vec<(u32, u32, u32)> = svfg
            .node_ids()
            .flat_map(|n| {
                svfg.indirect_preds_expanded(n)
                    .map(move |(f, o)| (f.index() as u32, n.index() as u32, o.index() as u32))
            })
            .collect();
        succs.sort_unstable();
        preds.sort_unstable();
        assert_eq!(succs, preds);
        // Grouped edges are deduplicated: one entry per (from, to) pair,
        // and every label set is non-empty and strictly ascending.
        for n in svfg.node_ids() {
            let g = svfg.indirect_succs(n);
            assert!(g.windows(2).all(|w| w[0].0 < w[1].0));
            for &(_, s) in g {
                let objs = svfg.obj_set(s);
                assert!(!objs.is_empty());
                assert!(objs.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    fn vsfs_workloads_src() -> &'static str {
        r#"
        global @tab array
        ginit @tab, @h1
        ginit @tab, @h2
        global @state
        func @h1(%v) {
        entry:
          store %v, @state
          ret %v
        }
        func @h2(%v) {
        entry:
          %x = load @state
          ret %x
        }
        func @main() {
        entry:
          %a = alloc heap A
          %fp = load @tab
          %r = icall %fp(%a)
          %fin = load @state
          ret
        }
        "#
    }

    #[test]
    fn delta_bindings_cover_all_aux_callees() {
        let (prog, svfg) = pipeline(vsfs_workloads_src());
        let h1 = prog.function_by_name("h1").unwrap();
        let h2 = prog.function_by_name("h2").unwrap();
        let call = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { callee: Callee::Indirect(_), .. }))
            .map(|(i, _)| i)
            .unwrap();
        let b1 = svfg.call_binding(call, h1).expect("binding for h1");
        let b2 = svfg.call_binding(call, h2).expect("binding for h2");
        // h1 writes state: out-flow exists; h2 only reads: in-flow only.
        assert!(!b1.outs.is_empty());
        assert!(!b2.outs.is_empty() || !b2.ins.is_empty());
    }
}

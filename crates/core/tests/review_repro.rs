//! Review scratch: indirect call with clean call site, dirty callee whose
//! return set shrinks. Incremental must match from-scratch.

use vsfs_core::incremental::{resolve_edit, solve_program, IncrementalOptions};

const BASE: &str = r#"
global @ga
global @gb
global @fp
ginit @fp, @pick

func @pick(%t) {
entry:
  %a = alloc heap A
  %b = alloc heap B
  store %a, @ga
  store %b, @gb
  %s = alloc stack S
  store %a, %s
  store %b, %s
  %r = load %s
  ret %r
}

func @main() {
entry:
  %x = alloc heap X
  %f = load @fp
  %res = icall %f(%x)
  ret
}
"#;

#[test]
fn shrink_return_of_indirect_callee_matches_cold() {
    let (state, _) = solve_program(BASE, IncrementalOptions::default(), None, None).unwrap();
    assert!(state.has_warm_state());
    let edited = BASE.replace("  store %b, %s\n", "");
    let (inc, rep) =
        resolve_edit(&state, &edited, IncrementalOptions::default(), None, None).unwrap();
    let (cold, crep) = solve_program(&edited, IncrementalOptions::default(), None, None).unwrap();
    eprintln!(
        "incremental: {} (dirty {}/{}), cold: {}",
        rep.fingerprint, rep.dirty_nodes, rep.total_nodes, crep.fingerprint
    );
    let res = inc.prog.values.iter_enumerated().find(|(_, v)| v.name == "res").unwrap().0;
    eprintln!("inc pts(res): {:?}", inc.analysis.result.value_pts(res).iter().collect::<Vec<_>>());
    let cres = cold.prog.values.iter_enumerated().find(|(_, v)| v.name == "res").unwrap().0;
    eprintln!(
        "cold pts(res): {:?}",
        cold.analysis.result.value_pts(cres).iter().collect::<Vec<_>>()
    );
    assert_eq!(rep.fingerprint, crep.fingerprint, "incremental diverged from cold solve");
}
